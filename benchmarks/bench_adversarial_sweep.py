"""Adversarial frontier sweep — attacker strategies vs all six defenses.

Tier-2 companion to the Figure 8 bench: plants parameterised sybil
regions on the physics1 stand-in and sweeps attack-edge budget x
strategy across every defense, rendering the false-admit/honest-reject
frontier curves.

Besides the usual rendered result, this bench *appends* a timing record
to ``benchmarks/results/adversarial_sweep.json`` on every run, so the
CI tier-2 job accumulates a sweep-latency history instead of keeping
only the latest number.

Shape assertions: all six defense panels render; attack budgets only
ever help the attacker (the admitted-sybil frontier of the random
strategy under SybilGuard is non-decreasing); the security-bound notes
enumerate every positive-budget cell.
"""

import json
import time
from pathlib import Path

from repro.experiments import (
    ADVERSARIAL_DEFENSES,
    render_figure,
    run_adversarial_sweep,
)

TIMINGS_PATH = Path(__file__).parent / "results" / "adversarial_sweep.json"


def append_timing(record: dict) -> None:
    """Append one run record to the timing history (a JSON list)."""
    history = []
    if TIMINGS_PATH.exists():
        history = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    history.append(record)
    TIMINGS_PATH.write_text(
        json.dumps(history, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def test_adversarial_sweep(benchmark, config, results_dir, save_result):
    timing = {}

    def run():
        start = time.perf_counter()
        figure = run_adversarial_sweep(config)
        timing["duration_s"] = time.perf_counter() - start
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("adversarial_sweep_frontiers", render_figure(figure))
    append_timing(
        {
            "bench": "adversarial_sweep",
            "mode": config.mode,
            "seed": config.seed,
            "strategies": list(config.adversarial_strategies),
            "budgets": list(config.adversarial_budgets),
            "duration_s": round(timing["duration_s"], 3),
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        }
    )

    # Every defense got a panel, every panel a pair of series per strategy.
    assert set(figure.panels) == set(ADVERSARIAL_DEFENSES)
    for defense, series in figure.panels.items():
        assert len(series) == 2 * len(config.adversarial_strategies), defense
        for s in series:
            assert ((s.y >= 0.0) & (s.y <= 100.0)).all(), (defense, s.label)

    # More attack edges help the attacker against SybilGuard: the
    # largest budget admits at least as many sybils as the smallest.
    # (Cell-level route randomness makes interior points only
    # statistically monotone; the exact metamorphic monotonicity lives
    # in tests/sybil/test_attacks.py on fixed seeds.)
    guard = {s.label: s for s in figure.panels["sybilguard"]}
    admit = guard["random sybil-admit"].y
    assert admit[-1] >= admit[0]
    assert admit.max() > 50.0

    # The bound notes account for every positive-budget cell.
    positive = sum(1 for g in config.adversarial_budgets if g > 0)
    expected = (
        len(config.adversarial_strategies)
        * len(config.adversarial_sybil_sizes)
        * positive
        * len(ADVERSARIAL_DEFENSES)
    )
    assert f"Cells with g>0: {expected}" in figure.notes

    # The timing history grew by exactly this run.
    history = json.loads(TIMINGS_PATH.read_text(encoding="utf-8"))
    assert history[-1]["bench"] == "adversarial_sweep"
    assert history[-1]["duration_s"] > 0
