"""Extension bench — average-case vs worst-case mixing (Section 6).

The paper's closing observation: "the average mixing time is better than
the worst-case mixing time ... although the average mixing time is again
much higher than the ones being used."  Both halves are asserted:
mean per-source hitting time well below the worst case on every graph,
and on the acquaintance graphs even the *average* far above the 10-15
step budget of the Sybil-defense literature.
"""

from repro.experiments import average_case_table, render_table, run_average_case


def test_average_case(benchmark, config, save_result):
    rows = benchmark.pedantic(
        lambda: run_average_case(config), rounds=1, iterations=1
    )
    save_result("ext_average_case", render_table(average_case_table(rows)))

    by_name = {r.dataset: r for r in rows}
    for row in rows:
        # Average beats the worst case ...
        assert row.mean < row.worst, row.dataset
        assert row.unconverged == 0, row.dataset
    for slow in ("physics1", "enron"):
        row = by_name[slow]
        assert row.mean < 0.75 * row.worst, slow
        # ... but is still far beyond the literature's walk lengths.
        assert row.mean > 10 * 15, slow
        assert row.within_15_steps == 0.0, slow
    # The weak-trust OSN mostly fits the budget — the trust-model split.
    assert by_name["wiki_vote"].within_15_steps > 0.5
