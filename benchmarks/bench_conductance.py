"""Ablation — conductance vs the spectral gap (Section 3.2).

The paper ties slow mixing to community structure through conductance.
This bench computes, per dataset, the rigorous spectral sandwich
``(1 - mu)/2 <= Phi(sweep cut) <= sqrt(2 (1 - lambda2))`` and checks the
slow-mixing stand-ins expose far sparser cuts than the fast ones.
"""

from repro.experiments import render_table, run_conductance_ablation


def test_conductance_ablation(benchmark, config, save_result):
    table = benchmark.pedantic(
        lambda: run_conductance_ablation(config), rounds=1, iterations=1
    )
    save_result("ablation_conductance", render_table(table))

    rows = {row[0]: row for row in table.rows}
    for name, row in rows.items():
        lower = float(row[2])
        sweep = float(row[3])
        cheeger_hi = float(row[4])
        assert lower <= sweep + 1e-6, name
        assert sweep <= cheeger_hi + 1e-6, name

    # Slow-mixing graphs expose much sparser cuts.
    assert float(rows["physics1"][3]) < float(rows["wiki_vote"][3]) / 5
    assert float(rows["livejournal_a"][3]) < float(rows["facebook"][3]) / 10
