"""Ablation — the four Sybil defenses on one attack scenario (Section 2).

Viswanath et al. (cited in the paper's related work) showed that
SybilGuard, SybilLimit, SybilInfer, and SumUp all key on the same
structural signal: how well-connected a suspect is to the verifier.
This bench runs all four implementations on an identical scenario (fast
honest region, dense sybil region, few attack edges) and checks each one
separates honest from sybil identities.
"""

import numpy as np

from repro.experiments.harness import TableResult, render_table
from repro.generators import erdos_renyi_gnm
from repro.graph import largest_connected_component
from repro.sybil import (
    SumUpParams,
    SybilGuard,
    SybilInfer,
    SybilInferParams,
    SybilLimit,
    SybilLimitParams,
    attach_sybil_region,
    evaluate_admission,
    random_sybil_region,
    recommended_route_length,
    sumup_collect_votes,
)


def _run_comparison(seed: int = 20101103):
    honest, _ = largest_connected_component(erdos_renyi_gnm(400, 2400, seed=seed))
    sybil = random_sybil_region(150, seed=seed + 1)
    scenario = attach_sybil_region(honest, sybil, 4, seed=seed + 2)
    verifier = 0
    rows = []

    guard = SybilGuard(scenario, recommended_route_length(honest.num_nodes), seed=seed)
    outcome = guard.run(verifier)
    m = evaluate_admission(scenario, outcome.suspects, outcome.accepted)
    rows.append(("SybilGuard", m.honest_admission_rate, m.sybil_acceptance_rate))

    limit = SybilLimit(scenario, SybilLimitParams(route_length=30), seed=seed)
    outcome = limit.run(verifier)
    m = evaluate_admission(scenario, outcome.suspects, outcome.accepted)
    rows.append(("SybilLimit", m.honest_admission_rate, m.sybil_acceptance_rate))

    infer = SybilInfer(
        scenario,
        # Enough MH iterations to move all ~150 sybil nodes out of the
        # candidate set (a few flips per node past burn-in).
        SybilInferParams(num_samples=300, burn_in=1500, steps_per_sample=8, walks_per_node=25),
        seed=seed,
    )
    result = infer.run(verifier)
    honest_mask = result.honest_mask()
    truth = scenario.honest_mask()
    rows.append(
        (
            "SybilInfer",
            float(honest_mask[truth][1:].mean()),
            float(honest_mask[~truth].mean()),
        )
    )

    honest_voters = np.arange(1, 201)
    sybil_voters = scenario.sybil_nodes()
    params = SumUpParams(c_max=200)
    h = sumup_collect_votes(scenario, verifier, honest_voters, params)
    s = sumup_collect_votes(scenario, verifier, sybil_voters, params)
    rows.append(("SumUp", h.collection_rate, s.collection_rate))

    # SybilRank: early-terminated trust propagation, accept the top-n
    # ranked suspects (n = honest population, the protocol's cutoff).
    from repro.sybil import sybilrank

    rank_seeds = [verifier] + [int(v) for v in scenario.graph.neighbors(verifier)]
    rank = sybilrank(scenario, rank_seeds)
    top = set(rank.accept_top(scenario.num_honest).tolist())
    truth = scenario.honest_mask()
    honest_ids = np.flatnonzero(truth)
    sybil_ids = np.flatnonzero(~truth)
    rows.append(
        (
            "SybilRank",
            float(np.mean([v in top for v in honest_ids if v != verifier])),
            float(np.mean([v in top for v in sybil_ids])),
        )
    )

    # Viswanath et al.'s replacement: community detection + trust
    # propagation from the verifier.  Louvain partitions the combined
    # graph (it splits even the ER honest region into spurious
    # communities, so accepting only the verifier's community would
    # reject most honest nodes); starting from the verifier's community,
    # greedily absorb the neighbouring community with the strongest
    # *relative* connectivity w(S, c) / vol(c) and stop when the best
    # candidate falls below a sparse-cut threshold — the honest region's
    # spurious cuts are dense, the 4-edge attack cut is not.
    from repro.community import louvain

    labels = louvain(scenario.graph, seed=seed)
    truth = scenario.honest_mask()
    graph = scenario.graph
    edges = graph.edges()
    degrees = graph.degrees.astype(np.float64)
    num_comms = int(labels.max()) + 1
    comm_vol = np.zeros(num_comms)
    np.add.at(comm_vol, labels, degrees)
    cross = np.zeros((num_comms, num_comms))
    np.add.at(cross, (labels[edges[:, 0]], labels[edges[:, 1]]), 1.0)
    cross = cross + cross.T

    accepted = {int(labels[verifier])}
    threshold = 0.02
    while True:
        best_comm, best_score = None, threshold
        for c in range(num_comms):
            if c in accepted:
                continue
            weight = sum(cross[c, a] for a in accepted)
            score = weight / comm_vol[c] if comm_vol[c] else 0.0
            if score > best_score:
                best_comm, best_score = c, score
        if best_comm is None:
            break
        accepted.add(best_comm)
    predicted_honest = np.isin(labels, list(accepted))
    rows.append(
        (
            "Louvain+trust",
            float(predicted_honest[truth][1:].mean()),
            float(predicted_honest[~truth].mean()),
        )
    )
    return rows


def test_defense_comparison(benchmark, save_result):
    rows = benchmark.pedantic(_run_comparison, rounds=1, iterations=1)
    table = TableResult(
        title="Defense comparison on one scenario (honest ER(400), sybil 150, g=4); Louvain+trust is the Viswanath-style community replacement",
        headers=["Defense", "honest accepted", "sybil accepted"],
        rows=[[name, f"{h:.2f}", f"{s:.2f}"] for name, h, s in rows],
    )
    save_result("ablation_defense_comparison", render_table(table))

    for name, honest_rate, sybil_rate in rows:
        assert honest_rate > 0.7, name
    separation = {name: (h, s) for name, h, s in rows}
    # SybilLimit, SybilInfer and SumUp must separate the regions.
    # SybilGuard is *expected* to fail at this (n, g): its routes are
    # Theta(sqrt(n log n)) long, so with g=4 attack edges on a 400-node
    # region most verifier routes cross the cut — the O(sqrt(n) log n)
    # sybils-per-attack-edge weakness that motivated SybilLimit.
    for name in ("SybilLimit", "SybilInfer", "SumUp", "SybilRank", "Louvain+trust"):
        h, s = separation[name]
        assert s < h, name
