"""Extension bench — the directed-to-undirected conversion (Section 4).

The paper converts directed datasets to undirected before measuring.
This bench measures both chains on the same strongly-connected node set
and records the divergence the conversion introduces; it asserts both
chains converge and that the two curves genuinely differ (the conversion
is not measurement-neutral), quantifying the caveat.
"""

import numpy as np

from repro.experiments import render_figure, run_directed_conversion


def test_directed_conversion(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_directed_conversion(config, dataset="physics1"),
        rounds=1,
        iterations=1,
    )
    save_result("ext_directed_conversion", render_figure(figure))

    series = {s.label.split(" (")[0]: s for s in figure.panels["main"]}
    directed = series["directed walk"].y
    undirected = series["undirected conversion"].y
    assert directed[-1] < directed[0]
    assert undirected[-1] < undirected[0]
    # The conversion changes the measured chain materially.
    gap = np.abs(directed - undirected).max()
    assert gap > 0.02
