"""Figure 1 — lower bound of the mixing time, small datasets.

Shape assertions (paper: "physics co-authorship, Enron, and Epinion ...
a mixing time of 200 to 400 is required to achieve eps = 0.1"): the
acquaintance curves cross eps = 0.1 in the hundreds of steps while the
fast OSNs stay under ~20.
"""

from repro.experiments import render_figure, run_figure1


def _length_at(series, eps: float) -> float:
    import numpy as np

    order = np.argsort(series.x)
    return float(np.interp(eps, series.x[order], series.y[order]))


def test_fig1_lower_bound_small(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure1(config), rounds=1, iterations=1)
    save_result("fig1_lower_bound_small", render_figure(figure))

    series = {s.label: s for s in figure.panels["main"]}
    for slow in ("Physics 1", "Physics 3", "Enron", "Epinion"):
        assert 100 <= _length_at(series[slow], 0.1) <= 900, slow
    for fast in ("Wiki-vote", "Facebook"):
        assert _length_at(series[fast], 0.1) < 25, fast
    # Every curve decreases with epsilon.
    for s in series.values():
        import numpy as np

        order = np.argsort(s.x)
        assert np.all(np.diff(s.y[order]) <= 1e-9)
