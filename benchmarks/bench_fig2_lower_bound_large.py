"""Figure 2 — lower bound of the mixing time, large datasets.

Shape assertions (paper: "while it is about 1500 to 2500 in case of
Livejournal, it ranges from 100 to about 400 in case of DBLP, Youtube,
and Facebook"): the LiveJournal curves dominate every other large curve
by a wide factor at eps = 0.1.
"""

import numpy as np

from repro.experiments import render_figure, run_figure2


def _length_at(series, eps: float) -> float:
    order = np.argsort(series.x)
    return float(np.interp(eps, series.x[order], series.y[order]))


def test_fig2_lower_bound_large(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure2(config), rounds=1, iterations=1)
    save_result("fig2_lower_bound_large", render_figure(figure))

    series = {s.label: s for s in figure.panels["main"]}
    lj = min(_length_at(series["Livejournal A"], 0.1), _length_at(series["Livejournal B"], 0.1))
    assert lj > 1000
    for moderate in ("DBLP", "Youtube", "Facebook A", "Facebook B"):
        t = _length_at(series[moderate], 0.1)
        assert 80 <= t <= 700, (moderate, t)
        assert lj > 3 * t
