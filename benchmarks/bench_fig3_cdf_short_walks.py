"""Figure 3 — CDF of the variation distance at short walks (physics).

Shape assertions: CDFs shift left (stochastically smaller distances) as
the walk grows, yet at w = 40 the bulk of sources is still far from
stationarity — the distances SybilLimit's 10-15-step walks would see are
nowhere near eps = Theta(1/n).
"""

import numpy as np

from repro.experiments import render_figure, run_figure3


def test_fig3_cdf_short_walks(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure3(config), rounds=1, iterations=1)
    save_result("fig3_cdf_short_walks", render_figure(figure))

    for panel, series_list in figure.panels.items():
        series = {s.label: s for s in series_list}
        medians = [float(np.median(series[f"w={w}"].x)) for w in config.short_walks]
        # Monotone improvement with walk length.
        assert all(a >= b for a, b in zip(medians, medians[1:])), panel
        # Still badly mixed at w = 40.
        assert medians[-1] > 0.2, panel
        # At w in {10, 15} (the Sybil defense regime) the bulk is far out.
        assert float(np.median(series["w=10"].x)) > 0.4, panel
