"""Figure 4 — CDF of the variation distance at long walks (physics).

Shape assertions: even hundreds of steps leave a slow tail of sources
("except in a few cases ... the mixing time of the majority of nodes is
larger than anticipated"), while the median keeps improving.
"""

import numpy as np

from repro.experiments import render_figure, run_figure4


def test_fig4_cdf_long_walks(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure4(config), rounds=1, iterations=1)
    save_result("fig4_cdf_long_walks", render_figure(figure))

    walks = [w for w in config.long_walks if w <= config.max_walk]
    for panel, series_list in figure.panels.items():
        series = {s.label: s for s in series_list}
        medians = [float(np.median(series[f"w={w}"].x)) for w in walks]
        assert all(a >= b - 1e-9 for a, b in zip(medians, medians[1:])), panel
        # The longest walk's median is well below the shortest's ...
        assert medians[-1] < medians[0]
        # ... but the worst tail has still not converged to eps = 1e-2.
        worst_tail = float(series[f"w={walks[-1]}"].x.max())
        assert worst_tail > 0.01, panel
