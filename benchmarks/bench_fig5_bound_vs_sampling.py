"""Figure 5 — SLEM lower bound vs sampled per-source mixing (physics).

Shape assertions: the best-10% band always beats the median, which beats
the worst-10%; and the SLEM-derived bound tracks the *worst* sources
("the measurements using SLEM are correct since the mixing time is by
definition maximum of walk lengths"), so most sources beat the bound.
"""

import numpy as np

from repro.experiments import render_figure, run_figure5


def test_fig5_bound_vs_sampling(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure5(config), rounds=1, iterations=1)
    save_result("fig5_bound_vs_sampling", render_figure(figure))

    for panel, series_list in figure.panels.items():
        series = {s.label: s for s in series_list}
        best = series["best 10% of sources"].y
        median = series["median 20% of sources"].y
        worst = series["worst 10% of sources (top 99.9%)"].y
        bound = series["SLEM lower bound"].y
        assert np.all(best <= median + 1e-12), panel
        assert np.all(median <= worst + 1e-12), panel
        # All bands improve substantially over the sweep.
        assert median[-1] < 0.5 * median[0], panel
        # Theorem 2's exact invariant: the worst-case distance at walk
        # length t can never drop below the inverted lower bound
        # (T(eps) >= mu/(2(1-mu)) ln(1/2eps)  <=>  eps_max(t) >= bound(t)).
        assert np.all(worst >= bound - 1e-9), panel
        # And the *best* sources converge far faster than the worst —
        # the per-source heterogeneity driving Section 5's discussion.
        assert best[-1] < 0.3 * worst[-1], panel
