"""Figure 6 — the DBLP low-degree trimming study.

Shape assertions: trimming monotonically shrinks the graph, the heavily
trimmed graph's *average* mixing beats the untrimmed one at the fixed
walk length 100 (the paper's "variation distance is reduced from about
0.2 to 0.03" observation, scaled), and the membership cost is large
(DBLP 5 keeps a minority of DBLP 1's nodes; the paper: 145,497 of
614,981).
"""

import numpy as np

from repro.experiments import render_figure, render_table, run_figure6, trim_levels, trim_summary_table


def test_fig6_trimming(benchmark, config, save_result):
    levels = benchmark.pedantic(
        lambda: trim_levels(config, dataset="dblp"), rounds=1, iterations=1
    )
    figure = run_figure6(config, dataset="dblp")
    save_result("fig6_trimming", render_figure(figure))
    save_result("fig6_trimming_table", render_table(trim_summary_table(levels)))

    sizes = [lvl.graph.num_nodes for lvl in levels]
    assert sizes == sorted(sizes, reverse=True)

    # Average-mixing improvement at the shared checkpoint w = 100.
    idx = list(levels[0].walk_lengths).index(100)
    first = levels[0].avg_distance[idx]
    last = levels[-1].avg_distance[idx]
    assert last < first

    # Large membership cost: DBLP 5 keeps well under half of DBLP 1.
    assert sizes[-1] < 0.45 * sizes[0]

    # The mixing trend across levels is downward overall (individual
    # levels may wobble: small cores are spectrally noisy).
    avg_at_100 = [lvl.avg_distance[idx] for lvl in levels]
    assert np.mean(avg_at_100[-2:]) < np.mean(avg_at_100[:2])
