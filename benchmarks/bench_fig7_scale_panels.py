"""Figure 7 — sampling vs lower bound across BFS sample sizes (12 panels).

Shape assertions: per panel, the percentile bands order correctly and
the best sources beat the SLEM bound; across panels, LiveJournal samples
mix slower than Facebook samples of the same size ("Livejournal ...
present poor mixing in relation with Facebook"), and larger samples of
one graph mix no faster than smaller ones.
"""

import numpy as np

from repro.experiments import render_figure, run_figure7


def test_fig7_scale_panels(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure7(config), rounds=1, iterations=1)
    save_result("fig7_scale_panels", render_figure(figure))

    sizes = list(config.figure7_sizes)
    panels = figure.panels
    assert len(panels) == 4 * len(sizes) or len(panels) >= 8  # realised sizes may cap

    def median_band(panel):
        series = {s.label: s for s in panels[panel]}
        return series["median 20% of sources"].y

    for panel, series_list in panels.items():
        series = {s.label: s for s in series_list}
        best = series["best 10% of sources"].y
        worst = series["worst 10% of sources"].y
        assert np.all(best <= worst + 1e-12), panel
        assert np.all(np.diff(series["median 20% of sources"].y) <= 1e-9), panel

    # LiveJournal panels mix slower than Facebook panels at matched size.
    for size in sizes:
        fb = [p for p in panels if p.startswith("facebook") and p.endswith(str(size))]
        lj = [p for p in panels if p.startswith("livejournal") and p.endswith(str(size))]
        if fb and lj:
            fb_final = np.mean([median_band(p)[-1] for p in fb])
            lj_final = np.mean([median_band(p)[-1] for p in lj])
            assert lj_final > fb_final, size
