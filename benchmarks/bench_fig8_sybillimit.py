"""Figure 8 — SybilLimit admission rate vs random-route length.

Runs the full SybilLimit implementation (r = r0 sqrt(m) random-route
instances, tail intersection + balance) with no attacker on the paper's
five Figure 8 datasets and sweeps the route length.

Shape assertions: admission grows with w; the physics graphs need
w >> 15 to admit >= 90% of honest suspects (the headline implication);
the OSN-style graphs admit much sooner.
"""

import numpy as np

from repro.experiments import render_figure, run_figure8


def test_fig8_sybillimit(benchmark, config, save_result):
    figure = benchmark.pedantic(lambda: run_figure8(config), rounds=1, iterations=1)
    save_result("fig8_sybillimit", render_figure(figure))

    series = {s.label.split(" ")[0]: s for s in figure.panels["main"]}

    def w_for(name, target):
        s = series[name]
        hits = np.flatnonzero(s.y >= target)
        return int(s.x[hits[0]]) if hits.size else None

    for name, s in series.items():
        # Admission roughly increases along the sweep (tail noise aside).
        assert s.y[-1] >= s.y[0], name
        assert s.y[-1] > 90.0, name

    for slow in ("physics1", "physics2", "physics3"):
        w90 = w_for(slow, 90.0)
        assert w90 is not None and w90 > 15, (slow, w90)

    # The Slashdot stand-in reaches 90% far sooner than the physics ones.
    w_fast = w_for("slashdot1", 90.0)
    w_slow = min(w_for(p, 90.0) for p in ("physics1", "physics2", "physics3"))
    assert w_fast is not None and w_fast < w_slow
