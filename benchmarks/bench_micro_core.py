"""Micro-benchmarks of the measurement pipeline's hot operations.

Unlike the table/figure benches (single-round experiment reproductions),
these time the primitives with pytest-benchmark's statistical repetition
so performance regressions in the substrate are visible:

* SLEM via the sparse Lanczos back-end,
* one block distribution-evolution step (the Figure 3-7 inner loop),
* one full-system random-route advancement step (the Figure 8 inner loop),
* BFS sampling,
* graph construction from an edge array.
"""

import numpy as np
import pytest

from repro.core import TransitionOperator, slem
from repro.datasets import load_cached
from repro.graph import Graph
from repro.sampling import bfs_sample
from repro.sybil import RouteInstances


@pytest.fixture(scope="module")
def medium_graph():
    return load_cached("physics1")


@pytest.fixture(scope="module")
def large_graph():
    return load_cached("facebook_a")


def test_micro_slem_sparse(benchmark, medium_graph):
    result = benchmark(lambda: slem(medium_graph))
    assert 0.99 < result < 1.0


def test_micro_block_evolution_step(benchmark, large_graph):
    operator = TransitionOperator(large_graph)
    matrix = operator.matrix()
    n = large_graph.num_nodes
    block = np.zeros((64, n))
    block[np.arange(64), np.arange(64)] = 1.0

    out = benchmark(lambda: block @ matrix)
    assert out.shape == (64, n)
    assert np.allclose(out.sum(axis=1), 1.0)


def test_micro_route_advancement(benchmark, medium_graph):
    routes = RouteInstances(medium_graph, 1, seed=3)
    table = routes.single_instance(0)
    slots = np.arange(table.size)

    out = benchmark(lambda: table[slots])
    assert np.unique(out).size == slots.size


def test_micro_bfs_sample(benchmark, large_graph):
    sub, _map = benchmark(lambda: bfs_sample(large_graph, 2000, seed=11))
    assert sub.num_nodes <= 2000


def test_micro_graph_construction(benchmark, medium_graph):
    edges = medium_graph.edges()
    n = medium_graph.num_nodes
    g = benchmark(lambda: Graph.from_edges(edges, num_nodes=n))
    assert g == medium_graph


def test_micro_slem_power_backend(benchmark, medium_graph):
    from repro.core import transition_spectrum_extremes

    result = benchmark(
        lambda: transition_spectrum_extremes(medium_graph, method="power")
    )
    assert 0.99 < result.slem < 1.0


def test_micro_escape_probability(benchmark, medium_graph):
    from repro.sybil import attach_sybil_region, escape_probability, random_sybil_region

    scen = attach_sybil_region(
        medium_graph, random_sybil_region(200, seed=5), 5, seed=6
    )
    esc = benchmark(lambda: escape_probability(scen, [10, 40, 160]))
    assert np.all(np.diff(esc) > 0)


def test_micro_louvain(benchmark, medium_graph):
    from repro.community import louvain, modularity

    labels = benchmark(lambda: louvain(medium_graph, seed=9))
    assert modularity(medium_graph, labels) > 0.5
