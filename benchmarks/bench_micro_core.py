"""Micro-benchmarks of the measurement pipeline's hot operations.

Unlike the table/figure benches (single-round experiment reproductions),
these time the primitives with pytest-benchmark's statistical repetition
so performance regressions in the substrate are visible:

* SLEM via the sparse Lanczos back-end,
* one block distribution-evolution step (the Figure 3-7 inner loop),
* batched multi-source evolution (block API) vs the historical
  one-source-at-a-time loop, at s ∈ {32, 256, 1000} sources,
* one full-system random-route advancement step (the Figure 8 inner loop),
* BFS sampling,
* graph construction from an edge array.
"""

import time

import numpy as np
import pytest

from repro.core import (
    FLOAT32_CURVE_ATOL,
    ExecutionPolicy,
    TransitionOperator,
    available_backends,
    backend_numeric,
    slem,
    total_variation_distance,
)
from repro.datasets import load_cached
from repro.graph import Graph
from repro.sampling import bfs_sample
from repro.sybil import RouteInstances

#: Walk length for the batched-evolution micro-bench: long enough that the
#: SpMM dominates, short enough to keep the looped baseline affordable.
_EVOLUTION_STEPS = 10


@pytest.fixture(scope="module")
def medium_graph():
    return load_cached("physics1")


@pytest.fixture(scope="module")
def large_graph():
    return load_cached("facebook_a")


def test_micro_slem_sparse(benchmark, medium_graph):
    result = benchmark(lambda: slem(medium_graph))
    assert 0.99 < result < 1.0


def test_micro_block_evolution_step(benchmark, large_graph):
    operator = TransitionOperator(large_graph)
    matrix = operator.matrix()
    n = large_graph.num_nodes
    block = np.zeros((64, n))
    block[np.arange(64), np.arange(64)] = 1.0

    out = benchmark(lambda: block @ matrix)
    assert out.shape == (64, n)
    assert np.allclose(out.sum(axis=1), 1.0)


def _looped_evolution(operator, sources, steps):
    """The pre-refactor measurement loop: one 1-D mat-vec per source/step."""
    pi = operator.stationary()
    out = np.empty(len(sources), dtype=np.float64)
    for i, src in enumerate(sources):
        x = operator.point_mass(int(src))
        for _ in range(steps):
            x = operator.step(x)
        out[i] = total_variation_distance(x, pi, validate=False)
    return out


def _block_evolution(operator, sources, steps):
    """The MarkovOperator block API: chunked SpMM for all sources.

    Uses `variation_curves` (not a raw `evolve_block`) so the bench times
    the shipped hot path, memory-aware chunking included — an unchunked
    (1000, n) block is *slower* than the loop on the larger stand-ins.
    """
    return operator.variation_curves(sources, [steps])[:, 0]


@pytest.mark.parametrize("num_sources", [32, 256, 1000])
@pytest.mark.parametrize("mode", ["looped", "block"])
def test_micro_batched_evolution(benchmark, medium_graph, mode, num_sources):
    """Looped vs block multi-source evolution (the Figure 3-7 hot path)."""
    operator = TransitionOperator(medium_graph)
    operator.stationary()  # pre-warm the cache so only evolution is timed
    sources = np.arange(num_sources) % medium_graph.num_nodes
    run = _looped_evolution if mode == "looped" else _block_evolution

    out = benchmark(lambda: run(operator, sources, _EVOLUTION_STEPS))
    assert out.shape == (num_sources,)
    assert np.all((out >= 0.0) & (out <= 1.0))


def test_micro_batched_evolution_speedup(medium_graph):
    """The block API must beat the looped baseline ≥3x at 1000 sources.

    This is the acceptance bar for the batched-evolution refactor; the
    parametrised benchmark above records the absolute numbers, this test
    pins the ratio (interleaved best-of-5 so background load hits both
    sides equally) and checks bit-for-bit result equality while it is at
    it.
    """
    operator = TransitionOperator(medium_graph)
    operator.stationary()
    sources = np.arange(1000) % medium_graph.num_nodes

    def timed(fn):
        t0 = time.perf_counter()
        result = fn(operator, sources, _EVOLUTION_STEPS)
        return time.perf_counter() - t0, result

    t_block = t_loop = float("inf")
    d_block = d_loop = None
    for _ in range(5):
        t, d_block = timed(_block_evolution)
        t_block = min(t_block, t)
        t, d_loop = timed(_looped_evolution)
        t_loop = min(t_loop, t)

    assert np.array_equal(d_block, d_loop)  # batching never changes results
    speedup = t_loop / t_block
    assert speedup >= 3.0, f"block API only {speedup:.1f}x faster than loop"


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_micro_backend_evolution(benchmark, medium_graph, backend):
    """The batched-evolution hot path under each SpMM backend, with
    identity asserted on the timed output: float64 backends must be
    bit-for-bit the numpy result, float32 inside its pinned envelope.
    Comparing this bench's per-backend timings is the seam's scoreboard.
    """
    operator = TransitionOperator(medium_graph)
    operator.stationary()
    sources = np.arange(256) % medium_graph.num_nodes
    policy = ExecutionPolicy(backend=backend)
    oracle = operator.variation_curves(sources, [_EVOLUTION_STEPS])

    out = benchmark(
        lambda: operator.variation_curves(
            sources, [_EVOLUTION_STEPS], policy=policy
        )
    )
    if backend_numeric(backend) == "float64":
        assert np.array_equal(out, oracle)
    else:
        assert np.abs(out - oracle).max() <= FLOAT32_CURVE_ATOL


def test_micro_route_advancement(benchmark, medium_graph):
    routes = RouteInstances(medium_graph, 1, seed=3)
    table = routes.single_instance(0)
    slots = np.arange(table.size)

    out = benchmark(lambda: table[slots])
    assert np.unique(out).size == slots.size


def test_micro_bfs_sample(benchmark, large_graph):
    sub, _map = benchmark(lambda: bfs_sample(large_graph, 2000, seed=11))
    assert sub.num_nodes <= 2000


def test_micro_graph_construction(benchmark, medium_graph):
    edges = medium_graph.edges()
    n = medium_graph.num_nodes
    g = benchmark(lambda: Graph.from_edges(edges, num_nodes=n))
    assert g == medium_graph


def test_micro_slem_power_backend(benchmark, medium_graph):
    from repro.core import transition_spectrum_extremes

    result = benchmark(
        lambda: transition_spectrum_extremes(medium_graph, method="power")
    )
    assert 0.99 < result.slem < 1.0


def test_micro_escape_probability(benchmark, medium_graph):
    from repro.sybil import attach_sybil_region, escape_probability, random_sybil_region

    scen = attach_sybil_region(
        medium_graph, random_sybil_region(200, seed=5), 5, seed=6
    )
    esc = benchmark(lambda: escape_probability(scen, [10, 40, 160]))
    assert np.all(np.diff(esc) > 0)


def test_micro_louvain(benchmark, medium_graph):
    from repro.community import louvain, modularity

    labels = benchmark(lambda: louvain(medium_graph, seed=9))
    assert modularity(medium_graph, labels) > 0.5
