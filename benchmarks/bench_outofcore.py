"""Out-of-core sweep benchmark: streaming stripes vs the in-memory kernel.

Times the Figure 3 workload — a multi-walk variation-distance sweep — on
a chunk-generated community graph opened straight from its on-disk CSR
container, and gates the streaming backend's reason to exist:

* **identity gate** (tier-1): the streaming sweep over a mapped graph is
  ``np.array_equal`` to the in-memory numpy kernel — stripe budgets are
  a residency knob, never a numerics knob (``tests/core/test_outofcore.py``
  pins the same contract across budgets/workers/checkpoints);
* **residency gate** (tier-2): at a stripe budget far below the matrix
  footprint, the sweep's added *anonymous* memory stays a small multiple
  of the budget + dense block size instead of the full CSR size.

The gate reads ``RssAnon`` from ``/proc/self/status`` rather than
``ru_maxrss``: file-backed mmap pages count toward RSS but are clean
reclaimable cache the kernel drops under pressure — charging them to
the streaming backend would penalise it for the very thing it is
designed to do (the tier-2 CI job draws the same line with
``RLIMIT_DATA``, which caps anonymous mappings only).  Each case
appends a record — wall time, arc throughput, memory deltas — to
``benchmarks/results/outofcore.json``.
"""

from __future__ import annotations

import json
import resource
import time

import numpy as np
import pytest

from repro.core import ExecutionPolicy, TransitionOperator
from repro.generators.chunked import chunked_community_csr

_WALKS = [1, 2, 5, 10]
_NUM_SOURCES = 200
_NODES = 20_000
_BUDGETS = [None, 4 << 20, 1 << 20]


def _memory_bytes() -> dict:
    """Process memory snapshot: anonymous RSS (the gated quantity),
    file-backed RSS, and the lifetime high-water mark."""
    snap = {
        "maxrss": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024,
    }
    try:
        for line in open("/proc/self/status"):
            if line.startswith(("RssAnon:", "RssFile:", "VmHWM:")):
                key, value = line.split(":", 1)
                snap[key.lower()] = int(value.split()[0]) * 1024
    except OSError:  # non-Linux: ru_maxrss only
        pass
    return snap


def _append_record(results_dir, record: dict) -> None:
    path = results_dir / "outofcore.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = (record["benchmark"], record.get("budget"))
    records = [
        r for r in records if (r.get("benchmark"), r.get("budget")) != key
    ]
    records.append(record)
    records.sort(key=lambda r: (r.get("benchmark", ""), str(r.get("budget"))))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def mapped_graph(tmp_path_factory):
    path = tmp_path_factory.mktemp("outofcore") / "bench.csr"
    return chunked_community_csr(
        path, _NODES, num_communities=40, mu_frac=0.03,
        mean_extra_degree=6.0, seed=17,
    )


@pytest.fixture(scope="module")
def sources(mapped_graph):
    return np.arange(_NUM_SOURCES, dtype=np.int64) % mapped_graph.num_nodes


@pytest.mark.parametrize("budget", _BUDGETS)
def test_streaming_identity_and_throughput(
    benchmark, mapped_graph, sources, results_dir, config, budget
):
    """Streaming at every budget equals the in-memory oracle bit for bit."""
    dense = TransitionOperator(mapped_graph.materialize())
    oracle = dense.variation_curves(sources, _WALKS)

    op = TransitionOperator(mapped_graph)
    policy = ExecutionPolicy(backend="streaming", memory_budget=budget)

    before = _memory_bytes()
    start = time.perf_counter()
    curves = benchmark.pedantic(
        lambda: op.variation_curves(sources, _WALKS, policy=policy),
        rounds=1,
    )
    elapsed = time.perf_counter() - start
    after = _memory_bytes()

    assert np.array_equal(curves, oracle)

    arcs_swept = 2 * mapped_graph.num_edges * max(_WALKS)
    _append_record(
        results_dir,
        {
            "benchmark": "streaming_sweep",
            "budget": budget,
            "nodes": int(mapped_graph.num_nodes),
            "edges": int(mapped_graph.num_edges),
            "sources": int(sources.size),
            "walks": _WALKS,
            "seconds": elapsed,
            "arcs_per_second": arcs_swept / max(elapsed, 1e-9),
            "memory_before_bytes": before,
            "memory_after_bytes": after,
            "seed": config.seed,
        },
    )


@pytest.mark.slow
def test_streaming_residency_gate(results_dir, config, tmp_path_factory):
    """Tier 2: with a 1 MiB stripe budget on a graph whose transition
    matrix is ~30x larger, the sweep's added anonymous memory stays well
    under the full matrix size."""
    path = tmp_path_factory.mktemp("resident") / "big.csr"
    graph = chunked_community_csr(
        path, 200_000, num_communities=200, mu_frac=0.02,
        mean_extra_degree=8.0, seed=23,
    )
    op = TransitionOperator(graph)
    sources = np.arange(32, dtype=np.int64)
    budget = 1 << 20
    # CSR float64 data + int64 indices for the transition matrix.
    matrix_bytes = 2 * graph.num_edges * (8 + 8)
    assert matrix_bytes > 20 * budget  # the gate must actually be a gate

    before = _memory_bytes()
    start = time.perf_counter()
    curves = op.variation_curves(
        sources, _WALKS,
        policy=ExecutionPolicy(backend="streaming", memory_budget=budget),
    )
    elapsed = time.perf_counter() - start
    after = _memory_bytes()

    assert curves.shape == (sources.size, len(_WALKS))
    # Budget-sized stripe buffers + budget-sized dense blocks dominate;
    # materialising the matrix would cost ``matrix_bytes``.  Streaming
    # must stay clearly below it in anonymous (non-reclaimable) memory.
    delta = after.get("rssanon", after["maxrss"]) - before.get(
        "rssanon", before["maxrss"]
    )
    assert delta < matrix_bytes / 2, (delta, matrix_bytes)
    _append_record(
        results_dir,
        {
            "benchmark": "residency_gate",
            "budget": budget,
            "nodes": int(graph.num_nodes),
            "edges": int(graph.num_edges),
            "matrix_bytes": matrix_bytes,
            "seconds": elapsed,
            "anon_delta_bytes": delta,
            "memory_before_bytes": before,
            "memory_after_bytes": after,
            "seed": config.seed,
        },
    )
