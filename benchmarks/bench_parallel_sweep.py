"""Parallel sweep micro-benchmark: the shared-memory pool vs serial.

Times the paper-shaped workload — a 1000-source variation-distance sweep
on ``physics1`` (the Figure 3 measurement) — at 1/2/4/8 workers, and
gates the runtime's reason to exist:

* **speedup gate** (tier-2, needs >= 4 physical cores): 4 workers must
  finish the sweep at least 2x faster than serial;
* **identity gate** (tier-1, any machine): the parallel sweep must be
  ``np.array_equal`` to the serial one — ``workers`` is a speed knob,
  never a numerics knob (``tests/core/test_parallel.py`` pins the same
  contract property-style across operator flavours).

Each timing case appends a record to
``benchmarks/results/parallel_sweep.json`` so worker-scaling curves are
inspectable after the run (and the ``workers`` knob is part of every
result's provenance, like all bench sidecars).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import (
    FLOAT32_CURVE_ATOL,
    ExecutionPolicy,
    TransitionOperator,
    available_backends,
    backend_numeric,
    estimate_mixing_time,
    parallel_backend_available,
)
from repro.datasets import load_cached

_NUM_SOURCES = 1000
_WALKS = [1, 2, 5, 10]
_WORKER_GRID = [1, 2, 4, 8]
_SPEEDUP_FLOOR = 2.0  # required at 4 workers
_GATE_WORKERS = 4

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable; nothing to compare",
)


@pytest.fixture(scope="module")
def operator():
    op = TransitionOperator(load_cached("physics1"))
    op.stationary()  # pre-warm so only the sweep is timed
    return op


@pytest.fixture(scope="module")
def sources(operator):
    return np.arange(_NUM_SOURCES) % operator.num_states


def _sweep(operator, sources, workers):
    return operator.variation_curves(sources, _WALKS, workers=workers)


def _append_record(results_dir, record: dict) -> None:
    path = results_dir / "parallel_sweep.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = (record["benchmark"], record["workers"])
    records = [
        r for r in records if (r.get("benchmark"), r.get("workers")) != key
    ]
    records.append(record)
    records.sort(key=lambda r: (r.get("benchmark", ""), r.get("workers", 0)))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


@pytest.mark.parametrize("workers", _WORKER_GRID)
def test_parallel_sweep(benchmark, operator, sources, workers, results_dir):
    """Wall-clock of the 1000-source sweep at each worker count.

    ``workers=1`` is the serial baseline (the runtime falls back before
    touching the pool).  Single pedantic round: the sweep is
    deterministic and pool startup is part of the cost being measured.
    """
    if workers > 1 and not parallel_backend_available():
        pytest.skip("no parallel backend on this platform")
    wall = []

    def run():
        start = time.perf_counter()
        out = _sweep(operator, sources, workers)
        wall.append(time.perf_counter() - start)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out.shape == (_NUM_SOURCES, len(_WALKS))
    assert np.all((out >= 0.0) & (out <= 1.0))
    _append_record(
        results_dir,
        {
            "benchmark": "parallel_sweep",
            "dataset": "physics1",
            "num_sources": _NUM_SOURCES,
            "walk_lengths": _WALKS,
            "workers": workers,
            "seconds": min(wall),
            "cpu_count": os.cpu_count(),
        },
    )


@needs_pool
def test_parallel_sweep_identical(operator, sources):
    """Tier-1 identity gate: the pooled sweep reproduces serial numbers
    bit-for-bit (subset of sources to keep the default run fast)."""
    subset = sources[:200]
    serial = _sweep(operator, subset, workers=None)
    pooled = _sweep(operator, subset, workers=2)
    assert np.array_equal(serial, pooled)


@needs_pool
@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < _GATE_WORKERS,
    reason=f"speedup gate needs >= {_GATE_WORKERS} cores "
    f"(found {os.cpu_count()}); scaling cannot manifest on fewer",
)
def test_parallel_sweep_speedup_gate(operator, sources, results_dir):
    """4 workers must be >= 2x faster than serial at 1000 sources.

    Interleaved best-of-3 so background load penalises both sides
    equally; bitwise equality is asserted on the same runs that are
    timed, so the speedup can never be bought with drifted numbers.
    """

    def timed(workers):
        start = time.perf_counter()
        out = _sweep(operator, sources, workers)
        return time.perf_counter() - start, out

    t_serial = t_pool = float("inf")
    out_serial = out_pool = None
    for _ in range(3):
        t, out_serial = timed(None)
        t_serial = min(t_serial, t)
        t, out_pool = timed(_GATE_WORKERS)
        t_pool = min(t_pool, t)

    assert np.array_equal(out_serial, out_pool), "speedup gate saw drifted numbers"
    speedup = t_serial / t_pool
    _append_record(
        results_dir,
        {
            "benchmark": "parallel_sweep_speedup_gate",
            "dataset": "physics1",
            "num_sources": _NUM_SOURCES,
            "workers": _GATE_WORKERS,
            "seconds": t_pool,
            "serial_seconds": t_serial,
            "speedup": speedup,
            "cpu_count": os.cpu_count(),
        },
    )
    assert speedup >= _SPEEDUP_FLOOR, (
        f"parallel sweep speedup {speedup:.2f}x at {_GATE_WORKERS} workers "
        f"is below the {_SPEEDUP_FLOOR}x floor (serial {t_serial:.3f}s, "
        f"pooled {t_pool:.3f}s)"
    )


# ----------------------------------------------------------------------
# Backend-comparison gates (the PR-7 SpMM seam)
# ----------------------------------------------------------------------
def _append_backend_record(results_dir, record: dict) -> None:
    """Per-backend timing sidecar (``backend_sweep.json``), keyed on
    (benchmark, backend) so reruns replace rather than accumulate."""
    path = results_dir / "backend_sweep.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = (record["benchmark"], record["backend"])
    records = [
        r for r in records if (r.get("benchmark"), r.get("backend")) != key
    ]
    records.append(record)
    records.sort(key=lambda r: (r.get("benchmark", ""), r.get("backend", "")))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_backend_sweep_comparison(operator, sources, backend, results_dir):
    """Every SpMM backend runs the physics1 sweep; per-backend wall time
    goes to the sidecar and identity is asserted *on the timed run*:
    float64 backends bit-for-bit against the numpy oracle, float32
    inside its pinned envelope — a fast backend with drifted numbers
    can never post a time.
    """
    subset = sources[:300]
    oracle = operator.variation_curves(subset, _WALKS)

    start = time.perf_counter()
    out = operator.variation_curves(
        subset, _WALKS, policy=ExecutionPolicy(backend=backend)
    )
    seconds = time.perf_counter() - start

    numeric = backend_numeric(backend)
    if numeric == "float64":
        assert np.array_equal(out, oracle), f"{backend} drifted from oracle"
    else:
        worst = np.abs(out - oracle).max()
        assert worst <= FLOAT32_CURVE_ATOL, (
            f"{backend} outside envelope: {worst:.3e}"
        )
    _append_backend_record(
        results_dir,
        {
            "benchmark": "backend_sweep",
            "dataset": "physics1",
            "backend": backend,
            "numeric": numeric,
            "num_sources": int(subset.size),
            "walk_lengths": _WALKS,
            "seconds": seconds,
            "cpu_count": os.cpu_count(),
        },
    )


def test_estimator_beats_point_mass_gate(operator, results_dir):
    """The acceptance gate for the cheaper estimators: on the
    physics1-scale sweep at ε=0.25, both new modes must undercut the
    point-mass baseline — the uniform start needs (far) fewer evolution
    steps than the worst point-mass source, and wall-clock must beat the
    per-source baseline sweep outright.
    """
    graph = load_cached("physics1")
    epsilon = 0.25
    sources = list(range(50))

    start = time.perf_counter()
    baseline = estimate_mixing_time(
        graph, epsilon, sources=sources, max_steps=500, operator=operator
    )
    t_baseline = time.perf_counter() - start

    start = time.perf_counter()
    uniform = estimate_mixing_time(
        graph, epsilon, mode="uniform_start", max_steps=500, operator=operator
    )
    t_uniform = time.perf_counter() - start

    base_steps = int(baseline.per_source.max())
    uni_steps = int(uniform.per_source.max())
    _append_backend_record(
        results_dir,
        {
            "benchmark": "estimator_gate",
            "dataset": "physics1",
            "backend": "numpy",
            "epsilon": epsilon,
            "point_mass_seconds": t_baseline,
            "point_mass_steps": base_steps,
            "uniform_start_seconds": t_uniform,
            "uniform_start_steps": uni_steps,
        },
    )
    assert uni_steps < base_steps, (
        f"uniform start took {uni_steps} steps vs point-mass {base_steps}"
    )
    assert t_uniform < t_baseline, (
        f"uniform start ({t_uniform:.3f}s) did not beat the point-mass "
        f"baseline ({t_baseline:.3f}s)"
    )
