"""Extension bench — stand-in replica stability.

Regenerates datasets with independent seeds and asserts the reproduced
orderings are recipe properties, not seed luck: every acquaintance
replica mixes far slower than every OSN replica, and the per-dataset
spread of T(0.1) stays well inside the gap between the categories.
"""

import numpy as np

from repro.experiments import render_table, replication_table, run_replication


def test_replication(benchmark, config, save_result):
    stats = benchmark.pedantic(
        lambda: run_replication(config, replicas=4), rounds=1, iterations=1
    )
    save_result("ext_replication", render_table(replication_table(stats)))

    by_name = {s.dataset: s for s in stats}
    slow_min = min(by_name[n].t01.min() for n in ("physics1", "enron"))
    fast_max = max(by_name[n].t01.max() for n in ("wiki_vote", "facebook"))
    # Worst slow replica is still an order of magnitude above the best
    # fast replica: the category split survives reseeding.
    assert slow_min > 10 * fast_max
    # Relative spreads are moderate (the stand-ins aren't knife-edge).
    for s in stats:
        assert s.t01_rel_spread < 0.5, s.dataset
