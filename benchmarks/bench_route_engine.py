"""Route-engine benchmark: blocked kernels vs the per-instance loop.

The Figure 8 workload is ``r = r0·√m`` random-route instances advanced
``w`` steps each.  This bench times that tail sweep at facebook-sample
scale (r ≈ 650 instances, w = 320, the paper's longest route length) for

* the **blocked serial kernel** (offset-flattened tables, one gather per
  step per block, fast exact permutation build), and
* the **historical per-instance loop** (``np.lexsort`` tables, one
  Python iteration per (instance, step)) kept verbatim as
  ``RouteInstances._tails_at_lengths_reference``,

and gates the rewrite's reasons to exist:

* **speedup gate** (any machine, single-threaded kernels): blocked must
  be >= 3x faster than the reference on the same sweep;
* **identity gate** (tier-1): blocked output must be ``np.array_equal``
  to the reference — and the blocked *admission* path must reproduce the
  sequential verdicts on a tiny graph — at every seed, because the
  blocked/parallel paths are speed knobs, never numerics knobs
  (``tests/sybil/test_routes_parallel.py`` pins the same contract
  property-style);
* **pool speedup gate** (tier-2, ``skipif``-gated on core count as in
  ``bench_parallel_sweep.py``): 4 workers must beat serial by >= 2x.

Timing records land in ``benchmarks/results/route_engine.json`` with
the usual provenance fields so the speedup claim is inspectable after
the run.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core import parallel_backend_available
from repro.datasets import load_cached
from repro.sampling import bfs_sample
from repro.sybil import (
    RouteInstances,
    SybilLimit,
    SybilLimitParams,
    no_attack_scenario,
)

_SAMPLE = 3000
_INSTANCES = 650  # ~ r0 * sqrt(m) at facebook-sample scale
_NUM_SOURCES = 200
_LENGTHS = [10, 40, 160, 320]
_SERIAL_SPEEDUP_FLOOR = 3.0
_POOL_SPEEDUP_FLOOR = 2.0
_GATE_WORKERS = 4

needs_pool = pytest.mark.skipif(
    not parallel_backend_available(),
    reason="fork + shared-memory backend unavailable; nothing to compare",
)


@pytest.fixture(scope="module")
def graph():
    full = load_cached("facebook_a")
    sample, _ = bfs_sample(full, _SAMPLE, seed=0)
    return sample


@pytest.fixture(scope="module")
def sources(graph):
    return np.arange(_NUM_SOURCES, dtype=np.int64) % graph.num_nodes


def _routes(graph):
    # cache_tables=False: neither contender may amortise table builds
    # across timing runs — construction cost is part of the comparison.
    return RouteInstances(graph, _INSTANCES, seed=7, cache_tables=False)


def _append_record(results_dir, record: dict) -> None:
    path = results_dir / "route_engine.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = record["benchmark"]
    records = [r for r in records if r.get("benchmark") != key]
    records.append(record)
    records.sort(key=lambda r: r.get("benchmark", ""))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


def _base_record(**extra) -> dict:
    return {
        "dataset": f"facebook_a[bfs {_SAMPLE}]",
        "instances": _INSTANCES,
        "num_sources": _NUM_SOURCES,
        "walk_lengths": _LENGTHS,
        "cpu_count": os.cpu_count(),
        **extra,
    }


def test_route_engine_speedup_gate(graph, sources, results_dir):
    """Blocked serial >= 3x over the per-instance loop, same bytes.

    Interleaved best-of-2 so background load penalises both sides
    equally; equality is asserted on the timed runs themselves, so the
    speedup can never be bought with drifted numbers.
    """
    ri = _routes(graph)
    lengths = np.asarray(_LENGTHS, dtype=np.int64)

    def timed(fn):
        start = time.perf_counter()
        out = fn()
        return time.perf_counter() - start, out

    t_blocked = t_reference = float("inf")
    out_blocked = out_reference = None
    for _ in range(2):
        t, out_blocked = timed(lambda: ri.tails_at_lengths(sources, lengths, seed=3))
        t_blocked = min(t_blocked, t)
        t, out_reference = timed(
            lambda: ri._tails_at_lengths_reference(sources, lengths, seed=3)
        )
        t_reference = min(t_reference, t)

    assert np.array_equal(out_blocked, out_reference), (
        "speedup gate saw drifted numbers"
    )
    speedup = t_reference / t_blocked
    _append_record(
        results_dir,
        _base_record(
            benchmark="route_engine_speedup_gate",
            seconds=t_blocked,
            reference_seconds=t_reference,
            speedup=speedup,
        ),
    )
    assert speedup >= _SERIAL_SPEEDUP_FLOOR, (
        f"blocked route sweep only {speedup:.2f}x faster than the "
        f"per-instance loop (floor {_SERIAL_SPEEDUP_FLOOR}x)"
    )


def test_route_engine_identity_gate(graph, sources):
    """Tier-1 identity: blocked == reference at several block sizes
    (subset of instances to keep the default run fast)."""
    ri = RouteInstances(graph, 24, seed=11, cache_tables=False)
    lengths = np.asarray(_LENGTHS, dtype=np.int64)
    reference = ri._tails_at_lengths_reference(sources, lengths, seed=5)
    for block_size in (None, 1, 7, 24):
        got = ri.tails_at_lengths(sources, lengths, seed=5, block_size=block_size)
        assert np.array_equal(got, reference)


def test_admission_identity_gate():
    """Tier-1 identity: the vectorised admission path reproduces the
    sequential verdicts on a tiny graph, with and without the balance
    condition (the golden suite pins absolute values; this pins the
    blocked-vs-sequential relation on a graph cheap enough for CI)."""
    from repro.generators import erdos_renyi_gnm
    from repro.graph import largest_connected_component

    graph, _ = largest_connected_component(erdos_renyi_gnm(120, 500, seed=3))
    scenario = no_attack_scenario(graph)
    for enforce_balance in (True, False):
        protocol = SybilLimit(
            scenario,
            SybilLimitParams(route_length=8, enforce_balance=enforce_balance),
            seed=17,
        )
        serial = protocol.admission_sweep(0, [2, 5, 8], seed=13)
        rerun = protocol.admission_sweep(0, [2, 5, 8], seed=13)
        for a, b in zip(serial, rerun):
            assert np.array_equal(a.accepted, b.accepted)
            assert np.array_equal(a.intersected, b.intersected)


def test_route_engine_blocked_sweep(benchmark, graph, sources, results_dir):
    """Wall-clock of the blocked serial sweep (the production path)."""
    ri = _routes(graph)
    lengths = np.asarray(_LENGTHS, dtype=np.int64)
    wall = []

    def run():
        start = time.perf_counter()
        out = ri.tails_at_lengths(sources, lengths, seed=3)
        wall.append(time.perf_counter() - start)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert out.shape == (_NUM_SOURCES, _INSTANCES, len(_LENGTHS))
    _append_record(
        results_dir,
        _base_record(benchmark="route_engine_blocked_sweep", seconds=min(wall)),
    )


@needs_pool
@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < _GATE_WORKERS,
    reason=f"pool speedup gate needs >= {_GATE_WORKERS} cores "
    f"(found {os.cpu_count()}); scaling cannot manifest on fewer",
)
def test_route_engine_pool_speedup_gate(graph, sources, results_dir):
    """4 workers must beat the blocked serial sweep by >= 2x."""
    ri = _routes(graph)
    lengths = np.asarray(_LENGTHS, dtype=np.int64)

    def timed(workers):
        start = time.perf_counter()
        out = ri.tails_at_lengths(sources, lengths, seed=3, workers=workers)
        return time.perf_counter() - start, out

    t_serial = t_pool = float("inf")
    out_serial = out_pool = None
    for _ in range(3):
        t, out_serial = timed(None)
        t_serial = min(t_serial, t)
        t, out_pool = timed(_GATE_WORKERS)
        t_pool = min(t_pool, t)

    assert np.array_equal(out_serial, out_pool), "pool gate saw drifted numbers"
    speedup = t_serial / t_pool
    _append_record(
        results_dir,
        _base_record(
            benchmark="route_engine_pool_speedup_gate",
            workers=_GATE_WORKERS,
            seconds=t_pool,
            serial_seconds=t_serial,
            speedup=speedup,
        ),
    )
    assert speedup >= _POOL_SPEEDUP_FLOOR
