"""Ablation — BFS sampling bias (the paper's footnote 3).

"BFS algorithm may bias the sampled graph to have faster mixing" — this
bench compares the SLEM of BFS samples against Metropolis-Hastings
random-walk samples and the full graph on the whisker-heavy DBLP
stand-in, where the bias is most visible.
"""

from repro.experiments import render_table, run_sampling_bias_ablation


def test_sampling_bias_ablation(benchmark, config, save_result):
    table = benchmark.pedantic(
        lambda: run_sampling_bias_ablation(config), rounds=1, iterations=1
    )
    save_result("ablation_sampling_bias", render_table(table))

    values = {row[0]: float(row[2]) for row in table.rows}
    # BFS samples mix faster (smaller mu) than the full graph ...
    assert values["BFS sample"] < values["full graph"]
    # ... and at least as fast as degree-corrected random-walk samples.
    assert values["BFS sample"] <= values["MHRW sample"] + 1e-4
