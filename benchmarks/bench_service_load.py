"""Service load benchmark: latency percentiles under concurrent clients.

Drives the stdlib HTTP front-end the way a deployment would — several
client threads issuing a mixed stream of point-mass mixing-time queries,
variation curves, and SLEM requests against one long-lived server — and
records per-request wall-clock latencies.  Three things are gated or
measured:

* **identity gate** (tier-1 semantics, asserted here too): every answer
  returned under load is bit-identical to the serial batch computation,
  whatever the interleaving, coalescing, or cache state;
* **warm-registry speedup**: a query answered through a warm operator
  (stationary vector + shared segment already built) must beat the cold
  path that pays operator construction — the registry's reason to exist;
* **latency distribution**: p50/p99 across >= 4 concurrent clients,
  appended to ``benchmarks/results/service_load.json`` with the usual
  provenance sidecar fields so regressions are diffable run-to-run.

The percentile job is tier-2 (timing-sensitive, non-blocking in CI); the
identity assertions never depend on timing.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.core.mixing import measure_mixing
from repro.core.spectral import slem
from repro.core.walks import TransitionOperator
from repro.datasets import load_cached
from repro.service import (
    HTTPServiceClient,
    OperatorRegistry,
    QueryEngine,
    ResultCache,
    ServiceServer,
)

_DATASET = "physics1"
_WALKS = [1, 2, 5, 10]
_CURVE_SOURCES = [0, 7, 19, 42, 101]
_EPSILON = 0.25
_CLIENTS = 4
_REQUESTS_PER_CLIENT = 30


@pytest.fixture(scope="module")
def expected():
    graph = load_cached(_DATASET)
    operator = TransitionOperator(graph)
    sources = list(range(2 * _CLIENTS * _REQUESTS_PER_CLIENT))
    return {
        "curves": measure_mixing(graph, _WALKS, sources=_CURVE_SOURCES).distances,
        "times": operator.hitting_times(sources, _EPSILON),
        "slem": float(slem(graph)),
    }


@pytest.fixture
def server():
    engine = QueryEngine(
        OperatorRegistry(capacity=4),
        ResultCache(max_entries=1024),
        coalesce_window=0.005,
    )
    with ServiceServer(engine, own_engine=True) as srv:
        yield srv


def _append_record(results_dir, record: dict) -> None:
    path = results_dir / "service_load.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = (record["benchmark"], record["clients"])
    records = [
        r for r in records if (r.get("benchmark"), r.get("clients")) != key
    ]
    records.append(record)
    records.sort(key=lambda r: (r.get("benchmark", ""), r.get("clients", 0)))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


def test_warm_registry_beats_cold_construction(benchmark, results_dir, config):
    """One registry entry, two timings: the first slem query pays graph
    load + operator build + stationary solve; the repeat (cache cleared,
    so the sweep re-runs) reuses the warm operator.  The warm path must
    win — that delta is the service's amortisation claim."""

    def warm_vs_cold():
        with QueryEngine(
            OperatorRegistry(capacity=2), ResultCache(max_entries=0)
        ) as engine:
            t0 = time.perf_counter()
            cold = engine.slem(_DATASET)
            t_cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = engine.slem(_DATASET)
            t_warm = time.perf_counter() - t0
            assert warm.value == cold.value
            return t_cold, t_warm

    t_cold, t_warm = benchmark.pedantic(warm_vs_cold, rounds=1)
    assert t_warm < t_cold, (t_warm, t_cold)
    _append_record(
        results_dir,
        {
            "benchmark": "warm_vs_cold",
            "clients": 1,
            "dataset": _DATASET,
            "cold_s": t_cold,
            "warm_s": t_warm,
            "speedup": t_cold / t_warm,
            "mode": config.mode,
            "seed": config.seed,
        },
    )


@pytest.mark.parametrize("clients", [_CLIENTS, 2 * _CLIENTS])
def test_http_load_latency_percentiles(
    benchmark, server, expected, results_dir, config, clients
):
    """Mixed query stream from ``clients`` concurrent HTTP clients.

    Every client thread opens its own connection and issues a 1:1:1
    rotation of mixing-time (distinct sources, so coalescing has real
    batches to form), variation-curve, and SLEM queries.  Latencies are
    recorded per request; answers are checked bit-for-bit against the
    serial batch oracle computed once up front.
    """
    host, port = server.address
    latencies: list = []
    errors: list = []
    barrier = threading.Barrier(clients)
    lock = threading.Lock()

    def client_loop(client_id):
        try:
            with HTTPServiceClient(host, port) as client:
                barrier.wait()
                for i in range(_REQUESTS_PER_CLIENT):
                    source = client_id * _REQUESTS_PER_CLIENT + i
                    t0 = time.perf_counter()
                    if i % 3 == 0:
                        reply = client.mixing_time(_DATASET, source, _EPSILON)
                        ok = reply.value["time"] == int(
                            expected["times"].times[source]
                        )
                    elif i % 3 == 1:
                        reply = client.variation_curve(
                            _DATASET, _CURVE_SOURCES, _WALKS
                        )
                        ok = np.array_equal(
                            np.asarray(reply.value, dtype=np.float64),
                            expected["curves"],
                        )
                    else:
                        reply = client.slem(_DATASET)
                        ok = reply.value == expected["slem"]
                    elapsed = time.perf_counter() - t0
                    with lock:
                        latencies.append(elapsed)
                    assert ok, f"answer drift under load: client {client_id} req {i}"
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    def run_load():
        latencies.clear()
        errors.clear()
        threads = [
            threading.Thread(target=client_loop, args=(c,)) for c in range(clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - t0

    wall = benchmark.pedantic(run_load, rounds=1)
    assert not errors, errors[0]
    assert len(latencies) == clients * _REQUESTS_PER_CLIENT
    sample = np.sort(np.asarray(latencies))
    p50 = float(np.percentile(sample, 50))
    p99 = float(np.percentile(sample, 99))
    stats = server.engine.stats()
    _append_record(
        results_dir,
        {
            "benchmark": "http_load",
            "clients": clients,
            "dataset": _DATASET,
            "requests": len(latencies),
            "wall_s": wall,
            "p50_s": p50,
            "p99_s": p99,
            "max_s": float(sample[-1]),
            "throughput_rps": len(latencies) / wall,
            "cache_hits": stats["cache"].hits,
            "coalesced_requests": stats["coalesced_requests"],
            "mode": config.mode,
            "seed": config.seed,
        },
    )
