"""Ablation — accepted sybils vs attack edges and route length (Section 5).

The paper: "It is then easy to compute the number of accepted Sybil
identities which is t * g".  This bench attaches sybil regions with
varying g, sweeps w, and checks accepted sybils (a) grow with w, (b)
stay under the g * w bound, and (c) longer walks buy honest admission at
the price of more accepted sybils — the exact trade-off of Section 5.
"""

from repro.experiments import render_table, run_sybil_bound_ablation


def test_sybil_bound_ablation(benchmark, config, save_result):
    table = benchmark.pedantic(
        lambda: run_sybil_bound_ablation(config), rounds=1, iterations=1
    )
    save_result("ablation_sybil_bound", render_table(table))

    cells = [
        (int(row[0]), int(row[1]), int(row[2]), float(row[4]))
        for row in table.rows
    ]
    by_g = {}
    for g, w, accepted, honest in cells:
        by_g.setdefault(g, []).append((w, accepted, honest))

    for g, series in by_g.items():
        series.sort()
        accepted = [a for _w, a, _h in series]
        honest = [h for _w, _a, h in series]
        # More sybils and more honest admission as walks lengthen.
        assert accepted[-1] >= accepted[0], g
        assert honest[-1] >= honest[0], g
        # The g * w bound holds with slack for the per-tail cap.
        for w, a, _h in series:
            assert a <= g * w * 2, (g, w, a)
