"""Extension bench — SybilGuard admission vs route length (Section 2).

"Experiments done in the SybilGuard paper are similar": one route
instance, node-level intersection.  Asserts the Figure 8 analogue: on
the slow-mixing graph even Θ(sqrt(n log n)) routes leave a large honest
fraction unadmitted, while the fast OSN is fully admitted by w = 20.
"""

import numpy as np

from repro.experiments import render_figure, run_sybilguard_admission


def test_sybilguard_admission(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_sybilguard_admission(config), rounds=1, iterations=1
    )
    save_result("ext_sybilguard_admission", render_figure(figure))

    series = {s.label.split(" ")[0]: s for s in figure.panels["main"]}
    slow = series["physics1"]
    fast = series["wiki_vote"]
    # Admission improves with route length on both graphs.
    assert slow.y[-1] > slow.y[0]
    assert fast.y[-1] >= fast.y[0]
    # Fast OSN: complete admission by w = 20.
    idx20 = int(np.flatnonzero(fast.x == 20)[0])
    assert fast.y[idx20] > 95.0
    # Slow graph: even the longest swept route falls short of 95%.
    assert slow.y[-1] < 95.0
