"""Extension bench — SybilRank's O(log n) premise vs measured mixing.

Asserts: on the fast OSN the AUC is essentially saturated by the O(log n)
termination point, while the slow-mixing acquaintance graph's AUC at
O(log n) is measurably below its own plateau, which it only reaches at
iteration counts comparable to the measured mixing time (hundreds).
"""

import numpy as np

from repro.experiments import render_figure
from repro.experiments.sybilrank_iterations import run_sybilrank_iterations


def test_sybilrank_iterations(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_sybilrank_iterations(config), rounds=1, iterations=1
    )
    save_result("ext_sybilrank_iterations", render_figure(figure))

    series = {s.label.split(" ")[0]: s for s in figure.panels["main"]}
    slow = series["physics1"]
    fast = series["wiki_vote"]

    def auc_at(s, iters):
        return float(s.y[np.flatnonzero(s.x == iters)[0]])

    # Fast OSN: saturated at ~log n (the grid point 10 ~ log2(2300)).
    assert auc_at(fast, 10) > 0.98
    # Slow graph: below its own plateau at log-n iterations...
    plateau = slow.y.max()
    assert auc_at(slow, 10) < plateau - 0.02
    # ... and the plateau is only reached at >= 100 iterations.
    reach = slow.x[np.flatnonzero(slow.y >= plateau - 0.005)[0]]
    assert reach >= 100
