"""Table 1 — SLEM of every dataset's transition matrix.

Regenerates the paper's Table 1 on the synthetic stand-ins: node count,
edge count and the second largest eigenvalue modulus mu per dataset.
Shape assertions: every acquaintance-trust graph has a larger mu than
every weak-trust OSN, and LiveJournal's mu is the largest of the large
datasets.
"""

from repro.experiments import render_table, run_table1, table1_result


def test_table1_slem(benchmark, config, save_result):
    rows = benchmark.pedantic(lambda: run_table1(config), rounds=1, iterations=1)
    save_result("table1_slem", render_table(table1_result(rows)))

    by_name = {row.name: row for row in rows}
    assert len(rows) == 15
    for row in rows:
        assert 0.0 < row.mu < 1.0

    # Trust-model ordering: acquaintance graphs mix slower than OSNs.
    acquaintance_mus = [r.mu for r in rows if r.category == "acquaintance"]
    osn_small_mus = [by_name["wiki_vote"].mu, by_name["facebook"].mu]
    assert min(acquaintance_mus) > max(osn_small_mus)

    # LiveJournal is the slowest large dataset.
    lj = max(by_name["livejournal_a"].mu, by_name["livejournal_b"].mu)
    for other in ("dblp", "youtube", "facebook_a", "facebook_b"):
        assert lj > by_name[other].mu
