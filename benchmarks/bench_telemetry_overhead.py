"""Overhead budget of the telemetry layer on the hot numeric path.

The observability layer (:mod:`repro.obs`) guards every instrumentation
site with a single ``if OBS.enabled:`` attribute check, so with telemetry
off the only residual cost on the Figure 3-7 inner loop is that branch
plus a no-op context lookup per chunk.  These benches pin the budget:

* ``test_overhead_block_evolution_disabled`` — the acceptance bar.
  Interleaved best-of-N timing of ``variation_curves`` (the instrumented
  shipped hot path, chunking included) against a line-for-line copy of
  the same serial loop with only the telemetry calls deleted.  The
  instrumented path may be at most **2% slower** with telemetry
  disabled.
* ``test_micro_evolution_telemetry_{off,on}`` — absolute numbers for the
  same workload with the registry off and on, recorded side by side by
  pytest-benchmark so the *enabled* cost is visible too (it is allowed
  to be non-zero; only the disabled path has a hard budget).

Run with ``pytest benchmarks/bench_telemetry_overhead.py``.
"""

import time

import numpy as np
import pytest

from repro.core import TransitionOperator
from repro.core.distances import total_variation_to_reference
from repro.core.operators import resolve_block_size
from repro.datasets import load_cached
from repro.obs import OBS

_EVOLUTION_STEPS = 10
_NUM_SOURCES = 256
#: Interleaved repetitions for the ratio test.  Best-of keeps background
#: load from biasing either arm; interleaving makes drift hit both.
_ROUNDS = 9
#: Acceptance bar from the observability issue: the disabled-telemetry
#: instrumented path may cost at most this fraction over bare numerics.
_MAX_DISABLED_OVERHEAD = 0.02


@pytest.fixture(scope="module")
def medium_graph():
    return load_cached("physics1")


@pytest.fixture(scope="module")
def operator(medium_graph):
    op = TransitionOperator(medium_graph)
    op.stationary()  # pre-warm so only evolution is timed
    return op


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every bench starts from the disabled-registry baseline state."""
    was_enabled = OBS.enabled
    OBS.disable()
    OBS.reset()
    yield
    OBS.enabled = was_enabled
    OBS.reset()


def _sources(graph):
    return np.arange(_NUM_SOURCES) % graph.num_nodes


def _instrumented(operator, sources):
    """The shipped hot path: chunked block evolution, telemetry guards in."""
    return operator.variation_curves(sources, [_EVOLUTION_STEPS])[:, 0]


def _bare(operator, sources):
    """``variation_curves``'s serial loop with the telemetry deleted.

    A line-for-line copy of the serial branch of
    :meth:`MarkovOperator.variation_curves` — same chunk size
    (:func:`resolve_block_size`), same :meth:`point_mass_block` /
    :meth:`_apply_block` calls, same checkpoint structure and row-wise
    TVD reduction — with every ``OBS`` touch removed.  The ratio test
    therefore isolates exactly what the instrumentation costs (the
    ``if OBS.enabled:`` guards plus one disabled-span context), not the
    operator layer's pre-existing validation/dispatch overhead.  Results
    stay bit-for-bit equal to the shipped path.
    """
    src = np.asarray(sources, dtype=np.int64).ravel()
    lengths = np.asarray([_EVOLUTION_STEPS], dtype=np.int64)
    ref = operator.stationary()
    chunk_rows = resolve_block_size(operator.num_states, None)
    max_len = int(lengths[-1])
    out = np.empty((src.size, lengths.size), dtype=np.float64)
    for lo in range(0, src.size, chunk_rows):
        chunk = src[lo : lo + chunk_rows]
        x = operator.point_mass_block(chunk)
        col = 0
        for t in range(max_len + 1):
            if col < lengths.size and lengths[col] == t:
                out[lo : lo + chunk.size, col] = total_variation_to_reference(
                    x, ref, validate=False
                )
                col += 1
            if t < max_len:
                x = operator._apply_block(x)
    return out[:, 0]


def test_overhead_block_evolution_disabled(operator, medium_graph):
    """Acceptance bar: disabled-telemetry overhead ≤2% on block evolution."""
    sources = _sources(medium_graph)
    assert not OBS.enabled

    def timed(fn):
        t0 = time.perf_counter()
        result = fn(operator, sources)
        return time.perf_counter() - t0, result

    # Warm both paths once (JIT-free, but caches/allocators settle).
    timed(_bare)
    timed(_instrumented)

    t_bare = t_inst = float("inf")
    d_bare = d_inst = None
    for _ in range(_ROUNDS):
        t, d_inst = timed(_instrumented)
        t_inst = min(t_inst, t)
        t, d_bare = timed(_bare)
        t_bare = min(t_bare, t)

    assert np.array_equal(d_inst, d_bare)  # guards may not touch numerics
    overhead = t_inst / t_bare - 1.0
    assert overhead <= _MAX_DISABLED_OVERHEAD, (
        f"disabled-telemetry path {overhead:+.2%} vs bare numerics "
        f"(budget {_MAX_DISABLED_OVERHEAD:.0%}); "
        f"instrumented {t_inst * 1e3:.1f} ms, bare {t_bare * 1e3:.1f} ms"
    )
    # Sanity: telemetry really was off — nothing may have been recorded.
    snap = OBS.snapshot()
    assert snap["counters"] == {}


def test_micro_evolution_telemetry_off(benchmark, operator, medium_graph):
    """Absolute timing of the instrumented hot path, registry disabled."""
    sources = _sources(medium_graph)
    out = benchmark(lambda: _instrumented(operator, sources))
    assert out.shape == (_NUM_SOURCES,)


def test_micro_evolution_telemetry_on(benchmark, operator, medium_graph):
    """Absolute timing with the registry enabled (counters + spans live)."""
    sources = _sources(medium_graph)
    OBS.enable()
    out = benchmark(lambda: _instrumented(operator, sources))
    assert out.shape == (_NUM_SOURCES,)
    assert OBS.snapshot()["counters"]["core.evolution.rows"] > 0
