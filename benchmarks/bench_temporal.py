"""Temporal trend benchmark: warm incremental SLEM vs cold re-solves.

The warm solver's reason to exist is the consecutive-boundary sweep: a
service tracking the SLEM of a churning graph re-solves after *every*
delta batch, and each window's eigenvectors are an excellent seed for
the next.  This bench runs a 50-window consecutive sweep over the
``temporal_mathoverflow`` stand-in against two baselines:

* **static API** — per-window
  :func:`~repro.core.transition_spectrum_extremes`, the only way to get
  a trend before the incremental subsystem existed.  The **speedup
  gate** (tier-2) requires the warm sweep to beat it by at least 3x.
* **cold loop** — ``slem_trend(warm=False)``, the subsystem's own
  solver with warm seeding disabled.  A tighter comparison (it already
  shares the trend loop's operator plumbing), recorded for transparency
  but gated only on agreement.

Both comparisons re-check the tier-1 **agreement contract**: every
window's warm SLEM within :data:`~repro.core.WARM_SLEM_ATOL` of the
cold value.

Stride matters: consecutive boundaries (small inter-window deltas) are
the warm regime; widely-spaced boundaries fold many deltas per step and
the seed decays toward useless.  A second, non-gated record at stride 6
documents that edge of the envelope so the ≥3x number is never quoted
out of context.  Each record appends to
``benchmarks/results/temporal.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
import pytest

from repro.core import WARM_SLEM_ATOL, slem_trend, transition_spectrum_extremes
from repro.core.spectral import normalized_adjacency
from repro.datasets import generate_temporal, get_temporal_spec

_DATASET = "temporal_mathoverflow"
_WINDOWS = 50
_SPEEDUP_GATE = 3.0


def _append_record(results_dir, record: dict) -> None:
    path = results_dir / "temporal.json"
    records = []
    if path.exists():
        records = json.loads(path.read_text(encoding="utf-8"))
    key = (record["benchmark"], record.get("stride"))
    records = [r for r in records if (r.get("benchmark"), r.get("stride")) != key]
    records.append(record)
    records.sort(key=lambda r: (r.get("benchmark", ""), str(r.get("stride"))))
    path.write_text(json.dumps(records, indent=2) + "\n", encoding="utf-8")


@pytest.fixture(scope="module")
def temporal():
    # generate_temporal (not load_temporal_cached): the bench must never
    # share a mutable instance with other suites in the same process.
    return generate_temporal(get_temporal_spec(_DATASET))


def _boundaries(temporal, count: int, stride: int):
    times = temporal.times()
    picked = times[1 :: stride][:count]
    return list(picked)


def _sweep_record(temporal, times, stride, config):
    # Warm-up: materialise every window snapshot and its normalised
    # adjacency (both memoised on the shared Graph instances) before
    # timing, so the one-off build cost lands on no contender — the
    # bench gates the *solvers*, and whichever sweep ran first would
    # otherwise pay the builds for everyone.
    for t in times:
        normalized_adjacency(temporal.at(t))

    start = time.perf_counter()
    warm_trend = slem_trend(temporal, times=times, warm=True)
    warm_s = time.perf_counter() - start

    start = time.perf_counter()
    cold_trend = slem_trend(temporal, times=times, warm=False)
    cold_s = time.perf_counter() - start

    start = time.perf_counter()
    static_slem = np.array(
        [transition_spectrum_extremes(temporal.at(t)).slem for t in times]
    )
    static_s = time.perf_counter() - start

    err_cold = float(np.max(np.abs(warm_trend.slem - cold_trend.slem)))
    err_static = float(np.max(np.abs(warm_trend.slem - static_slem)))
    return warm_trend, {
        "benchmark": "slem_trend_warm_vs_cold",
        "dataset": _DATASET,
        "stride": stride,
        "windows": len(times),
        "nodes": int(temporal.num_nodes),
        "edges_final": int(temporal.snapshot().num_edges),
        "warm_seconds": warm_s,
        "cold_loop_seconds": cold_s,
        "static_api_seconds": static_s,
        "speedup_vs_static": static_s / max(warm_s, 1e-9),
        "speedup_vs_cold_loop": cold_s / max(warm_s, 1e-9),
        "warm_windows": int(warm_trend.warm_started.sum()),
        "warm_matvecs": int(warm_trend.matvecs.sum()),
        "cold_matvecs": int(cold_trend.matvecs.sum()),
        "max_abs_slem_err": max(err_cold, err_static),
        "agreement_atol": WARM_SLEM_ATOL,
        "seed": config.seed,
    }


@pytest.mark.slow
def test_warm_sweep_speedup_gate(temporal, results_dir, config):
    """Tier 2: 50 consecutive windows, warm ≥3x the static API,
    agreement pinned against both baselines."""
    times = _boundaries(temporal, _WINDOWS, stride=1)
    assert len(times) == _WINDOWS
    _, record = _sweep_record(temporal, times, 1, config)
    _append_record(results_dir, record)

    assert record["max_abs_slem_err"] <= WARM_SLEM_ATOL, (
        f"agreement contract violated: {record['max_abs_slem_err']:.3e}"
    )
    # All but the cold first window must actually warm-start, or the
    # timing below compares cold against (mostly) cold.
    assert record["warm_windows"] >= _WINDOWS - 2
    # The warm sweep must also do materially less work than the cold
    # loop, not just beat the static API on constant factors.
    assert record["warm_matvecs"] * 2 <= record["cold_matvecs"]
    assert record["warm_seconds"] * _SPEEDUP_GATE <= record["static_api_seconds"], (
        f"warm sweep only {record['speedup_vs_static']:.2f}x faster than the "
        f"static API (gate {_SPEEDUP_GATE}x): warm {record['warm_seconds']:.2f}s "
        f"vs static {record['static_api_seconds']:.2f}s"
    )


@pytest.mark.slow
def test_strided_sweep_documents_envelope(temporal, results_dir, config):
    """Tier 2, non-gated: stride-6 boundaries fold ~6x the churn per
    step — record the (smaller) speedup so the envelope is documented,
    but gate only the agreement contract."""
    times = _boundaries(temporal, 9, stride=6)
    _, record = _sweep_record(temporal, times, 6, config)
    _append_record(results_dir, record)
    assert record["max_abs_slem_err"] <= WARM_SLEM_ATOL
