"""Extension bench — trust-aware walks slow mixing (Sections 5-6).

The paper's future work ("considering the trust model ... as a
parameter") concretised: similarity weighting and originator bias both
push the variation-distance curves up, monotonically in the trust
strength, with the originator bias flooring above ~beta forever.
"""

import numpy as np

from repro.experiments import render_figure, run_trust_models


def test_trust_models(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_trust_models(config, betas=(0.05, 0.2)),
        rounds=1,
        iterations=1,
    )
    save_result("ext_trust_models", render_figure(figure))

    series = {s.label: s for s in figure.panels["main"]}
    plain = series["plain walk"].y
    weighted = series["similarity-weighted walk"].y
    beta_small = series["originator-biased beta=0.05"].y
    beta_large = series["originator-biased beta=0.2"].y

    assert plain[-1] < beta_small[-1] < beta_large[-1]
    assert plain[-1] <= weighted[-1] + 1e-9
    # Originator bias never mixes: the floor is at least ~beta.
    assert beta_large[-1] >= 0.19
    assert beta_small[-1] >= 0.04
    # The plain walk keeps improving over the sweep.
    assert plain[-1] < plain[0]
