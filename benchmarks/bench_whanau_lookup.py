"""Extension bench — Whānau's lookup utility vs walk length (Section 2).

The system-level consequence of slow mixing: Whānau routing tables built
with short walks fail lookups on acquaintance graphs while the same
walk lengths suffice on fast OSNs.  Asserts the success-rate curve rises
with w on physics1, stays near-perfect on wiki_vote, and that the walk
length physics1 needs for 90 % success exceeds the O(log n) regime.
"""

import numpy as np

from repro.experiments import render_figure
from repro.experiments.whanau_lookup import run_whanau_lookup


def test_whanau_lookup(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_whanau_lookup(config), rounds=1, iterations=1
    )
    save_result("ext_whanau_lookup", render_figure(figure))

    series = {s.label: s for s in figure.panels["main"]}
    slow = series["physics1"]
    fast = series["wiki_vote"]

    # Monotone-ish improvement and eventual success on the slow graph.
    assert slow.y[-1] > 0.9
    assert slow.y[-1] > slow.y[0] + 0.4
    # The fast OSN is already fine at the shortest walks.
    assert fast.y.min() > 0.85

    # Walk length needed for 90% on physics1 is beyond the 10-15 regime.
    w90 = slow.x[np.flatnonzero(slow.y >= 0.9)[0]]
    assert w90 > 15
