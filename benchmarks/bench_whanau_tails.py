"""Extension bench — the Whānau tail-edge methodology (Section 2 critique).

Computes the *exact* pooled tail-edge distribution at Whānau's walk
lengths and compares it to uniform-over-edges under both metrics.  The
reproduced critique: at w = 80 (the length Whānau called converged), the
slow-mixing graphs' tail distributions are still orders of magnitude
away from the eps = Theta(1/n) the security analyses assume — while on
a genuinely fast OSN the same walk length does converge, explaining why
eyeballed histograms misled.
"""

import numpy as np

from repro.experiments import render_figure, run_whanau_tails


def test_whanau_tails(benchmark, config, save_result):
    figure = benchmark.pedantic(
        lambda: run_whanau_tails(config),
        rounds=1,
        iterations=1,
    )
    save_result("ext_whanau_tails", render_figure(figure))

    def at_w80(panel, label):
        series = {s.label: s for s in figure.panels[panel]}
        s = series[label]
        idx = int(np.flatnonzero(s.x == 80)[0])
        return float(s.y[idx])

    for slow in ("physics1", "livejournal_a"):
        tvd = at_w80(slow, "TVD to uniform arcs")
        target = at_w80(slow, "target eps = 1/n")
        assert tvd > 20 * target, (slow, tvd, target)
    assert at_w80("wiki_vote", "TVD to uniform arcs") < at_w80("wiki_vote", "target eps = 1/n")
    # Separation distance (Whānau's metric) upper-bounds TVD everywhere.
    for panel, series_list in figure.panels.items():
        series = {s.label: s for s in series_list}
        assert np.all(
            series["separation distance"].y >= series["TVD to uniform arcs"].y - 1e-12
        ), panel
