"""Shared benchmark fixtures.

Every benchmark reproduces one paper table/figure via
``benchmark.pedantic(..., rounds=1)`` (experiments are deterministic and
heavy — statistical timing repetition would multiply minutes for no
insight), asserts the series' *shape* against the paper's claims, and
writes the rendered output to ``benchmarks/results/<name>.txt`` so the
reproduction is inspectable after the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import FAST, ExperimentConfig

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Fast-mode configuration (paper-scale runs: ``repro-mixing --full``)."""
    return FAST


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered table/figure under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _save
