"""Shared benchmark fixtures.

Every benchmark reproduces one paper table/figure via
``benchmark.pedantic(..., rounds=1)`` (experiments are deterministic and
heavy — statistical timing repetition would multiply minutes for no
insight), asserts the series' *shape* against the paper's claims, and
writes the rendered output to ``benchmarks/results/<name>.txt`` so the
reproduction is inspectable after the run.

Determinism: the session uses one :class:`ExperimentConfig` whose master
seed drives every runner, and an autouse fixture re-seeds numpy's legacy
global RNG before each bench so even stray ``np.random.*`` draws are
reproducible run-to-run.  Each saved result also gets a ``<name>.json``
sidecar recording the knobs that produced it (mode, seed, ``workers``,
block size) — a result file without its provenance is not a result.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import FAST, ExperimentConfig
from repro.obs import OBS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config() -> ExperimentConfig:
    """Fast-mode configuration (paper-scale runs: ``repro-mixing --full``)."""
    return FAST


@pytest.fixture(autouse=True)
def _deterministic_global_rng(config):
    """Benchmarks must be seed-deterministic: re-seed the legacy global
    RNG per test so ordering/selection effects cannot leak between
    benches (runners themselves use explicit ``default_rng`` streams)."""
    np.random.seed(config.seed % 2**32)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def result_metadata(config: ExperimentConfig) -> dict:
    """The provenance block recorded next to every benchmark result."""
    return {
        "mode": config.mode,
        "seed": config.seed,
        "workers": config.workers,
        "evolution_block_size": config.evolution_block_size,
        "telemetry": OBS.enabled,
    }


@pytest.fixture
def save_result(results_dir, config):
    """Write a rendered table/figure under benchmarks/results/.

    Besides the ``.txt`` payload, a ``.json`` sidecar records the config
    knobs (including ``workers``) plus a metric snapshot from the
    telemetry registry, so any result can be traced back to the exact
    sweep configuration — and, when run under ``REPRO_TELEMETRY=1``, the
    operation counts — that produced it.
    """

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        meta = {"name": name, **result_metadata(config), "metrics": OBS.snapshot()}
        (results_dir / f"{name}.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    return _save
