#!/usr/bin/env python
"""A tour of the walk-length design space across six Sybil defenses.

Every social-network Sybil defense picks a walk/iteration budget, and
the paper's finding — real social graphs mix slowly — stresses each one
differently.  This example runs the whole family on one slow-mixing
graph and prints where each design's budget sits relative to the
measured mixing time:

* SybilGuard / SybilLimit: routes must be ~ the mixing time (too short
  rejects honest nodes);
* SybilRank: iterations must *reach* the honest region's mixing time but
  stop before the attack cut equilibrates;
* Whānau: table-building walks must be ~ the mixing time or lookups fail;
* SybilInfer / SumUp: trace length / ticket radius play the same role.

Run:  python examples/defense_design_space.py
"""

import numpy as np

from repro.core import mixing_time_lower_bound, slem
from repro.datasets import load_dataset
from repro.sybil import (
    SybilLimit,
    SybilLimitParams,
    attach_sybil_region,
    build_whanau,
    lookup_success_rate,
    no_attack_scenario,
    random_sybil_region,
    ranking_quality,
    recommended_iterations,
    sybilrank,
)

DATASET = "physics1"
SEED = 7


def main() -> None:
    honest = load_dataset(DATASET)
    mu = slem(honest)
    t_mix = mixing_time_lower_bound(mu, 0.1)
    log_n = recommended_iterations(honest.num_nodes)
    print(f"{DATASET}: n={honest.num_nodes:,}, mu={mu:.4f}, "
          f"T_lb(0.1)={t_mix:.0f}, log2(n)={log_n}\n")

    # SybilLimit admission at the literature's budget vs the mixing time.
    protocol = SybilLimit(
        no_attack_scenario(honest), SybilLimitParams(route_length=200), seed=SEED
    )
    rng = np.random.default_rng(SEED)
    suspects = np.sort(rng.choice(np.arange(1, honest.num_nodes), 200, replace=False))
    outcomes = protocol.admission_sweep(0, [15, int(t_mix)], suspects=suspects, seed=SEED)
    print("SybilLimit honest admission:")
    for o in outcomes:
        tag = "(literature's budget)" if o.route_length == 15 else "(~measured T_mix)"
        print(f"   w={o.route_length:4d}: {o.admission_rate:6.1%}  {tag}")

    # SybilRank ranking quality at its O(log n) budget vs longer.
    scenario = attach_sybil_region(
        honest, random_sybil_region(300, seed=SEED), 5, seed=SEED + 1
    )
    seeds = [0] + [int(v) for v in honest.neighbors(0)]
    print("\nSybilRank honest-vs-sybil AUC:")
    for iters, tag in ((log_n, "(its own O(log n) rule)"), (int(t_mix), "(~measured T_mix)")):
        result = sybilrank(scenario, seeds, iterations=iters)
        print(f"   iters={iters:4d}: {ranking_quality(result, scenario):.3f}  {tag}")

    # Whanau lookups at short vs mixing-scale walks.
    print("\nWhanau lookup success:")
    for w, tag in ((10, "(an O(log n)-scale walk)"), (min(int(t_mix), 300), "(~measured T_mix)")):
        tables = build_whanau(honest, w, seed=SEED)
        stats = lookup_success_rate(tables, num_lookups=250, seed=SEED)
        print(f"   w={w:4d}: {stats.success_rate:6.1%}  {tag}")

    print("\nEvery design's knob lands in the same place: the measured mixing")
    print("time of the honest region - which the paper shows is 10-100x the")
    print("O(log n) the analyses assumed.")


if __name__ == "__main__":
    main()
