#!/usr/bin/env python
"""Measure the mixing time of *your* graph from a SNAP edge list.

This is the workflow for replacing the synthetic stand-ins with real
data: point the script at any SNAP-format edge list (``# comments``,
whitespace-separated pairs, ``.gz`` supported) and it runs the paper's
full preprocessing + measurement pipeline:

1. symmetrise (directed -> undirected) and take the largest connected
   component;
2. compute the SLEM and the equation (4) bounds over an epsilon sweep;
3. sample per-source mixing at several walk lengths and report the
   percentile bands of Figures 5/7.

Run:  python examples/measure_your_own_graph.py [path/to/edges.txt]
(with no argument, a demo edge list is generated first).
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import (
    PAPER_BANDS,
    lower_bound_curve,
    measure_mixing,
    percentile_bands,
    transition_spectrum_extremes,
)
from repro.graph import largest_connected_component, load_graph, write_edge_list


def demo_edge_list() -> Path:
    """Write a small community-structured demo graph to a temp file."""
    from repro.generators import community_powerlaw

    graph, _labels = community_powerlaw(
        1500, 2.5, 0.05, target_edges=5000, num_communities=15, seed=11
    )
    path = Path(tempfile.mkstemp(suffix=".txt")[1])
    write_edge_list(graph, path, header="demo community_powerlaw graph")
    print(f"(no input given; wrote a demo edge list to {path})\n")
    return path


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else demo_edge_list()

    raw = load_graph(path)
    graph, node_map = largest_connected_component(raw)
    print(f"loaded {path.name}: n={raw.num_nodes:,}, m={raw.num_edges:,}")
    print(f"largest connected component: n={graph.num_nodes:,}, m={graph.num_edges:,}\n")

    spectrum = transition_spectrum_extremes(graph)
    print(f"SLEM mu = {spectrum.slem:.5f} (spectral gap {spectrum.gap:.5f})")
    curve = lower_bound_curve(spectrum.slem, eps_min=1e-3, eps_max=0.25, points=5)
    print("equation (4) lower bound:")
    for eps, length in zip(curve.epsilons, curve.lengths):
        print(f"   T({eps:7.4f}) >= {length:8.1f}")

    walks = [5, 10, 20, 40, 80, 160]
    sources = min(200, graph.num_nodes)
    measurement = measure_mixing(graph, walks, sources=sources, seed=3)
    bands = percentile_bands(measurement, PAPER_BANDS)
    print(f"\nsampled variation distance ({sources} sources):")
    print(f"   {'w':>5s} {'best 10%':>10s} {'median 20%':>11s} {'worst 10%':>10s}")
    for j, w in enumerate(walks):
        print(
            f"   {w:5d} {bands.band('best10')[j]:10.4f} "
            f"{bands.band('median20')[j]:11.4f} {bands.band('worst10')[j]:10.4f}"
        )

    worst = measurement.worst_case()
    reached = np.flatnonzero(worst < 0.1)
    if reached.size:
        print(f"\nworst source reaches eps=0.1 by w={walks[int(reached[0])]}")
    else:
        print(f"\nworst source still at eps={worst[-1]:.3f} after w={walks[-1]} "
              "- this graph is slow mixing (extend the sweep)")


if __name__ == "__main__":
    main()
