#!/usr/bin/env python
"""Quickstart: measure the mixing time of a social graph both ways.

Loads one slow-mixing stand-in (physics co-authorship) and one fast OSN
(wiki-vote), then measures each exactly as the paper does:

1. spectrally — SLEM of the transition matrix + equation (4) bounds;
2. by definition — evolve point-mass distributions and find the walk
   length where the variation distance drops below epsilon.

Run:  python examples/quickstart.py
"""

from repro.core import (
    estimate_mixing_time,
    fast_mixing_walk_length,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    transition_spectrum_extremes,
)
from repro.datasets import get_spec, load_dataset

EPSILON = 0.1


def measure(name: str) -> None:
    spec = get_spec(name)
    graph = load_dataset(name)
    print(f"== {spec.table1_label} ({spec.category}) ==")
    print(f"   stand-in: n={graph.num_nodes:,}, m={graph.num_edges:,} "
          f"(paper: n={spec.paper_nodes:,}, m={spec.paper_edges:,})")

    # Method 1: the second largest eigenvalue modulus (Theorem 2).
    spectrum = transition_spectrum_extremes(graph)
    lower = mixing_time_lower_bound(spectrum.slem, EPSILON)
    upper = mixing_time_upper_bound(spectrum.slem, EPSILON, graph.num_nodes)
    print(f"   SLEM mu = {spectrum.slem:.5f}  (lambda2={spectrum.lambda2:.5f}, "
          f"lambda_min={spectrum.lambda_min:.5f})")
    print(f"   equation (4): {lower:.0f} <= T({EPSILON}) <= {upper:.0f}")

    # Method 2: definition-based sampling (equation (2)), 100 sources.
    estimate = estimate_mixing_time(graph, EPSILON, sources=100, seed=7, max_steps=20_000)
    print(f"   sampled (100 sources): worst T({EPSILON}) = {estimate.walk_length}, "
          f"average = {estimate.average_walk_length:.0f}")

    yardstick = fast_mixing_walk_length(spec.paper_nodes)
    print(f"   vs the literature's O(log n) yardstick: {yardstick:.0f} steps, "
          f"SybilGuard/SybilLimit used 10-15\n")


def main() -> None:
    for name in ("physics1", "wiki_vote"):
        measure(name)
    print("The paper's headline finding, in two graphs: acquaintance-trust")
    print("networks need walks one to two orders of magnitude longer than")
    print("the Sybil-defense literature assumed; weak-trust OSNs come closer.")


if __name__ == "__main__":
    main()
