#!/usr/bin/env python
"""Evaluate all four Sybil defenses on one attack scenario.

Builds the standard threat model (honest social graph + dense sybil
region + g attack edges) and runs SybilGuard, SybilLimit, SybilInfer and
SumUp against the same scenario, reporting both sides of the trade-off
the paper insists on: honest admission AND sybil acceptance.

Run:  python examples/sybil_defense_evaluation.py [g]
"""

import sys

import numpy as np

from repro.datasets import load_dataset
from repro.sampling import bfs_sample
from repro.sybil import (
    SumUpParams,
    SybilGuard,
    SybilInfer,
    SybilInferParams,
    SybilLimit,
    SybilLimitParams,
    attach_sybil_region,
    evaluate_admission,
    random_sybil_region,
    recommended_route_length,
    sumup_collect_votes,
)

SEED = 2010


def main() -> None:
    g_attack = int(sys.argv[1]) if len(sys.argv) > 1 else 3

    # Honest region: a 600-node BFS sample of the wiki-vote stand-in
    # (fast mixing, so the defenses' assumptions hold on the honest side).
    full = load_dataset("wiki_vote")
    honest, _ = bfs_sample(full, 600, seed=SEED)
    sybil = random_sybil_region(200, seed=SEED + 1)
    scenario = attach_sybil_region(honest, sybil, g_attack, seed=SEED + 2)
    verifier = 0
    print(f"scenario: honest n={scenario.num_honest}, sybil n={scenario.num_sybil}, "
          f"attack edges g={g_attack}\n")
    print(f"{'defense':12s} {'honest admitted':>16s} {'sybil accepted':>15s}")

    # --- SybilGuard: node-intersection of Theta(sqrt(n log n)) routes.
    w_guard = recommended_route_length(scenario.num_honest, constant=1.0)
    outcome = SybilGuard(scenario, w_guard, seed=SEED).run(verifier)
    m = evaluate_admission(scenario, outcome.suspects, outcome.accepted)
    print(f"{'SybilGuard':12s} {m.honest_admission_rate:16.2%} {m.sybil_acceptance_rate:15.2%}"
          f"   (w={w_guard})")

    # --- SybilLimit: r = r0 sqrt(m) tail intersection + balance.
    protocol = SybilLimit(scenario, SybilLimitParams(route_length=25), seed=SEED)
    outcome = protocol.run(verifier)
    m = evaluate_admission(scenario, outcome.suspects, outcome.accepted)
    print(f"{'SybilLimit':12s} {m.honest_admission_rate:16.2%} {m.sybil_acceptance_rate:15.2%}"
          f"   (w=25, r={protocol.num_instances})")

    # --- SybilInfer: Bayesian trace sampling.
    infer = SybilInfer(
        scenario,
        SybilInferParams(num_samples=300, burn_in=1500, steps_per_sample=8),
        seed=SEED,
    )
    result = infer.run(verifier)
    mask = result.honest_mask()
    truth = scenario.honest_mask()
    honest_kept = mask[truth][1:].mean()
    sybil_kept = mask[~truth].mean()
    print(f"{'SybilInfer':12s} {honest_kept:16.2%} {sybil_kept:15.2%}"
          f"   (evidence={result.evidence:.0f} nats)")

    # --- SumUp: ticket-capacitated vote flow.
    rng = np.random.default_rng(SEED)
    honest_voters = rng.choice(np.arange(1, scenario.num_honest), 300, replace=False)
    params = SumUpParams(c_max=300)
    h = sumup_collect_votes(scenario, verifier, honest_voters, params)
    s = sumup_collect_votes(scenario, verifier, scenario.sybil_nodes(), params)
    print(f"{'SumUp':12s} {h.collection_rate:16.2%} {s.collection_rate:15.2%}"
          f"   (c_max={params.c_max})")

    print("\nIncrease g (attack edges) to watch every defense degrade:")
    print(f"  python {sys.argv[0]} {g_attack * 4}")


if __name__ == "__main__":
    main()
