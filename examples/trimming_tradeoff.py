#!/usr/bin/env python
"""The trimming trade-off: better mixing for fewer members (Figure 6).

SybilGuard/SybilLimit preprocessed their graphs by iteratively deleting
low-degree nodes, which shortens the mixing time — but the paper shows
the price: DBLP loses ~75% of its nodes at min-degree 5.  This example
replays the study on the DBLP stand-in and prints the full trade-off
curve: nodes kept, SLEM, bound on T(0.1), and the average variation
distance at the fixed walk length w=100.

Run:  python examples/trimming_tradeoff.py
"""

from repro.core import measure_mixing, mixing_time_lower_bound, slem
from repro.datasets import load_dataset
from repro.graph import trim_min_degree

EPSILON = 0.1
CHECK_WALK = 100


def main() -> None:
    base = load_dataset("dblp")
    print(f"DBLP stand-in: n={base.num_nodes:,}, m={base.num_edges:,}\n")
    print(f"{'min deg':>8s} {'nodes':>7s} {'kept':>6s} {'mu':>8s} "
          f"{'T_lb(0.1)':>10s} {'avg eps @ w=100':>16s}")

    for k in (1, 2, 3, 4, 5):
        trimmed, _node_map = trim_min_degree(base, k)
        mu = slem(trimmed)
        bound = mixing_time_lower_bound(mu, EPSILON)
        sources = min(150, trimmed.num_nodes)
        measurement = measure_mixing(trimmed, [CHECK_WALK], sources=sources, seed=k)
        avg = measurement.average_case()[0]
        kept = trimmed.num_nodes / base.num_nodes
        print(f"{k:8d} {trimmed.num_nodes:7,} {kept:6.1%} {mu:8.5f} "
              f"{bound:10.1f} {avg:16.4f}")

    print("\nReading the table: mixing improves down the column, but so does")
    print("the fraction of users denied service outright - the paper's point")
    print('("about 75% of nodes are denied joining the service ... to boost')
    print('the mixing time").')


if __name__ == "__main__":
    main()
