#!/usr/bin/env python
"""Whānau DHT utility vs random-walk length.

Whānau builds its routing tables from random-walk samples, assuming
those samples are (approximately) stationary — i.e. the walk length
reaches the graph's mixing time.  This demo builds the DHT on a
slow-mixing co-authorship stand-in and a fast OSN at several walk
lengths and reports the lookup success rate, making the mixing-time
assumption's cost tangible at the system level.

Run:  python examples/whanau_dht_demo.py
"""

from repro.core import mixing_time_lower_bound, slem
from repro.datasets import load_dataset
from repro.sybil import build_whanau, lookup_success_rate

WALK_LENGTHS = (2, 5, 10, 20, 40, 80, 160)


def main() -> None:
    print(f"{'dataset':12s} {'T_lb(0.1)':>10s} | " +
          " ".join(f"w={w:<4d}" for w in WALK_LENGTHS))
    for name in ("physics1", "wiki_vote"):
        graph = load_dataset(name)
        bound = mixing_time_lower_bound(slem(graph), 0.1)
        rates = []
        for w in WALK_LENGTHS:
            tables = build_whanau(graph, w, seed=1)
            stats = lookup_success_rate(tables, num_lookups=300, seed=2)
            rates.append(stats.success_rate)
        cells = " ".join(f"{r:6.2f}" for r in rates)
        print(f"{name:12s} {bound:10.0f} | {cells}")

    print("\nReading the table: the co-authorship graph (mixing bound in the")
    print("hundreds) needs walks of ~80-160 before lookups work, while the")
    print("fast-mixing OSN is near-perfect from w=2. Whanau's O(log n)")
    print("walk-length assumption is only safe on the second kind of graph")
    print("- the paper's Section 2 critique, measured end to end.")


if __name__ == "__main__":
    main()
