#!/usr/bin/env python
"""Prove the streaming backend's memory claim under a hard OS ceiling.

The out-of-core pitch (DESIGN.md §5, EXPERIMENTS.md "Paper scale") is
that a Figure 3-style variation-curve sweep over a graph whose
transition matrix dwarfs the stripe budget completes — checkpointed and
resumed — while the in-memory path cannot even build its operator.
This driver makes the OS referee that claim:

1. chunk-generate a paper-shaped community graph straight into an
   on-disk CSR container (never materialising the edge list);
2. clamp ``RLIMIT_DATA`` — the kernel's cap on the data segment plus
   anonymous mappings (what malloc/numpy allocations draw from; clean
   file-backed mmap pages such as the container are deliberately
   outside it, they are reclaimable cache) — to the current footprint
   plus a fixed headroom far below the matrix size;
3. show the in-memory route dies with ``MemoryError``;
4. run the streaming sweep with a checkpoint store, then resume it,
   and require both to finish under the same ceiling with bit-identical
   curves.

Exit status 0 means the claim held; any other outcome (the dense path
fitting, the streaming path OOMing, curves drifting) is a failure.
Runs in tier-2 CI; locally: ``PYTHONPATH=src python
scripts/check_outofcore_budget.py``.
"""

from __future__ import annotations

import gc
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import ExecutionPolicy, TransitionOperator
from repro.generators.chunked import chunked_community_csr

NODES = 600_000
COMMUNITIES = 600
MEAN_EXTRA_DEGREE = 8.0
WALKS = [1, 2, 5, 10]
NUM_SOURCES = 16
STRIPE_BUDGET = 16 << 20
HEADROOM_BYTES = 100 << 20


def data_segment_bytes() -> int:
    """Current ``VmData`` — the quantity RLIMIT_DATA caps."""
    for line in open("/proc/self/status"):
        if line.startswith("VmData:"):
            return int(line.split()[1]) * 1024
    raise RuntimeError("VmData not found; this driver is Linux-only")


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="outofcore-budget-"))
    t0 = time.perf_counter()
    graph = chunked_community_csr(
        tmp / "huge.csr",
        NODES,
        num_communities=COMMUNITIES,
        mu_frac=0.02,
        mean_extra_degree=MEAN_EXTRA_DEGREE,
        seed=29,
    )
    matrix_bytes = 2 * graph.num_edges * (8 + 8)
    print(
        f"generated n={graph.num_nodes:,} m={graph.num_edges:,} "
        f"(transition matrix ~{matrix_bytes >> 20} MiB) "
        f"in {time.perf_counter() - t0:.1f}s"
    )

    gc.collect()
    ceiling = data_segment_bytes() + HEADROOM_BYTES
    if matrix_bytes < 1.5 * HEADROOM_BYTES:
        print("FAIL: matrix fits the headroom; the ceiling proves nothing")
        return 1
    resource.setrlimit(resource.RLIMIT_DATA, (ceiling, ceiling))
    print(f"RLIMIT_DATA clamped to {ceiling >> 20} MiB")

    # The in-memory route must be impossible under the ceiling.
    try:
        dense = TransitionOperator(graph.materialize())
        dense.variation_curves(np.arange(2, dtype=np.int64), [1])
    except MemoryError:
        print("in-memory path: MemoryError under the ceiling (expected)")
        dense = None
        gc.collect()
    else:
        print("FAIL: the in-memory operator fit under the ceiling")
        return 1

    sources = np.arange(NUM_SOURCES, dtype=np.int64) * (NODES // NUM_SOURCES)
    op = TransitionOperator(graph)
    ckpt = tmp / "ckpt"

    t0 = time.perf_counter()
    first = op.variation_curves(
        sources,
        WALKS,
        policy=ExecutionPolicy(
            backend="streaming",
            memory_budget=STRIPE_BUDGET,
            checkpoint_dir=ckpt,
        ),
    )
    print(f"streaming sweep finished in {time.perf_counter() - t0:.1f}s")

    t0 = time.perf_counter()
    resumed = op.variation_curves(
        sources,
        WALKS,
        policy=ExecutionPolicy(
            backend="streaming",
            memory_budget=STRIPE_BUDGET,
            checkpoint_dir=ckpt,
            resume=True,
        ),
    )
    print(f"checkpoint resume finished in {time.perf_counter() - t0:.1f}s")

    if not np.array_equal(first, resumed):
        print("FAIL: resumed curves drifted from the first pass")
        return 1
    if not np.all(np.isfinite(first)):
        print("FAIL: non-finite variation distances")
        return 1
    print(
        "OK: streaming + checkpoint/resume bit-identical under a ceiling "
        f"{matrix_bytes / HEADROOM_BYTES:.1f}x smaller than the matrix"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
