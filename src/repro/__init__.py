"""repro — a reproduction of *Measuring the Mixing Time of Social Graphs*
(Mohaisen, Yun, Kim — IMC 2010).

The library measures the mixing time of social graphs two ways — via the
second largest eigenvalue modulus (SLEM) of the random-walk transition
matrix, and directly from the definition by evolving point-mass
distributions — and re-implements the Sybil defenses whose assumptions
the paper stress-tests (SybilGuard, SybilLimit, SybilInfer, SumUp).

Quick start::

    from repro.datasets import load_dataset
    from repro.core import slem, mixing_time_lower_bound, estimate_mixing_time

    graph = load_dataset("physics1")          # synthetic Table 1 stand-in
    mu = slem(graph)                          # second largest eigenvalue modulus
    bound = mixing_time_lower_bound(mu, 0.1)  # equation (4), lower side
    sampled = estimate_mixing_time(graph, 0.1, sources=100, seed=7)

Subpackages
-----------
``repro.graph``
    CSR graph substrate: construction, I/O, traversal, components,
    k-core trimming, structural metrics.
``repro.generators``
    Random-graph models used to synthesise dataset stand-ins.
``repro.core``
    Random walks, stationary distributions, distances, spectra,
    mixing-time bounds and measurements.
``repro.sampling``
    BFS (snowball), random-walk and uniform subgraph sampling.
``repro.datasets``
    The Table 1 dataset registry and cached stand-in generation.
``repro.sybil``
    Attack scenarios, random routes, SybilGuard/SybilLimit/SybilInfer/
    SumUp, admission metrics.
``repro.community``
    Sweep cuts, label propagation, modularity, conductance.
``repro.experiments``
    One runner per paper table/figure plus ablations; also exposed via
    the ``repro-mixing`` CLI.
``repro.obs``
    Dependency-free observability: process-wide metrics registry, nested
    trace spans, and the JSON run-manifests every experiment emits.
"""

from . import community, core, datasets, errors, experiments, generators, graph, obs, sampling, sybil
from .core.runtime import ExecutionPolicy
from .errors import (
    CheckpointCorruption,
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    GraphFormatError,
    NotConnectedError,
    NotErgodicError,
    ReproError,
    RouteError,
    RuntimeFailure,
    SamplingError,
    ScenarioError,
)
from .graph import Graph

__version__ = "1.0.0"

__all__ = [
    "community",
    "core",
    "datasets",
    "errors",
    "experiments",
    "generators",
    "graph",
    "obs",
    "sampling",
    "sybil",
    "ExecutionPolicy",
    "Graph",
    "ReproError",
    "ConfigurationError",
    "GraphFormatError",
    "NotConnectedError",
    "NotErgodicError",
    "ConvergenceError",
    "DatasetError",
    "ScenarioError",
    "SamplingError",
    "RouteError",
    "RuntimeFailure",
    "CheckpointCorruption",
    "__version__",
]
