"""Internal helpers shared across :mod:`repro` subpackages.

These utilities are private to the library (not part of the public API),
but are deliberately small and well-tested because nearly every module
depends on them.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed,
    or an existing generator (returned unchanged so callers can thread a
    single stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_probability_vector(p: np.ndarray, *, name: str = "p", atol: float = 1e-8) -> np.ndarray:
    """Validate that ``p`` is a 1-D probability vector; return it as float64.

    Raises :class:`ValueError` when entries are negative or the vector does
    not sum to one within ``atol``.
    """
    arr = np.asarray(p, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if np.any(arr < -atol):
        raise ValueError(f"{name} has negative entries (min={arr.min()})")
    total = arr.sum()
    if not np.isclose(total, 1.0, atol=atol):
        raise ValueError(f"{name} must sum to 1, got {total}")
    return arr


def check_node_index(node: int, n: int, *, name: str = "node") -> int:
    """Validate a node index against graph order ``n`` and return it as int."""
    idx = int(node)
    if idx != node:
        raise ValueError(f"{name} must be an integer, got {node!r}")
    if not 0 <= idx < n:
        raise IndexError(f"{name}={idx} out of range for graph with {n} nodes")
    return idx


def unique_sorted_edges(u: np.ndarray, v: np.ndarray) -> tuple:
    """Canonicalise an undirected edge set.

    Orients every pair so ``u <= v``, drops self-loops and duplicate edges,
    and returns the deduplicated ``(u, v)`` arrays sorted lexicographically.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if u.shape != v.shape:
        raise ValueError("u and v must have the same shape")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    keep = lo != hi
    lo, hi = lo[keep], hi[keep]
    if lo.size == 0:
        return lo, hi
    pairs = np.stack([lo, hi], axis=1)
    pairs = np.unique(pairs, axis=0)
    return pairs[:, 0], pairs[:, 1]


def geometric_grid(lo: float, hi: float, num: int) -> np.ndarray:
    """A geometric (log-spaced) grid from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi <= 0:
        raise ValueError("geometric_grid endpoints must be positive")
    if num < 2:
        raise ValueError("geometric_grid needs at least two points")
    return np.geomspace(lo, hi, num)


def percentile_slices(
    values: np.ndarray,
    bands: Sequence[tuple],
) -> dict:
    """Average ``values`` over percentile bands.

    ``bands`` is a sequence of ``(label, lo_pct, hi_pct)`` triples.  Values
    are sorted ascending and each band averages the slice between the two
    percentiles.  Used to reproduce the paper's "top 10 / median 20 /
    lowest 10 percentile" aggregation (Figure 5 and Figure 7).
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    n = arr.size
    if n == 0:
        raise ValueError("cannot aggregate an empty value array")
    out = {}
    for label, lo_pct, hi_pct in bands:
        if not 0.0 <= lo_pct <= hi_pct <= 100.0:
            raise ValueError(f"invalid percentile band ({lo_pct}, {hi_pct})")
        lo_idx = int(np.floor(n * lo_pct / 100.0))
        hi_idx = int(np.ceil(n * hi_pct / 100.0))
        hi_idx = max(hi_idx, lo_idx + 1)
        hi_idx = min(hi_idx, n)
        lo_idx = min(lo_idx, hi_idx - 1)
        out[label] = float(arr[lo_idx:hi_idx].mean())
    return out


def format_count(x: int) -> str:
    """Format an integer with thousands separators (``1234567`` → ``1,234,567``)."""
    return f"{int(x):,}"


def stable_hash_u64(*parts: Iterable) -> int:
    """A deterministic 64-bit hash of a tuple of ints/strings.

    Python's built-in ``hash`` is salted per process; this one is stable
    across runs so it can derive per-dataset RNG seeds.
    """
    acc = np.uint64(1469598103934665603)  # FNV-1a offset basis
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for part in parts:
            data = str(part).encode("utf-8")
            for byte in data:
                acc = np.uint64(acc ^ np.uint64(byte))
                acc = np.uint64(acc * prime)
    return int(acc)


def atomic_write_text(path, text: str, *, encoding: str = "utf-8") -> None:
    """Write ``text`` to ``path`` atomically (write-to-temp + rename).

    The content lands in a uniquely named temporary file in the target
    directory (same filesystem, so the final :func:`os.replace` is an
    atomic rename), is fsynced, then renamed over ``path``.  A reader —
    or a run killed mid-write — therefore sees either the complete old
    file or the complete new file, never a truncated hybrid.  Used for
    every artifact the library persists outside the checkpoint store:
    run manifests, metric/trace snapshots and CLI text outputs.
    """
    import os
    import tempfile
    from pathlib import Path

    target = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
