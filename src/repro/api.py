"""Curated public surface of the :mod:`repro` library in one namespace.

``repro.api`` re-exports the names documented in ``docs/API.md`` that
make up the supported, stability-guaranteed surface: the graph
substrate, the measurement machinery, the execution-policy runtime, the
Sybil defenses, the experiment harness and the error taxonomy.  Import
from here when you want one flat namespace and an explicit contract::

    from repro.api import ExecutionPolicy, load_dataset, measure_mixing

    graph = load_dataset("physics1")
    curves = measure_mixing(
        graph, [1, 5, 10, 20, 40], sources=100, seed=7,
        policy=ExecutionPolicy(workers=-1, checkpoint_dir="ckpt/"),
    )

Everything listed in ``__all__`` here is pinned by
``tests/test_public_api.py`` against the committed manifest
``tests/data/public_api_manifest.txt`` — adding, renaming or removing a
name shows up as an explicit diff in review, never as a silent break.
Deep imports (``repro.core.parallel``, ``repro.obs`` internals, private
``_``-prefixed helpers) remain implementation detail and may change
between versions without notice.
"""

from __future__ import annotations

from . import __version__
from .community import (
    label_propagation,
    louvain,
    modularity,
    spectral_sweep_cut,
)
from .core import (
    DEFAULT_POLICY,
    MEASUREMENT_MODES,
    DirectedTransitionOperator,
    ExecutionPolicy,
    HittingTimes,
    MarkovOperator,
    MixingTimeEstimate,
    NonBacktrackingOperator,
    PerSourceMixing,
    SpmmBackend,
    TransitionOperator,
    WeightedTransitionOperator,
    as_policy,
    available_backends,
    backend_numeric,
    cheeger_bounds,
    conductance_lower_bound,
    directed_variation_curves,
    empirical_cdf,
    estimate_mixing_time,
    fast_mixing_walk_length,
    get_backend,
    lower_bound_curve,
    measure_mixing,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    non_backtracking_curves,
    non_backtracking_hitting_times,
    non_backtracking_slem,
    originator_biased_curves,
    parallel_backend_available,
    percentile_bands,
    register_backend,
    resolve_workers,
    sample_sources,
    simulate_walk,
    slem,
    spectral_gap,
    stationary_distribution,
    total_variation_distance,
    upper_bound_curve,
    variation_distance_curve,
    weighted_slem,
)
from .core import (
    WARM_SLEM_ATOL,
    MixingTrend,
    SlemTrend,
    SpectralState,
    StationaryTracker,
    mixing_trend,
    slem_trend,
    warm_spectral_extremes,
)
from .datasets import (
    REGISTRY,
    TEMPORAL_REGISTRY,
    load_cached,
    load_dataset,
    load_temporal_cached,
)
from .errors import (
    CheckpointCorruption,
    ConfigurationError,
    ConvergenceError,
    DatasetError,
    GraphFormatError,
    NotConnectedError,
    NotErgodicError,
    ReproError,
    RouteError,
    RuntimeFailure,
    SamplingError,
    ScenarioError,
)
from .experiments import (
    FAST,
    FULL,
    ExperimentConfig,
    render_figure,
    render_table,
    run_with_manifest,
    validate_workers,
)
from .graph import (
    DeltaLog,
    DiGraph,
    EdgeDelta,
    Graph,
    TemporalGraph,
    apply_delta,
    is_connected,
    largest_connected_component,
    load_graph,
    load_npz,
    save_npz,
    trim_min_degree,
    undo_delta,
)
from .core.runtime import sweep_fingerprint
from .sampling import bfs_sample
from .service import (
    SCHEMA_V2,
    CacheStats,
    HTTPServiceClient,
    MixingTrendQuery,
    OperatorRegistry,
    QueryEngine,
    ResultCache,
    ServiceClient,
    ServiceServer,
    SlemTrendQuery,
    graph_fingerprint,
    query_fingerprint,
)
from .sybil import (
    AttackStrategy,
    RouteInstances,
    SybilGuard,
    SybilLimit,
    SybilLimitParams,
    SybilScenario,
    attach_sybil_region,
    available_attack_strategies,
    build_attack_scenario,
    evaluate_admission,
    ranking_quality,
    register_attack_strategy,
    sybilrank,
)
from .experiments import (
    ADVERSARIAL_DEFENSES,
    AdversarialSweepResult,
    adversarial_sweep,
    run_adversarial_sweep,
    run_fig3_over_time,
    trend_measurements,
)

__all__ = [
    # version
    "__version__",
    # substrate
    "Graph",
    "DiGraph",
    "load_graph",
    "load_npz",
    "save_npz",
    "is_connected",
    "largest_connected_component",
    "trim_min_degree",
    # sampling & datasets
    "bfs_sample",
    "load_dataset",
    "load_cached",
    "REGISTRY",
    # measurement machinery
    "TransitionOperator",
    "DirectedTransitionOperator",
    "WeightedTransitionOperator",
    "MarkovOperator",
    "HittingTimes",
    "stationary_distribution",
    "total_variation_distance",
    "slem",
    "spectral_gap",
    "cheeger_bounds",
    "conductance_lower_bound",
    "mixing_time_lower_bound",
    "mixing_time_upper_bound",
    "lower_bound_curve",
    "upper_bound_curve",
    "fast_mixing_walk_length",
    "measure_mixing",
    "MEASUREMENT_MODES",
    "PerSourceMixing",
    "estimate_mixing_time",
    "MixingTimeEstimate",
    "variation_distance_curve",
    "sample_sources",
    "simulate_walk",
    "directed_variation_curves",
    "originator_biased_curves",
    "weighted_slem",
    "empirical_cdf",
    "percentile_bands",
    # non-backtracking estimator
    "NonBacktrackingOperator",
    "non_backtracking_curves",
    "non_backtracking_hitting_times",
    "non_backtracking_slem",
    # execution runtime
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "as_policy",
    "parallel_backend_available",
    "resolve_workers",
    "sweep_fingerprint",
    # SpMM backend seam
    "SpmmBackend",
    "available_backends",
    "backend_numeric",
    "get_backend",
    "register_backend",
    # temporal graphs & incremental maintenance
    "TemporalGraph",
    "EdgeDelta",
    "DeltaLog",
    "apply_delta",
    "undo_delta",
    "TEMPORAL_REGISTRY",
    "load_temporal_cached",
    "SpectralState",
    "StationaryTracker",
    "warm_spectral_extremes",
    "WARM_SLEM_ATOL",
    "MixingTrend",
    "SlemTrend",
    "mixing_trend",
    "slem_trend",
    "run_fig3_over_time",
    "trend_measurements",
    # serving layer
    "QueryEngine",
    "OperatorRegistry",
    "ResultCache",
    "CacheStats",
    "ServiceClient",
    "HTTPServiceClient",
    "ServiceServer",
    "MixingTrendQuery",
    "SlemTrendQuery",
    "SCHEMA_V2",
    "graph_fingerprint",
    "query_fingerprint",
    # community structure
    "spectral_sweep_cut",
    "label_propagation",
    "louvain",
    "modularity",
    # sybil defenses
    "SybilScenario",
    "attach_sybil_region",
    "RouteInstances",
    "SybilGuard",
    "SybilLimit",
    "SybilLimitParams",
    "sybilrank",
    "ranking_quality",
    "evaluate_admission",
    # adversarial scenarios
    "AttackStrategy",
    "available_attack_strategies",
    "register_attack_strategy",
    "build_attack_scenario",
    "ADVERSARIAL_DEFENSES",
    "AdversarialSweepResult",
    "adversarial_sweep",
    "run_adversarial_sweep",
    # experiment harness
    "ExperimentConfig",
    "FAST",
    "FULL",
    "validate_workers",
    "run_with_manifest",
    "render_table",
    "render_figure",
    # error taxonomy
    "ReproError",
    "ConfigurationError",
    "GraphFormatError",
    "NotConnectedError",
    "NotErgodicError",
    "ConvergenceError",
    "DatasetError",
    "ScenarioError",
    "SamplingError",
    "RouteError",
    "RuntimeFailure",
    "CheckpointCorruption",
]
