"""Command-line interface: ``repro-mixing <experiment> [--full]``.

Runs any paper experiment and prints its table or figure series as text.

Examples
--------
::

    repro-mixing table1
    repro-mixing fig8 --full
    repro-mixing all            # every experiment, fast mode
    repro-mixing list           # show available experiments
    repro-mixing serve          # long-lived HTTP query service

Exit codes
----------
Errors raised intentionally by the library are caught at this boundary
and mapped to distinct non-zero exit codes with a clean one-line
message (no traceback):

======  ============================================================
code    meaning
======  ============================================================
``0``   success
``2``   usage / configuration error (bad flag value, unknown
        experiment, invalid :class:`~repro.ExecutionPolicy`)
``3``   any other :class:`~repro.errors.ReproError` (bad graph,
        non-ergodic walk, failed convergence, …)
``4``   :class:`~repro.errors.CheckpointCorruption` — a resume
        checkpoint failed validation; delete it and rerun
``5``   :class:`~repro.errors.RuntimeFailure` — the fault-tolerant
        sweep runtime exhausted every recovery avenue
======  ============================================================

Unexpected exceptions (bugs) still propagate with a full traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Optional, Sequence

from ._util import atomic_write_text
from .core.runtime import ExecutionPolicy
from .errors import (
    CheckpointCorruption,
    ConfigurationError,
    ReproError,
    RuntimeFailure,
)
from .experiments import (
    ExperimentConfig,
    run_with_manifest,
    validate_workers,
    average_case_table,
    run_average_case,
    run_directed_conversion,
    run_trust_models,
    run_sybilguard_admission,
    run_sybilrank_iterations,
    replication_table,
    run_replication,
    run_whanau_lookup,
    run_whanau_tails,
    render_figure,
    render_table,
    run_adversarial_sweep,
    run_conductance_ablation,
    run_figure1,
    run_figure2,
    run_fig3_over_time,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_sampling_bias_ablation,
    run_sybil_bound_ablation,
    run_table1,
    table1_result,
)

__all__ = ["main", "EXPERIMENTS", "EXIT_CODES"]

#: Exit-code mapping applied at the CLI boundary (see module docstring).
#: Ordered most-specific-first; the first matching class wins.
EXIT_CODES = (
    (ConfigurationError, 2),
    (CheckpointCorruption, 4),
    (RuntimeFailure, 5),
    (ReproError, 3),
)


def _run_table1(config: ExperimentConfig) -> str:
    return render_table(table1_result(run_table1(config)))


EXPERIMENTS: Dict[str, Callable[[ExperimentConfig], str]] = {
    "table1": _run_table1,
    "fig1": lambda c: render_figure(run_figure1(c)),
    "fig2": lambda c: render_figure(run_figure2(c)),
    "fig3": lambda c: render_figure(run_figure3(c)),
    "fig3-over-time": lambda c: render_figure(run_fig3_over_time(c)),
    "fig4": lambda c: render_figure(run_figure4(c)),
    "fig5": lambda c: render_figure(run_figure5(c)),
    "fig6": lambda c: render_figure(run_figure6(c)),
    "fig7": lambda c: render_figure(run_figure7(c)),
    "fig8": lambda c: render_figure(run_figure8(c)),
    "adversarial-sweep": lambda c: render_figure(run_adversarial_sweep(c)),
    "whanau-tails": lambda c: render_figure(run_whanau_tails(c)),
    "whanau-lookup": lambda c: render_figure(run_whanau_lookup(c)),
    "sybilguard-admission": lambda c: render_figure(run_sybilguard_admission(c)),
    "sybilrank-iterations": lambda c: render_figure(run_sybilrank_iterations(c)),
    "replication": lambda c: render_table(replication_table(run_replication(c))),
    "average-case": lambda c: render_table(average_case_table(run_average_case(c))),
    "trust-models": lambda c: render_figure(run_trust_models(c)),
    "directed-conversion": lambda c: render_figure(run_directed_conversion(c)),
    "ablation-conductance": lambda c: render_table(run_conductance_ablation(c)),
    "ablation-sybil-bound": lambda c: render_table(run_sybil_bound_ablation(c)),
    "ablation-sampling-bias": lambda c: render_table(run_sampling_bias_ablation(c)),
}


def _workers_arg(raw: str) -> int:
    """Argparse ``type`` for ``--workers``: strict parse-time validation.

    Invalid values (``0``, ``-2``, ``2.5``, ``two``) fail immediately
    with argparse's usage error instead of surfacing hours into a sweep.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be an integer, got {raw!r}"
        ) from None
    try:
        validate_workers(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _memory_budget_arg(raw: str) -> int:
    """Argparse ``type`` for ``--memory-budget``: bytes with K/M/G suffix."""
    text = raw.strip().upper()
    scale = 1
    for suffix, factor in (("K", 1 << 10), ("M", 1 << 20), ("G", 1 << 30)):
        if text.endswith(suffix):
            text, scale = text[: -len(suffix)], factor
            break
    try:
        value = int(float(text) * scale)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"memory budget must be bytes with optional K/M/G suffix, got {raw!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("memory budget must be positive")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mixing",
        description="Reproduce tables/figures of 'Measuring the Mixing Time of Social Graphs' (IMC 2010)",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', 'list', 'datasets', 'fetch-dataset', or 'serve'",
    )
    parser.add_argument(
        "--datasets",
        metavar="NAMES",
        default=None,
        help="comma-separated registry names restricting dataset-driven "
        "experiments (e.g. 'table1 --datasets huge_livejournal' runs the "
        "paper-scale out-of-core stand-in, which default rosters skip)",
    )
    parser.add_argument(
        "--memory-budget",
        type=_memory_budget_arg,
        default=None,
        metavar="BYTES",
        help="peak working-set target for block evolution; accepts K/M/G "
        "suffixes (e.g. 256M). Streams the operator in budget-sized "
        "stripes with the streaming backend; results are bit-identical "
        "at any setting",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run with the paper's full parameters (slower) instead of fast mode",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the master seed",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help="also write each experiment's text output to DIR/<name>.txt",
    )
    parser.add_argument(
        "--workers",
        type=_workers_arg,
        default=None,
        metavar="N",
        help="processes for multi-source sweeps (-1 = all cores; "
        "default serial; results are identical at any setting)",
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="N",
        help="sources per evolution chunk (default: sized from the "
        "memory budget; results are identical at any setting)",
    )
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="SpMM backend for block evolution (numpy, tiled, streaming, "
        "float32; default numpy; float64 backends are bit-identical, "
        "float32 trades precision for memory bandwidth; streaming walks "
        "the operator in --memory-budget sized stripes for out-of-core "
        "graphs)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="persist completed sweep shards under DIR and resume from "
        "them on restart (results are bit-identical to an "
        "uninterrupted run)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="with --checkpoint-dir: discard existing checkpoints "
        "instead of resuming from them",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failed sweep shard before degrading to "
        "in-process serial execution (default 2)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-shard straggler timeout; a shard exceeding it is "
        "re-dispatched (default: no timeout)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="enable telemetry and write the metric snapshot (JSON) to FILE "
        "after all experiments finish",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="enable telemetry and write the span trace (JSON) to FILE "
        "after all experiments finish",
    )
    fetch = parser.add_argument_group(
        "fetch-dataset options", "only used with the 'fetch-dataset' command"
    )
    fetch.add_argument(
        "--name",
        default=None,
        metavar="SOURCE",
        help="SNAP source to fetch (see repro.datasets.snap.SNAP_SOURCES)",
    )
    fetch.add_argument(
        "--dest",
        default=None,
        metavar="DIR",
        help="directory receiving the ingested .csr container "
        "(default: the dataset cache directory)",
    )
    fetch.add_argument(
        "--sha256",
        default=None,
        metavar="HEX",
        help="expected SHA-256 of the downloaded archive; required when "
        "the source registry carries no pin (unverified downloads are "
        "always refused)",
    )
    fetch.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="override the registry URL (file:// works for local archives)",
    )
    fetch.add_argument(
        "--keep-all-components",
        action="store_true",
        help="skip the largest-connected-component extraction after ingest",
    )
    serve = parser.add_argument_group(
        "serve options", "only used with the 'serve' command"
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for 'serve' (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8377,
        metavar="N",
        help="bind port for 'serve' (0 = ephemeral; default 8377)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=1024,
        metavar="N",
        help="result-cache capacity for 'serve' (0 disables caching)",
    )
    serve.add_argument(
        "--registry-capacity",
        type=int,
        default=8,
        metavar="N",
        help="warm operators kept by the service registry (LRU beyond)",
    )
    serve.add_argument(
        "--coalesce-window",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="batching window for coalescing concurrent point-mass "
        "queries into one block sweep (0 disables coalescing)",
    )
    return parser


def _fetch_dataset(args) -> int:
    """The ``repro-mixing fetch-dataset`` command.

    Network acquisition is strictly opt-in: nothing else in the CLI, the
    test suite, or CI ever triggers a download.
    """
    from .datasets.cache import default_cache_dir
    from .datasets.snap import fetch_dataset

    if args.name is None:
        print("fetch-dataset requires --name <source>", file=sys.stderr)
        return 2
    dest = args.dest if args.dest is not None else default_cache_dir()
    path = fetch_dataset(
        args.name,
        dest,
        sha256=args.sha256,
        url=args.url,
        keep_largest_component=not args.keep_all_components,
    )
    print(f"ingested {args.name} -> {path}")
    return 0


def _serve(args) -> int:
    """The ``repro-mixing serve`` command: a long-lived HTTP query service.

    Binds, prints the served address (machine-parseable first line, for
    smoke scripts binding port 0), and blocks until SIGINT/SIGTERM.
    Warm shared-memory segments are unlinked on every exit path: normal
    shutdown closes the engine, and
    :func:`~repro.core.parallel.install_signal_cleanup` covers fatal
    signals landing mid-request.
    """
    from .core.parallel import install_signal_cleanup
    from .service import OperatorRegistry, QueryEngine, ResultCache, ServiceServer

    install_signal_cleanup()
    telemetry = args.metrics_out is not None or args.trace_out is not None
    if telemetry:
        from .obs import OBS

        OBS.enable()
    policy = ExecutionPolicy(
        workers=args.workers,
        block_size=args.block_size,
        telemetry=telemetry,
        memory_budget=args.memory_budget,
        **({"backend": args.backend} if args.backend is not None else {}),
    )
    engine = QueryEngine(
        OperatorRegistry(capacity=args.registry_capacity),
        ResultCache(max_entries=args.cache_entries),
        policy=policy,
        coalesce_window=args.coalesce_window,
    )
    server = ServiceServer(engine, host=args.host, port=args.port, own_engine=True)
    host, port = server.address
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro-mixing: shutting down", file=sys.stderr)
    finally:
        server.stop()
        if args.metrics_out is not None:
            from .obs import OBS

            OBS.write_metrics(args.metrics_out)
        if args.trace_out is not None:
            from .obs import OBS

            OBS.write_trace(args.trace_out)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Intentional library errors (:class:`~repro.errors.ReproError`) are
    mapped to the distinct exit codes documented in the module docstring
    with a clean one-line message; only unexpected exceptions (bugs)
    escape with a traceback.
    """
    try:
        return _main(argv)
    except ReproError as exc:
        code = next(c for cls, c in EXIT_CODES if isinstance(exc, cls))
        kind = type(exc).__name__
        print(f"repro-mixing: {kind}: {exc}", file=sys.stderr)
        return code


def _main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        print("\n".join(EXPERIMENTS))
        return 0
    if args.experiment == "datasets":
        from .datasets import REGISTRY, load_cached

        for spec in REGISTRY.values():
            if spec.scale == "huge":
                # Paper-scale tier: listed from the spec alone — realising
                # it here would silently generate a multi-hundred-MB
                # container on a listing command.
                print(
                    f"{spec.name:15s} {spec.category:12s} scale={spec.scale:5s} "
                    f"n={spec.nodes:7,} m={spec.edges:8,} "
                    f"(target sizes; generate via --datasets {spec.name})"
                )
                continue
            graph = load_cached(spec.name)
            print(
                f"{spec.name:15s} {spec.category:12s} scale={spec.scale:5s} "
                f"n={graph.num_nodes:7,} m={graph.num_edges:8,} "
                f"(paper: n={spec.paper_nodes:,}, m={spec.paper_edges:,})"
            )
        return 0
    if args.experiment == "fetch-dataset":
        return _fetch_dataset(args)
    if args.experiment == "serve":
        return _serve(args)
    telemetry = args.metrics_out is not None or args.trace_out is not None
    policy = ExecutionPolicy(
        workers=args.workers,
        block_size=args.block_size,
        shard_timeout=args.shard_timeout,
        checkpoint_dir=args.checkpoint_dir,
        resume=not args.no_resume,
        telemetry=telemetry,
        memory_budget=args.memory_budget,
        **({"max_retries": args.max_retries} if args.max_retries is not None else {}),
        **({"backend": args.backend} if args.backend is not None else {}),
    )
    config = ExperimentConfig(
        mode="full" if args.full else "fast",
        telemetry=telemetry,
        policy=policy,
        **({"seed": args.seed} if args.seed is not None else {}),
        **(
            {"datasets": tuple(args.datasets.split(","))}
            if args.datasets is not None
            else {}
        ),
    )
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    out_dir = None
    if args.output is not None:
        from pathlib import Path

        out_dir = Path(args.output)
        out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.time()
        output, _manifest, manifest_path = run_with_manifest(
            name, EXPERIMENTS[name], config, out_dir=out_dir
        )
        elapsed = time.time() - start
        print(output)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
        if out_dir is not None:
            atomic_write_text(out_dir / f"{name}.txt", output + "\n")
            print(f"[manifest: {manifest_path}]\n")
    if args.metrics_out is not None or args.trace_out is not None:
        from .obs import OBS

        if args.metrics_out is not None:
            OBS.write_metrics(args.metrics_out)
            print(f"[metrics: {args.metrics_out}]")
        if args.trace_out is not None:
            OBS.write_trace(args.trace_out)
            print(f"[trace: {args.trace_out}]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via entry point
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit quietly the
        # way well-behaved Unix tools do.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        raise SystemExit(0)
