"""Community structure: sweep cuts, label propagation, partition quality."""

from .sweep import SweepCut, second_eigenvector, spectral_sweep_cut
from .label_propagation import label_propagation
from .louvain import louvain
from .quality import community_conductances, modularity, worst_community_conductance

__all__ = [
    "SweepCut",
    "second_eigenvector",
    "spectral_sweep_cut",
    "label_propagation",
    "louvain",
    "community_conductances",
    "modularity",
    "worst_community_conductance",
]
