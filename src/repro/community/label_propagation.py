"""Label propagation community detection (Raghavan et al. 2007).

Viswanath et al. (Section 2) argue that "community detection algorithms
can be used to replace the random walk based Sybil defenses"; label
propagation is the cheapest such detector and serves as that baseline in
the ablation benches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph import Graph
from .._util import as_rng

__all__ = ["label_propagation"]


def label_propagation(
    graph: Graph,
    *,
    max_rounds: int = 100,
    seed=None,
) -> np.ndarray:
    """Detect communities; returns compacted labels (0-based).

    Asynchronous updates in random node order; each node adopts the most
    frequent label among its neighbours (ties broken uniformly).  Stops
    when a full round changes nothing or ``max_rounds`` is hit.
    """
    rng = as_rng(seed)
    n = graph.num_nodes
    labels = np.arange(n, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    for _ in range(max_rounds):
        changed = False
        for v in rng.permutation(n):
            nbrs = indices[indptr[v]:indptr[v + 1]]
            if nbrs.size == 0:
                continue
            neighbour_labels = labels[nbrs]
            values, counts = np.unique(neighbour_labels, return_counts=True)
            best = values[counts == counts.max()]
            choice = int(best[rng.integers(best.size)]) if best.size > 1 else int(best[0])
            if choice != labels[v]:
                labels[v] = choice
                changed = True
        if not changed:
            break
    # Compact label ids.
    _unique, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
