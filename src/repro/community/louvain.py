"""Louvain modularity optimisation (Blondel et al. 2008).

Viswanath et al. (cited in Section 2) argue community detection can
substitute for random-walk Sybil defenses; label propagation is the
cheap baseline, Louvain the quality one.  Two phases repeat until
modularity stops improving:

1. **local moving** — greedily reassign nodes to the neighbouring
   community with the largest modularity gain;
2. **aggregation** — contract communities into super-nodes (with
   weighted edges) and recurse.

The implementation keeps explicit edge weights internally (needed for
the aggregated levels) but the public entry point takes an unweighted
:class:`~repro.graph.Graph`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import numpy as np

from ..graph import Graph
from .._util import as_rng

__all__ = ["louvain"]


def _local_moving(
    adjacency: List[Dict[int, float]],
    strength: np.ndarray,
    total_weight: float,
    rng: np.random.Generator,
    max_rounds: int = 32,
) -> np.ndarray:
    """Phase 1 on a weighted graph given as per-node {neighbour: weight}."""
    n = len(adjacency)
    labels = np.arange(n, dtype=np.int64)
    community_strength = strength.astype(np.float64).copy()
    for _ in range(max_rounds):
        moved = False
        for v in rng.permutation(n):
            current = labels[v]
            # Weights from v to each neighbouring community.
            to_comm: Dict[int, float] = defaultdict(float)
            self_loop = 0.0
            for u, w in adjacency[v].items():
                if u == v:
                    self_loop += w
                    continue
                to_comm[labels[u]] += w
            community_strength[current] -= strength[v]
            best_comm, best_gain = current, 0.0
            base = to_comm.get(current, 0.0) - strength[v] * community_strength[current] / (
                2.0 * total_weight
            )
            for comm, weight in to_comm.items():
                if comm == current:
                    continue
                gain = weight - strength[v] * community_strength[comm] / (2.0 * total_weight)
                if gain - base > best_gain + 1e-12:
                    best_gain = gain - base
                    best_comm = comm
            community_strength[best_comm] += strength[v]
            if best_comm != current:
                labels[v] = best_comm
                moved = True
        if not moved:
            break
    # Compact labels.
    _unique, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def _aggregate(
    adjacency: List[Dict[int, float]],
    labels: np.ndarray,
) -> List[Dict[int, float]]:
    """Phase 2: contract communities, summing parallel edge weights."""
    num_comms = int(labels.max()) + 1
    out: List[Dict[int, float]] = [defaultdict(float) for _ in range(num_comms)]
    for v, nbrs in enumerate(adjacency):
        cv = int(labels[v])
        for u, w in nbrs.items():
            cu = int(labels[u])
            out[cv][cu] += w
    return [dict(d) for d in out]


def louvain(graph: Graph, *, seed=None, max_levels: int = 16) -> np.ndarray:
    """Community labels (0-based, compacted) by Louvain optimisation.

    Deterministic given ``seed`` (node visit order is the only
    randomness).  Isolated nodes end up in singleton communities.
    """
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    rng = as_rng(seed)
    # Initial weighted adjacency: every edge weight 1 (both directions).
    adjacency: List[Dict[int, float]] = []
    for v in range(n):
        adjacency.append({int(u): 1.0 for u in graph.neighbors(v)})
    total_weight = float(graph.num_edges)
    if total_weight == 0:
        return np.arange(n, dtype=np.int64)

    mapping = np.arange(n, dtype=np.int64)  # node -> current community id
    for _level in range(max_levels):
        strength = np.zeros(len(adjacency))
        for v, nbrs in enumerate(adjacency):
            # The aggregated self entry already stores 2x the internal
            # weight (both arc directions folded in), so the plain sum IS
            # the weighted degree — adding the self entry again would
            # double-count it and over-penalise merges.
            strength[v] = sum(nbrs.values())
        labels = _local_moving(adjacency, strength, total_weight, rng)
        if int(labels.max()) + 1 == len(adjacency):
            break  # no contraction possible: converged
        mapping = labels[mapping]
        adjacency = _aggregate(adjacency, labels)
    _unique, compact = np.unique(mapping, return_inverse=True)
    return compact.astype(np.int64)
