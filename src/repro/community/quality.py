"""Partition quality measures: modularity and per-community conductance."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph import Graph, conductance_of_set

__all__ = ["modularity", "community_conductances", "worst_community_conductance"]


def modularity(graph: Graph, labels: np.ndarray) -> float:
    """Newman modularity Q of a node partition.

    ``Q = (1/2m) * sum_ij (A_ij - d_i d_j / 2m) * [c_i == c_j]``
    computed from per-community edge and degree sums in O(m).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if labels.shape != (graph.num_nodes,):
        raise ValueError("labels must have one entry per node")
    m = graph.num_edges
    if m == 0:
        return 0.0
    edges = graph.edges()
    same = labels[edges[:, 0]] == labels[edges[:, 1]]
    num_comms = int(labels.max()) + 1 if labels.size else 0
    internal = np.zeros(num_comms, dtype=np.float64)
    np.add.at(internal, labels[edges[:, 0]][same], 1.0)
    deg_sum = np.zeros(num_comms, dtype=np.float64)
    np.add.at(deg_sum, labels, graph.degrees.astype(np.float64))
    return float((internal / m - (deg_sum / (2.0 * m)) ** 2).sum())


def community_conductances(graph: Graph, labels: np.ndarray) -> Dict[int, float]:
    """Conductance of every community's cut against the rest."""
    labels = np.asarray(labels, dtype=np.int64)
    out: Dict[int, float] = {}
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        if members.size == graph.num_nodes:
            continue  # the whole graph has no cut
        try:
            out[int(c)] = conductance_of_set(graph, members)
        except ValueError:
            continue  # zero-volume side
    return out


def worst_community_conductance(graph: Graph, labels: np.ndarray) -> float:
    """The smallest community conductance — the partition's bottleneck.

    This is the quantity that lower-bounds the mixing time: a community
    with conductance phi keeps the SLEM above roughly 1 - 2 phi.
    """
    values = community_conductances(graph, labels)
    if not values:
        raise ValueError("partition has no valid community cuts")
    return min(values.values())
