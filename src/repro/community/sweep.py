"""Spectral sweep cut: find a low-conductance cut from the Fiedler-like
eigenvector.

Section 3.2 ties mixing to conductance (``Phi >= 1 - mu``); Cheeger's
inequality makes the other direction algorithmic: sorting nodes by the
second eigenvector of the normalised adjacency and sweeping prefixes
finds a cut with ``Phi <= sqrt(2 (1 - lambda_2))``.  On the slow-mixing
dataset stand-ins this recovers the planted community bottleneck, which
is how the benches *explain* the measured mixing times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import NotConnectedError
from ..graph import Graph, is_connected
from ..core.spectral import normalized_adjacency

__all__ = ["SweepCut", "spectral_sweep_cut", "second_eigenvector"]


def second_eigenvector(graph: Graph) -> np.ndarray:
    """The eigenvector of ``D^{-1/2} A D^{-1/2}`` for lambda_2, mapped back
    to the random-walk eigenvector (divided by sqrt(deg))."""
    from scipy.sparse.linalg import eigsh

    if not is_connected(graph):
        raise NotConnectedError("sweep cut needs a connected graph")
    matrix = normalized_adjacency(graph)
    n = matrix.shape[0]
    if n <= 16:
        dense = matrix.toarray()
        values, vectors = np.linalg.eigh(dense)
        vec = vectors[:, -2]
    else:
        v0 = np.full(n, 1.0 / np.sqrt(n))
        values, vectors = eigsh(matrix, k=2, which="LA", v0=v0)
        order = np.argsort(values)
        vec = vectors[:, order[0]]
    return vec / np.sqrt(graph.degrees.astype(np.float64))


@dataclass(frozen=True)
class SweepCut:
    """A cut found by the spectral sweep.

    ``side`` holds the node ids of the smaller-volume side.
    """

    side: np.ndarray
    conductance: float
    cut_edges: int

    @property
    def size(self) -> int:
        return self.side.size


def spectral_sweep_cut(graph: Graph) -> SweepCut:
    """The best prefix cut of the second-eigenvector ordering.

    Runs the sweep in O(m) after sorting: maintains the prefix volume and
    cut size incrementally while adding nodes in eigenvector order.
    """
    order = np.argsort(second_eigenvector(graph))
    n = graph.num_nodes
    total_vol = 2 * graph.num_edges
    in_prefix = np.zeros(n, dtype=bool)
    vol = 0
    cut = 0
    best = (np.inf, 0)  # (conductance, prefix length)
    degrees = graph.degrees
    indptr, indices = graph.indptr, graph.indices
    for k, v in enumerate(order[:-1]):
        in_prefix[v] = True
        vol += int(degrees[v])
        internal = int(in_prefix[indices[indptr[v]:indptr[v + 1]]].sum())
        # v's edges to the prefix stop being cut edges; the rest start.
        cut += int(degrees[v]) - 2 * internal
        denom = min(vol, total_vol - vol)
        if denom > 0:
            phi = cut / denom
            if phi < best[0]:
                best = (phi, k + 1)
    if not np.isfinite(best[0]):
        raise NotConnectedError("sweep found no valid cut (graph too small?)")
    side = np.sort(order[: best[1]])
    # Recompute the exact cut size for the reported side.
    mask = np.zeros(n, dtype=bool)
    mask[side] = True
    edges = graph.edges()
    cut_edges = int((mask[edges[:, 0]] != mask[edges[:, 1]]).sum()) if edges.size else 0
    return SweepCut(side=side, conductance=float(best[0]), cut_edges=cut_edges)
