"""Core measurement machinery: walks, spectra, distances, mixing times."""

from .distances import (
    hellinger_distance,
    kl_divergence,
    l2_distance,
    separation_distance,
    total_variation_distance,
)
from .stationary import (
    edge_stationary_distribution,
    is_stationary,
    stationary_distribution,
    stationary_residual,
    uniform_distribution,
)
from .walks import (
    TransitionOperator,
    is_bipartite,
    simulate_walk,
    simulate_walk_endpoints,
)
from .spectral import (
    SpectralSummary,
    cheeger_bounds,
    conductance_lower_bound,
    normalized_adjacency,
    slem,
    spectral_gap,
    transition_spectrum_extremes,
)
from .bounds import (
    BoundCurve,
    epsilon_for_walk_length,
    fast_mixing_walk_length,
    lower_bound_curve,
    mixing_time_lower_bound,
    mixing_time_upper_bound,
    upper_bound_curve,
)
from .mixing import (
    MixingTimeEstimate,
    PerSourceMixing,
    estimate_mixing_time,
    measure_mixing,
    mixing_time_from_source,
    sample_sources,
    variation_distance_curve,
)
from .directed import (
    DirectedTransitionOperator,
    directed_second_eigenvalue_modulus,
    directed_variation_curve,
)
from .trust import (
    WeightedTransitionOperator,
    jaccard_arc_weights,
    originator_biased_curve,
    weighted_slem,
)
from .analysis import (
    PAPER_BANDS,
    PercentileBands,
    cdf_at_walk_length,
    empirical_cdf,
    percentile_bands,
)

__all__ = [
    "hellinger_distance",
    "kl_divergence",
    "l2_distance",
    "separation_distance",
    "total_variation_distance",
    "edge_stationary_distribution",
    "is_stationary",
    "stationary_distribution",
    "stationary_residual",
    "uniform_distribution",
    "TransitionOperator",
    "is_bipartite",
    "simulate_walk",
    "simulate_walk_endpoints",
    "SpectralSummary",
    "cheeger_bounds",
    "conductance_lower_bound",
    "normalized_adjacency",
    "slem",
    "spectral_gap",
    "transition_spectrum_extremes",
    "BoundCurve",
    "epsilon_for_walk_length",
    "fast_mixing_walk_length",
    "lower_bound_curve",
    "mixing_time_lower_bound",
    "mixing_time_upper_bound",
    "upper_bound_curve",
    "MixingTimeEstimate",
    "PerSourceMixing",
    "estimate_mixing_time",
    "measure_mixing",
    "mixing_time_from_source",
    "sample_sources",
    "variation_distance_curve",
    "DirectedTransitionOperator",
    "directed_second_eigenvalue_modulus",
    "directed_variation_curve",
    "WeightedTransitionOperator",
    "jaccard_arc_weights",
    "originator_biased_curve",
    "weighted_slem",
    "PAPER_BANDS",
    "PercentileBands",
    "cdf_at_walk_length",
    "empirical_cdf",
    "percentile_bands",
]
