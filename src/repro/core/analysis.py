"""Aggregation of per-source measurements into the paper's figure series.

The figures aggregate per-source variation distances three ways:

* **CDFs** (Figures 3-4): the empirical CDF of distances across sources
  at a fixed walk length.
* **Percentile bands** (Figures 5, 7): "sorting eps at each t and
  averaging values in various intervals as percentiles" — top 10%,
  median 20%, lowest 10% bands, plotted against the SLEM lower bound.
* **Average curves** (Figure 6b): plain means across sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .._util import percentile_slices
from .mixing import PerSourceMixing

__all__ = [
    "empirical_cdf",
    "cdf_at_walk_length",
    "PercentileBands",
    "percentile_bands",
    "PAPER_BANDS",
]

#: The aggregation bands used in Figures 5 and 7: best (smallest eps)
#: 10 percent of sources, the middle 20 percent, and the worst 10
#: percent ("Top 99.9%" in the figure legends refers to the worst tail).
PAPER_BANDS: Tuple[Tuple[str, float, float], ...] = (
    ("best10", 0.0, 10.0),
    ("median20", 40.0, 60.0),
    ("worst10", 90.0, 100.0),
)


def empirical_cdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``values``: returns ``(sorted_values, F)`` with
    ``F[i] = (i + 1) / n``."""
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        raise ValueError("cannot build a CDF from no values")
    return arr, np.arange(1, arr.size + 1, dtype=np.float64) / arr.size


def cdf_at_walk_length(measurement: PerSourceMixing, walk_length: int) -> Tuple[np.ndarray, np.ndarray]:
    """The Figure 3/4 series: CDF over sources of the variation distance
    at one walk length."""
    return empirical_cdf(measurement.epsilon_at(walk_length))


@dataclass(frozen=True)
class PercentileBands:
    """Banded aggregation of a :class:`PerSourceMixing` (Figures 5, 7).

    ``bands[label][j]`` is the mean variation distance within that
    percentile band of sources at ``walk_lengths[j]``.
    """

    walk_lengths: np.ndarray
    bands: Dict[str, np.ndarray]

    def band(self, label: str) -> np.ndarray:
        if label not in self.bands:
            raise KeyError(f"unknown band {label!r}; have {sorted(self.bands)}")
        return self.bands[label]

    def labels(self) -> List[str]:
        return list(self.bands)


def percentile_bands(
    measurement: PerSourceMixing,
    bands: Sequence[Tuple[str, float, float]] = PAPER_BANDS,
) -> PercentileBands:
    """Aggregate per-source distances into percentile bands per walk length.

    At each recorded walk length, source distances are sorted ascending
    and averaged within each ``(label, lo_pct, hi_pct)`` band.
    """
    out: Dict[str, List[float]] = {label: [] for label, _lo, _hi in bands}
    for j in range(measurement.walk_lengths.size):
        sliced = percentile_slices(measurement.distances[:, j], bands)
        for label, value in sliced.items():
            out[label].append(value)
    return PercentileBands(
        walk_lengths=measurement.walk_lengths.copy(),
        bands={label: np.asarray(vals) for label, vals in out.items()},
    )
