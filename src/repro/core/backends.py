"""Pluggable SpMM backends for the blocked ``X @ P`` hot path.

Every measurement in the reproduction — variation curves, hitting
times, block evolution, the service's coalesced sweeps — bottoms out in
the same dense-block-times-CSR product.  This module is the seam that
lets that product be served by interchangeable kernels, selected via
:class:`~repro.core.runtime.ExecutionPolicy`'s ``backend`` field:

``"numpy"`` (default)
    scipy's native ``block @ csr`` — bit-for-bit the kernels every
    pinned golden value was produced with.  Choosing it changes nothing.
``"tiled"``
    A cache-tiled pure-numpy CSC rank-stripe kernel that reproduces the
    scipy accumulation order **exactly** (float64 output is
    ``np.array_equal`` to the numpy backend), with an optional numba JIT
    inner loop when numba is importable (``REPRO_NUMBA=0`` disables the
    JIT without uninstalling anything).
``"float32"``
    Single-precision SpMM: the block and matrix are downcast to float32
    for the multiply and the result upcast to float64.  Cheap on
    bandwidth-bound graphs, *not* exact — its error envelope against the
    float64 oracle is pinned by the differential harness
    (``tests/core/test_backends.py``) using the constants below.

Contract
--------
A backend is an :class:`SpmmBackend`: a name, a ``numeric`` tag
(``"float64"`` backends must be bit-identical to the numpy oracle;
``"float32"`` backends must stay inside the pinned envelope), and a
``factory(csr_matrix) -> step`` where ``step(block)`` maps a float64
``(s, n)`` block to the float64 ``(s, n)`` next block.  Register new
backends with :func:`register_backend`; ``ExecutionPolicy`` validates
names at construction, so an unknown backend fails fast with
:class:`~repro.errors.ConfigurationError` instead of deep inside a
sweep.  Backends are *execution* knobs: float64 backends never enter
checkpoint fingerprints or service cache keys; float32 (any non-exact
numeric) keys separately because its numbers genuinely differ.

Every prepared step is row-independent (each output row depends only on
the matching input row), which is what keeps worker sharding, chunking
and early-exit masking bit-for-bit neutral per backend — the invariant
the differential harness re-pins for every registered name.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import OBS

__all__ = [
    "DEFAULT_BACKEND",
    "FLOAT32_CURVE_ATOL",
    "FLOAT32_TIME_SLACK",
    "SpmmBackend",
    "available_backends",
    "backend_numeric",
    "get_backend",
    "numba_available",
    "register_backend",
    "validate_backend",
]

#: The backend every policy uses unless told otherwise: scipy's own
#: kernels, i.e. exactly the arithmetic all pinned values came from.
DEFAULT_BACKEND = "numpy"

#: Environment kill-switch for the optional numba JIT inside the tiled
#: backend: ``REPRO_NUMBA=0`` forces the pure-numpy stripe kernel even
#: when numba is importable (CI runs the differential harness both ways).
_NUMBA_ENV = "REPRO_NUMBA"

#: Columns per tile in the pure-numpy stripe kernel: small enough that a
#: tile's output columns stay cache-resident across its stripes, large
#: enough to amortise the per-stripe fancy-indexing overhead.
_TILE_COLS = 64

# ----------------------------------------------------------------------
# Pinned float32 error envelope (validated by tests/core/test_backends.py)
# ----------------------------------------------------------------------
#: Absolute tolerance on any recorded variation distance produced by the
#: float32 backend, versus the float64 oracle.  Derivation: one float32
#: SpMM step commits a relative rounding of at most a few ulps
#: (~1.2e-7) per output element; the TVD sums n absolute differences of
#: probabilities that themselves sum to 1, so the per-step distance
#: perturbation is O(steps * eps32) with a modest constant.  The golden
#: suite (walks up to 40 on graphs up to 80 nodes) lands below 1e-5;
#: 1e-4 gives an order of magnitude of headroom without ever masking a
#: genuinely wrong kernel (a transposed or mis-weighted SpMM is off by
#: O(1e-1)).
FLOAT32_CURVE_ATOL = 1e-4

#: Hitting times are argmin-threshold crossings: when the float64
#: distance at the hitting step sits within float32 noise of epsilon,
#: the float32 walk may cross one step earlier or later.  The harness
#: therefore allows per-source hitting times to differ by at most this
#: many steps (and asserts the recorded distances stay within
#: :data:`FLOAT32_CURVE_ATOL`).
FLOAT32_TIME_SLACK = 1


def numba_available() -> bool:
    """True when the tiled backend may JIT its inner loop with numba.

    Requires numba to be importable *and* ``REPRO_NUMBA`` unset/non-zero
    — the env switch lets CI exercise the pure-numpy stripe kernel on
    machines where numba happens to be installed.
    """
    if os.environ.get(_NUMBA_ENV, "") == "0":
        return False
    try:
        import numba  # noqa: F401  (probe import)
    except Exception:
        return False
    return True


# ----------------------------------------------------------------------
# Kernel factories
# ----------------------------------------------------------------------
def _prepare_numpy(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """The oracle: scipy's own dense-block x CSR product."""

    def step(block: np.ndarray) -> np.ndarray:
        return np.asarray(block @ matrix)

    return step


def _csc_arrays(matrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The matrix in CSC form — the layout scipy's kernel walks.

    ``block @ csr`` routes through scipy's ``csc_matvecs`` on the
    transposed view: output column ``j`` accumulates
    ``X[:, rows[k]] * vals[k]`` over ``k`` in column ``j``'s slice, in
    increasing ``k`` (= increasing source-row) order.  Reproducing that
    accumulation order is what makes the tiled backend bit-for-bit.
    """
    csc = matrix.tocsc()
    csc.sort_indices()
    return (
        np.ascontiguousarray(csc.indptr),
        np.ascontiguousarray(csc.indices),
        np.ascontiguousarray(csc.data, dtype=np.float64),
    )


_NUMBA_KERNEL_CACHE: Dict[str, Any] = {}


def _numba_csc_kernel():
    """Compile (once) the JIT inner loop replicating ``csc_matvecs``."""
    kernel = _NUMBA_KERNEL_CACHE.get("csc")
    if kernel is None:
        import numba

        @numba.njit(cache=False)
        def csc_spmm(indptr, rows, vals, x, out):  # pragma: no cover - jit
            ncols = indptr.shape[0] - 1
            nrows = x.shape[0]
            for j in range(ncols):
                for k in range(indptr[j], indptr[j + 1]):
                    r = rows[k]
                    v = vals[k]
                    for i in range(nrows):
                        out[i, j] += x[i, r] * v

        kernel = csc_spmm
        _NUMBA_KERNEL_CACHE["csc"] = kernel
    return kernel


def _prepare_tiled(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """Cache-tiled CSC rank-stripe SpMM, bit-identical to the oracle.

    The pure-numpy path vectorises over *stripes*: stripe ``t`` touches,
    for every column with at least ``t + 1`` entries, that column's
    ``t``-th nonzero.  Within one column the stripes run in increasing
    ``k`` order, so each output element accumulates its terms in exactly
    the order scipy's ``csc_matvecs`` does — same floating-point
    sequence, same bits.  Columns are processed in tiles of
    :data:`_TILE_COLS` so a tile's output columns stay hot across its
    stripes.  When :func:`numba_available`, the per-element loop is
    JIT-compiled instead (identical accumulation order).
    """
    indptr, rows, vals = _csc_arrays(matrix)
    n_cols = indptr.shape[0] - 1
    if numba_available():
        kernel = _numba_csc_kernel()

        def step(block: np.ndarray) -> np.ndarray:
            x = np.ascontiguousarray(block, dtype=np.float64)
            out = np.zeros((x.shape[0], n_cols), dtype=np.float64)
            kernel(indptr, rows, vals, x, out)
            return out

        return step

    deg = np.diff(indptr)
    tiles: List[Tuple[int, int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]] = []
    for lo in range(0, n_cols, _TILE_COLS):
        hi = min(lo + _TILE_COLS, n_cols)
        tile_deg = deg[lo:hi]
        tile_max = int(tile_deg.max()) if tile_deg.size else 0
        stripes = []
        for t in range(tile_max):
            cols = lo + np.flatnonzero(tile_deg > t)
            pos = indptr[cols] + t
            stripes.append((cols, rows[pos], vals[pos]))
        tiles.append((lo, hi, stripes))

    def step(block: np.ndarray) -> np.ndarray:
        x = np.asarray(block, dtype=np.float64)
        out = np.zeros((x.shape[0], n_cols), dtype=np.float64)
        for _lo, _hi, stripes in tiles:
            for cols, srcs, weights in stripes:
                out[:, cols] += x[:, srcs] * weights
        return out

    return step


def _prepare_float32(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """Single-precision SpMM: downcast, multiply, upcast.

    The block is re-downcast every step (rather than kept float32
    between steps) so one step's arithmetic is self-contained: the error
    versus the oracle grows additively with walk length, which is what
    the pinned :data:`FLOAT32_CURVE_ATOL` envelope budgets for.
    """
    from scipy.sparse import csr_matrix

    m32 = csr_matrix(
        (
            matrix.data.astype(np.float32),
            matrix.indices.copy(),
            matrix.indptr.copy(),
        ),
        shape=matrix.shape,
    )

    def step(block: np.ndarray) -> np.ndarray:
        x = np.asarray(block, dtype=np.float32)
        return np.asarray(x @ m32, dtype=np.float64)

    return step


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmBackend:
    """One registered SpMM kernel family.

    Attributes
    ----------
    name:
        Registry key; the value of ``ExecutionPolicy.backend``.
    numeric:
        ``"float64"`` (must be bit-identical to the numpy oracle) or
        ``"float32"`` (must satisfy the pinned error envelope).  The
        service layer keys result caches on this tag: float64 backends
        share cache entries, non-exact numerics key separately.
    factory:
        ``factory(csr_matrix) -> step`` preparing a per-matrix step
        closure; preparation cost is paid once per operator and memoised
        by the operator layer.
    description:
        One line for docs and ``repro-mixing`` help surfaces.
    """

    name: str
    numeric: str
    factory: Callable[[Any], Callable[[np.ndarray], np.ndarray]] = field(repr=False)
    description: str = ""

    def prepare(self, matrix) -> Callable[[np.ndarray], np.ndarray]:
        """Build the telemetry-wrapped step closure for ``matrix``."""
        inner = self.factory(matrix)
        name = self.name
        if OBS.enabled:
            OBS.add("core.backend.prepares")

        def step(block: np.ndarray) -> np.ndarray:
            if OBS.enabled:
                OBS.add(f"core.backend.steps.{name}")
                OBS.add("core.backend.rows", int(block.shape[0]))
            return inner(block)

        return step


_REGISTRY: Dict[str, SpmmBackend] = {}


def register_backend(backend: SpmmBackend, *, replace: bool = False) -> SpmmBackend:
    """Add a backend to the registry (the extension point for new kernels).

    Names are unique; re-registering an existing name without
    ``replace=True`` raises :class:`~repro.errors.ConfigurationError`
    (silent shadowing would invalidate the differential harness's
    claim to have covered every backend).  ``numeric`` must be
    ``"float64"`` or ``"float32"`` — the two contract classes the
    harness knows how to gate.
    """
    if not isinstance(backend, SpmmBackend):
        raise ConfigurationError(
            f"backend must be an SpmmBackend, got {type(backend).__name__}"
        )
    if backend.numeric not in ("float64", "float32"):
        raise ConfigurationError(
            f"backend numeric must be 'float64' or 'float32', got {backend.numeric!r}"
        )
    if not replace and backend.name in _REGISTRY:
        raise ConfigurationError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


register_backend(
    SpmmBackend(
        name="numpy",
        numeric="float64",
        factory=_prepare_numpy,
        description="scipy native block x CSR (the oracle; default)",
    )
)
register_backend(
    SpmmBackend(
        name="tiled",
        numeric="float64",
        factory=_prepare_tiled,
        description="cache-tiled CSC rank-stripe kernel, bit-identical to "
        "the oracle; numba-JIT inner loop when importable",
    )
)
register_backend(
    SpmmBackend(
        name="float32",
        numeric="float32",
        factory=_prepare_float32,
        description="single-precision SpMM inside the pinned error envelope",
    )
)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> SpmmBackend:
    """Look a backend up by name; unknown names raise ``ConfigurationError``."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown SpMM backend {name!r}; "
            f"registered backends: {', '.join(_REGISTRY)}"
        )
    return backend


def validate_backend(name) -> str:
    """Normalise/validate a policy's ``backend`` field at construction."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"backend must be a string backend name, got {name!r} "
            f"({type(name).__name__})"
        )
    get_backend(name)
    return name


def backend_numeric(name: str) -> str:
    """``"float64"`` or ``"float32"`` for a registered backend name.

    The service layer uses this to decide cache-key identity: float64
    backends are execution-only knobs (shared cache entries), anything
    else keys separately.
    """
    return get_backend(name).numeric
