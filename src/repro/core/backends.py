"""Pluggable SpMM backends for the blocked ``X @ P`` hot path.

Every measurement in the reproduction — variation curves, hitting
times, block evolution, the service's coalesced sweeps — bottoms out in
the same dense-block-times-CSR product.  This module is the seam that
lets that product be served by interchangeable kernels, selected via
:class:`~repro.core.runtime.ExecutionPolicy`'s ``backend`` field:

``"numpy"`` (default)
    scipy's native ``block @ csr`` — bit-for-bit the kernels every
    pinned golden value was produced with.  Choosing it changes nothing.
``"tiled"``
    A cache-tiled pure-numpy CSC rank-stripe kernel that reproduces the
    scipy accumulation order **exactly** (float64 output is
    ``np.array_equal`` to the numpy backend), with an optional numba JIT
    inner loop when numba is importable (``REPRO_NUMBA=0`` disables the
    JIT without uninstalling anything).
``"float32"``
    Single-precision SpMM: the block and matrix are downcast to float32
    for the multiply and the result upcast to float64.  Cheap on
    bandwidth-bound graphs, *not* exact — its error envelope against the
    float64 oracle is pinned by the differential harness
    (``tests/core/test_backends.py``) using the constants below.
``"streaming"``
    The out-of-core kernel: walks the matrix in CSC *column stripes*
    sized to ``ExecutionPolicy(memory_budget=…)``, double-buffering the
    next stripe's load on a helper thread while the current stripe
    multiplies.  Each output column is accumulated wholly inside one
    stripe in the same rank order as the tiled kernel, so the result is
    bit-for-bit identical to the numpy oracle while only ever holding
    two stripes of matrix data in memory.  Combined with
    :class:`repro.graph.storage.MemmapGraph` (whose transition matrix
    serves stripes straight off ``np.memmap``) it runs sweeps over
    graphs whose CSR exceeds RAM.

Contract
--------
A backend is an :class:`SpmmBackend`: a name, a ``numeric`` tag
(``"float64"`` backends must be bit-identical to the numpy oracle;
``"float32"`` backends must stay inside the pinned envelope), and a
``factory(csr_matrix) -> step`` where ``step(block)`` maps a float64
``(s, n)`` block to the float64 ``(s, n)`` next block.  Register new
backends with :func:`register_backend`; ``ExecutionPolicy`` validates
names at construction, so an unknown backend fails fast with
:class:`~repro.errors.ConfigurationError` instead of deep inside a
sweep.  Backends are *execution* knobs: float64 backends never enter
checkpoint fingerprints or service cache keys; float32 (any non-exact
numeric) keys separately because its numbers genuinely differ.

Every prepared step is row-independent (each output row depends only on
the matching input row), which is what keeps worker sharding, chunking
and early-exit masking bit-for-bit neutral per backend — the invariant
the differential harness re-pins for every registered name.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..obs import OBS

__all__ = [
    "DEFAULT_BACKEND",
    "FLOAT32_CURVE_ATOL",
    "FLOAT32_TIME_SLACK",
    "SpmmBackend",
    "available_backends",
    "backend_numeric",
    "get_backend",
    "numba_available",
    "register_backend",
    "stripe_bounds",
    "validate_backend",
]

#: The backend every policy uses unless told otherwise: scipy's own
#: kernels, i.e. exactly the arithmetic all pinned values came from.
DEFAULT_BACKEND = "numpy"

#: Environment kill-switch for the optional numba JIT inside the tiled
#: backend: ``REPRO_NUMBA=0`` forces the pure-numpy stripe kernel even
#: when numba is importable (CI runs the differential harness both ways).
_NUMBA_ENV = "REPRO_NUMBA"

#: Columns per tile in the pure-numpy stripe kernel: small enough that a
#: tile's output columns stay cache-resident across its stripes, large
#: enough to amortise the per-stripe fancy-indexing overhead.
_TILE_COLS = 64

#: Stripe-buffer budget the streaming backend assumes when prepared
#: without an explicit ``memory_budget`` (the differential harness and
#: in-memory callers): big enough that small graphs run in one stripe.
_STREAM_DEFAULT_BYTES = 8 * 1024 * 1024

#: Bytes of stripe payload per nonzero: int64 row + float64 value, times
#: two because the double buffer holds the current and the prefetched
#: stripe at once.
_STREAM_BYTES_PER_NNZ = 32

# ----------------------------------------------------------------------
# Pinned float32 error envelope (validated by tests/core/test_backends.py)
# ----------------------------------------------------------------------
#: Absolute tolerance on any recorded variation distance produced by the
#: float32 backend, versus the float64 oracle.  Derivation: one float32
#: SpMM step commits a relative rounding of at most a few ulps
#: (~1.2e-7) per output element; the TVD sums n absolute differences of
#: probabilities that themselves sum to 1, so the per-step distance
#: perturbation is O(steps * eps32) with a modest constant.  The golden
#: suite (walks up to 40 on graphs up to 80 nodes) lands below 1e-5;
#: 1e-4 gives an order of magnitude of headroom without ever masking a
#: genuinely wrong kernel (a transposed or mis-weighted SpMM is off by
#: O(1e-1)).
FLOAT32_CURVE_ATOL = 1e-4

#: Hitting times are argmin-threshold crossings: when the float64
#: distance at the hitting step sits within float32 noise of epsilon,
#: the float32 walk may cross one step earlier or later.  The harness
#: therefore allows per-source hitting times to differ by at most this
#: many steps (and asserts the recorded distances stay within
#: :data:`FLOAT32_CURVE_ATOL`).
FLOAT32_TIME_SLACK = 1


def numba_available() -> bool:
    """True when the tiled backend may JIT its inner loop with numba.

    Requires numba to be importable *and* ``REPRO_NUMBA`` unset/non-zero
    — the env switch lets CI exercise the pure-numpy stripe kernel on
    machines where numba happens to be installed.
    """
    if os.environ.get(_NUMBA_ENV, "") == "0":
        return False
    try:
        import numba  # noqa: F401  (probe import)
    except Exception:
        return False
    return True


# ----------------------------------------------------------------------
# Kernel factories
# ----------------------------------------------------------------------
def _prepare_numpy(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """The oracle: scipy's own dense-block x CSR product."""

    def step(block: np.ndarray) -> np.ndarray:
        return np.asarray(block @ matrix)

    return step


def _csc_arrays(matrix) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The matrix in CSC form — the layout scipy's kernel walks.

    ``block @ csr`` routes through scipy's ``csc_matvecs`` on the
    transposed view: output column ``j`` accumulates
    ``X[:, rows[k]] * vals[k]`` over ``k`` in column ``j``'s slice, in
    increasing ``k`` (= increasing source-row) order.  Reproducing that
    accumulation order is what makes the tiled backend bit-for-bit.
    """
    csc = matrix.tocsc()
    csc.sort_indices()
    return (
        np.ascontiguousarray(csc.indptr),
        np.ascontiguousarray(csc.indices),
        np.ascontiguousarray(csc.data, dtype=np.float64),
    )


_NUMBA_KERNEL_CACHE: Dict[str, Any] = {}


def _numba_csc_kernel():
    """Compile (once) the JIT inner loop replicating ``csc_matvecs``."""
    kernel = _NUMBA_KERNEL_CACHE.get("csc")
    if kernel is None:
        import numba

        @numba.njit(cache=False)
        def csc_spmm(indptr, rows, vals, x, out):  # pragma: no cover - jit
            ncols = indptr.shape[0] - 1
            nrows = x.shape[0]
            for j in range(ncols):
                for k in range(indptr[j], indptr[j + 1]):
                    r = rows[k]
                    v = vals[k]
                    for i in range(nrows):
                        out[i, j] += x[i, r] * v

        kernel = csc_spmm
        _NUMBA_KERNEL_CACHE["csc"] = kernel
    return kernel


def _prepare_tiled(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """Cache-tiled CSC rank-stripe SpMM, bit-identical to the oracle.

    The pure-numpy path vectorises over *stripes*: stripe ``t`` touches,
    for every column with at least ``t + 1`` entries, that column's
    ``t``-th nonzero.  Within one column the stripes run in increasing
    ``k`` order, so each output element accumulates its terms in exactly
    the order scipy's ``csc_matvecs`` does — same floating-point
    sequence, same bits.  Columns are processed in tiles of
    :data:`_TILE_COLS` so a tile's output columns stay hot across its
    stripes.  When :func:`numba_available`, the per-element loop is
    JIT-compiled instead (identical accumulation order).
    """
    indptr, rows, vals = _csc_arrays(matrix)
    n_cols = indptr.shape[0] - 1
    if numba_available():
        kernel = _numba_csc_kernel()

        def step(block: np.ndarray) -> np.ndarray:
            x = np.ascontiguousarray(block, dtype=np.float64)
            out = np.zeros((x.shape[0], n_cols), dtype=np.float64)
            kernel(indptr, rows, vals, x, out)
            return out

        return step

    deg = np.diff(indptr)
    tiles: List[Tuple[int, int, List[Tuple[np.ndarray, np.ndarray, np.ndarray]]]] = []
    for lo in range(0, n_cols, _TILE_COLS):
        hi = min(lo + _TILE_COLS, n_cols)
        tile_deg = deg[lo:hi]
        tile_max = int(tile_deg.max()) if tile_deg.size else 0
        stripes = []
        for t in range(tile_max):
            cols = lo + np.flatnonzero(tile_deg > t)
            pos = indptr[cols] + t
            stripes.append((cols, rows[pos], vals[pos]))
        tiles.append((lo, hi, stripes))

    def step(block: np.ndarray) -> np.ndarray:
        x = np.asarray(block, dtype=np.float64)
        out = np.zeros((x.shape[0], n_cols), dtype=np.float64)
        for _lo, _hi, stripes in tiles:
            for cols, srcs, weights in stripes:
                out[:, cols] += x[:, srcs] * weights
        return out

    return step


def _prepare_float32(matrix) -> Callable[[np.ndarray], np.ndarray]:
    """Single-precision SpMM: downcast, multiply, upcast.

    The block is re-downcast every step (rather than kept float32
    between steps) so one step's arithmetic is self-contained: the error
    versus the oracle grows additively with walk length, which is what
    the pinned :data:`FLOAT32_CURVE_ATOL` envelope budgets for.
    """
    from scipy.sparse import csr_matrix

    m32 = csr_matrix(
        (
            matrix.data.astype(np.float32),
            matrix.indices.copy(),
            matrix.indptr.copy(),
        ),
        shape=matrix.shape,
    )

    def step(block: np.ndarray) -> np.ndarray:
        x = np.asarray(block, dtype=np.float32)
        return np.asarray(x @ m32, dtype=np.float64)

    return step


# ----------------------------------------------------------------------
# Streaming (out-of-core) kernel
# ----------------------------------------------------------------------
def stripe_bounds(csc_indptr: np.ndarray, budget_bytes: int) -> List[int]:
    """Column-stripe boundaries whose nonzeros fit the stripe budget.

    Returns ``[c_0=0, c_1, ..., c_k=n]``; stripe ``i`` covers columns
    ``[c_i, c_{i+1})`` and holds at most ``budget_bytes /
    _STREAM_BYTES_PER_NNZ`` nonzeros — except single columns denser than
    the budget, which become singleton stripes (a column cannot be
    split without changing the accumulation order).
    """
    n = int(csc_indptr.shape[0]) - 1
    target = max(int(budget_bytes) // _STREAM_BYTES_PER_NNZ, 1)
    bounds = [0]
    while bounds[-1] < n:
        lo = bounds[-1]
        hi = int(np.searchsorted(csc_indptr, int(csc_indptr[lo]) + target, side="right")) - 1
        bounds.append(min(max(hi, lo + 1), n))
    return bounds


def _apply_csc_stripe(
    x: np.ndarray,
    out: np.ndarray,
    col_offset: int,
    local_indptr: np.ndarray,
    rows: np.ndarray,
    vals: np.ndarray,
    xT: Optional[np.ndarray] = None,
) -> None:
    """Accumulate one CSC column stripe into ``out`` in oracle order.

    Each output column is an in-order left fold over its nonzeros —
    increasing CSC position, exactly scipy's ``csc_matvecs``
    accumulation sequence.  Column stripes partition *output columns*,
    so striping cannot reassociate any sum: the result is independent of
    the stripe plan.

    The rank-stripe scheme this replaces looped ``max(column degree)``
    times per tile — O(max_deg) fancy-indexing passes, pathological on
    power-law graphs whose hub columns are thousands deep.  Instead the
    stripe's transpose *is* a valid CSR matrix over the same arrays, and
    scipy's ``csr_matvecs`` kernel folds each output row strictly in
    increasing nonzero position — precisely the per-column order the
    oracle commits to — at C speed.  (``np.add.reduceat`` was tried and
    rejected here: numpy's inner reduce loop is pairwise for runs longer
    than 8 elements, which flips low-order bits on hub columns.)  The
    differential harness in tests/core/test_backends.py and
    tests/core/test_outofcore.py pins bit-identity against the oracle.

    ``xT`` lets the streaming step pass one C-contiguous transpose of
    ``x`` for the whole stripe walk; without it scipy would re-copy the
    dense block for every stripe.
    """
    width = int(local_indptr.shape[0]) - 1
    if numba_available():
        _numba_csc_kernel()(local_indptr, rows, vals, x, out[:, col_offset:col_offset + width])
        return
    if not vals.size:
        return
    from scipy.sparse import csr_matrix

    if xT is None:
        xT = np.ascontiguousarray(x.T)
    stripe_t = csr_matrix(
        (vals, rows, local_indptr), shape=(width, xT.shape[0]), copy=False
    )
    out[:, col_offset:col_offset + width] += (stripe_t @ xT).T


def _prepare_streaming(
    matrix, *, memory_budget: Optional[int] = None
) -> Callable[[np.ndarray], np.ndarray]:
    """Budgeted column-stripe SpMM with double-buffered stripe loads.

    Works on two matrix shapes:

    * objects exposing the out-of-core stripe protocol
      (``csc_indptr`` + ``csc_stripe(lo, hi)`` — see
      :class:`repro.core.outofcore.StripedTransitionMatrix`), whose
      stripes are derived lazily from memory-mapped CSR arrays;
    * any scipy sparse matrix, whose CSC arrays are computed once and
      sliced per stripe (no memory win — in-memory matrices already fit
      — but the identical code path keeps the differential harness
      honest).

    Each :func:`step` walks the stripe plan with a helper thread loading
    stripe ``i + 1`` while stripe ``i`` multiplies, so disk latency
    overlaps compute; the output is bit-for-bit the numpy oracle's.
    """
    budget = int(memory_budget) if memory_budget else _STREAM_DEFAULT_BYTES
    if hasattr(matrix, "csc_stripe"):
        csc_indptr = np.asarray(matrix.csc_indptr, dtype=np.int64)
        loader = matrix.csc_stripe
    else:
        csc_indptr, all_rows, all_vals = _csc_arrays(matrix)

        def loader(lo: int, hi: int):
            s0, s1 = int(csc_indptr[lo]), int(csc_indptr[hi])
            return csc_indptr[lo:hi + 1] - s0, all_rows[s0:s1], all_vals[s0:s1]

    n_cols = int(csc_indptr.shape[0]) - 1
    bounds = stripe_bounds(csc_indptr, budget)
    n_stripes = len(bounds) - 1

    def load(i: int):
        local_indptr, rows, vals = loader(bounds[i], bounds[i + 1])
        if OBS.enabled:
            OBS.add("core.backend.streaming.stripes")
            OBS.add(
                "core.backend.streaming.bytes_loaded",
                int(local_indptr.nbytes + rows.nbytes + vals.nbytes),
            )
        return bounds[i], local_indptr, rows, vals

    def step(block: np.ndarray) -> np.ndarray:
        x = np.asarray(block, dtype=np.float64)
        out = np.zeros((x.shape[0], n_cols), dtype=np.float64)
        if n_stripes <= 1:
            if n_stripes:
                col0, local_indptr, rows, vals = load(0)
                _apply_csc_stripe(x, out, col0, local_indptr, rows, vals)
            return out
        xT = None if numba_available() else np.ascontiguousarray(x.T)
        # Double buffer: a helper thread keeps up to two stripes staged
        # while the main thread multiplies.  The thread lives for one
        # step call only, so nothing leaks if the operator is dropped.
        staged: "queue.Queue" = queue.Queue(maxsize=2)
        cancel = threading.Event()

        def produce():
            for i in range(n_stripes):
                try:
                    item = ("ok", load(i))
                except BaseException as exc:  # surfaced by the consumer
                    item = ("err", exc)
                while not cancel.is_set():
                    try:
                        staged.put(item, timeout=0.1)
                        break
                    except queue.Full:
                        continue
                if cancel.is_set() or item[0] == "err":
                    return

        worker = threading.Thread(target=produce, daemon=True)
        worker.start()
        try:
            for _ in range(n_stripes):
                t0 = time.perf_counter()
                tag, payload = staged.get()
                if OBS.enabled:
                    OBS.observe(
                        "core.backend.streaming.swap_wait_seconds",
                        time.perf_counter() - t0,
                    )
                if tag == "err":
                    raise payload
                col0, local_indptr, rows, vals = payload
                _apply_csc_stripe(x, out, col0, local_indptr, rows, vals, xT=xT)
        finally:
            cancel.set()
        return out

    return step


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SpmmBackend:
    """One registered SpMM kernel family.

    Attributes
    ----------
    name:
        Registry key; the value of ``ExecutionPolicy.backend``.
    numeric:
        ``"float64"`` (must be bit-identical to the numpy oracle) or
        ``"float32"`` (must satisfy the pinned error envelope).  The
        service layer keys result caches on this tag: float64 backends
        share cache entries, non-exact numerics key separately.
    factory:
        ``factory(csr_matrix) -> step`` preparing a per-matrix step
        closure; preparation cost is paid once per operator and memoised
        by the operator layer.  Backends with ``needs_budget`` take an
        extra ``memory_budget=`` keyword.
    description:
        One line for docs and ``repro-mixing`` help surfaces.
    needs_budget:
        Whether the factory consumes ``ExecutionPolicy.memory_budget``
        (the streaming backend sizes its stripes from it).  Budgeted
        backends are still bit-for-bit neutral across budgets — the knob
        changes stripe boundaries, never arithmetic order.
    """

    name: str
    numeric: str
    factory: Callable[[Any], Callable[[np.ndarray], np.ndarray]] = field(repr=False)
    description: str = ""
    needs_budget: bool = False

    def prepare(
        self, matrix, *, memory_budget: Optional[int] = None
    ) -> Callable[[np.ndarray], np.ndarray]:
        """Build the telemetry-wrapped step closure for ``matrix``."""
        if self.needs_budget:
            inner = self.factory(matrix, memory_budget=memory_budget)
        else:
            inner = self.factory(matrix)
        name = self.name
        if OBS.enabled:
            OBS.add("core.backend.prepares")

        def step(block: np.ndarray) -> np.ndarray:
            if OBS.enabled:
                OBS.add(f"core.backend.steps.{name}")
                OBS.add("core.backend.rows", int(block.shape[0]))
            return inner(block)

        return step


_REGISTRY: Dict[str, SpmmBackend] = {}


def register_backend(backend: SpmmBackend, *, replace: bool = False) -> SpmmBackend:
    """Add a backend to the registry (the extension point for new kernels).

    Names are unique; re-registering an existing name without
    ``replace=True`` raises :class:`~repro.errors.ConfigurationError`
    (silent shadowing would invalidate the differential harness's
    claim to have covered every backend).  ``numeric`` must be
    ``"float64"`` or ``"float32"`` — the two contract classes the
    harness knows how to gate.
    """
    if not isinstance(backend, SpmmBackend):
        raise ConfigurationError(
            f"backend must be an SpmmBackend, got {type(backend).__name__}"
        )
    if backend.numeric not in ("float64", "float32"):
        raise ConfigurationError(
            f"backend numeric must be 'float64' or 'float32', got {backend.numeric!r}"
        )
    if not replace and backend.name in _REGISTRY:
        raise ConfigurationError(f"backend {backend.name!r} is already registered")
    _REGISTRY[backend.name] = backend
    return backend


register_backend(
    SpmmBackend(
        name="numpy",
        numeric="float64",
        factory=_prepare_numpy,
        description="scipy native block x CSR (the oracle; default)",
    )
)
register_backend(
    SpmmBackend(
        name="tiled",
        numeric="float64",
        factory=_prepare_tiled,
        description="cache-tiled CSC rank-stripe kernel, bit-identical to "
        "the oracle; numba-JIT inner loop when importable",
    )
)
register_backend(
    SpmmBackend(
        name="float32",
        numeric="float32",
        factory=_prepare_float32,
        description="single-precision SpMM inside the pinned error envelope",
    )
)
register_backend(
    SpmmBackend(
        name="streaming",
        numeric="float64",
        factory=_prepare_streaming,
        description="budgeted out-of-core column-stripe SpMM with "
        "double-buffered stripe loads, bit-identical to the oracle",
        needs_budget=True,
    )
)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> SpmmBackend:
    """Look a backend up by name; unknown names raise ``ConfigurationError``."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown SpMM backend {name!r}; "
            f"registered backends: {', '.join(_REGISTRY)}"
        )
    return backend


def validate_backend(name) -> str:
    """Normalise/validate a policy's ``backend`` field at construction."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"backend must be a string backend name, got {name!r} "
            f"({type(name).__name__})"
        )
    get_backend(name)
    return name


def backend_numeric(name: str) -> str:
    """``"float64"`` or ``"float32"`` for a registered backend name.

    The service layer uses this to decide cache-key identity: float64
    backends are execution-only knobs (shared cache entries), anything
    else keys separately.
    """
    return get_backend(name).numeric
