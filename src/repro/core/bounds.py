"""Mixing-time bounds from the SLEM (Theorem 2, equation (4)).

For SLEM mu and variation-distance target epsilon:

    lower(eps) = mu / (2 (1 - mu)) * ln(1 / (2 eps))
    upper(eps) = (ln n + ln(1 / eps)) / (1 - mu)

The paper plots the *lower* bound (Figures 1, 2, 5, 6a, 7) because it is
the conservative direction for the "slower than anticipated" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._util import geometric_grid

__all__ = [
    "mixing_time_lower_bound",
    "mixing_time_upper_bound",
    "BoundCurve",
    "lower_bound_curve",
    "upper_bound_curve",
    "epsilon_for_walk_length",
    "fast_mixing_walk_length",
]


def _check_mu(mu: float) -> float:
    mu = float(mu)
    if not 0.0 <= mu <= 1.0:
        raise ValueError(f"mu must be in [0, 1], got {mu}")
    return mu


def _check_eps(epsilon: float) -> float:
    epsilon = float(epsilon)
    if not 0.0 < epsilon < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    return epsilon


def mixing_time_lower_bound(mu: float, epsilon: float) -> float:
    """Equation (4), left side.

    Returns ``inf`` for mu = 1 (disconnected/bipartite limit), and 0 when
    epsilon >= 1/2 (the bound becomes vacuous there since ln(1/2eps) <= 0).
    """
    mu = _check_mu(mu)
    epsilon = _check_eps(epsilon)
    if mu >= 1.0:
        return float("inf")
    value = mu / (2.0 * (1.0 - mu)) * np.log(1.0 / (2.0 * epsilon))
    return float(max(value, 0.0))


def mixing_time_upper_bound(mu: float, epsilon: float, n: int) -> float:
    """Equation (4), right side (needs the graph order ``n``)."""
    mu = _check_mu(mu)
    epsilon = _check_eps(epsilon)
    if n < 1:
        raise ValueError("n must be positive")
    if mu >= 1.0:
        return float("inf")
    return float((np.log(n) + np.log(1.0 / epsilon)) / (1.0 - mu))


@dataclass(frozen=True)
class BoundCurve:
    """A (epsilon, walk-length) curve — the unit the figures plot.

    ``epsilons`` descend-or-ascend freely; ``lengths[i]`` corresponds to
    ``epsilons[i]``.
    """

    epsilons: np.ndarray
    lengths: np.ndarray
    label: str = ""

    def __post_init__(self):
        if self.epsilons.shape != self.lengths.shape:
            raise ValueError("epsilons and lengths must align")

    def length_at(self, epsilon: float) -> float:
        """Interpolated walk length at ``epsilon`` (log-eps interpolation)."""
        order = np.argsort(self.epsilons)
        return float(
            np.interp(
                np.log(epsilon),
                np.log(self.epsilons[order]),
                self.lengths[order],
            )
        )


def lower_bound_curve(
    mu: float,
    *,
    eps_min: float = 1e-4,
    eps_max: float = 0.45,
    points: int = 64,
    label: str = "",
) -> BoundCurve:
    """The lower-bound curve T_lower(eps) over a geometric epsilon grid."""
    eps = geometric_grid(eps_min, eps_max, points)
    lengths = np.asarray([mixing_time_lower_bound(mu, e) for e in eps])
    return BoundCurve(epsilons=eps, lengths=lengths, label=label)


def upper_bound_curve(
    mu: float,
    n: int,
    *,
    eps_min: float = 1e-4,
    eps_max: float = 0.45,
    points: int = 64,
    label: str = "",
) -> BoundCurve:
    """The upper-bound curve T_upper(eps) over a geometric epsilon grid."""
    eps = geometric_grid(eps_min, eps_max, points)
    lengths = np.asarray([mixing_time_upper_bound(mu, e, n) for e in eps])
    return BoundCurve(epsilons=eps, lengths=lengths, label=label)


def epsilon_for_walk_length(mu: float, t: float) -> float:
    """Invert the lower bound: the epsilon the bound guarantees at length t.

    ``eps = exp(-2 t (1 - mu) / mu) / 2``; returns 0.5 at t = 0 and decays
    geometrically — used to annotate admission-rate experiments with the
    variation distance a given walk length can promise.
    """
    mu = _check_mu(mu)
    if t < 0:
        raise ValueError("t must be nonnegative")
    if mu == 0.0:
        return 0.5 if t == 0 else 0.0
    if mu >= 1.0:
        return 0.5
    return float(0.5 * np.exp(-2.0 * t * (1.0 - mu) / mu))


def fast_mixing_walk_length(n: int, *, constant: float = 1.0) -> float:
    """The walk length ``O(log n)`` that the Sybil-defense literature
    assumes suffices (``constant * ln n``).

    SybilGuard/SybilLimit experiments used fixed lengths of 10–15; the
    paper contrasts measured mixing against this yardstick.
    """
    if n < 1:
        raise ValueError("n must be positive")
    return float(constant * np.log(n))
