"""Mixing of *directed* random walks — the paper's future-work direction.

Section 4 converts directed datasets to undirected before measuring; the
natural follow-up (pursued by the same authors) is to measure the
directed graphs themselves.  Directed chains need different machinery:

* the stationary distribution has no closed form (it is not
  degree-proportional), so it is computed by power iteration;
* the transition matrix is not similar to a symmetric one, so Theorem 2
  does not apply; the SLEM generalises to the modulus of the second
  eigenvalue (complex in general), computed with ARPACK, and the
  definition-based measurement (equation (2)) carries over verbatim.

A *teleporting* variant (PageRank-style: with probability ``1 - damping``
jump to a uniformly random node) is provided because real directed
social graphs are rarely strongly aperiodic; teleporting guarantees
ergodicity at the cost of perturbing the chain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConvergenceError, NotConnectedError
from ..graph.digraph import DiGraph, strongly_connected_components
from .._util import check_node_index, check_probability_vector
from .distances import total_variation_distance

__all__ = [
    "DirectedTransitionOperator",
    "directed_second_eigenvalue_modulus",
    "directed_variation_curve",
]


class DirectedTransitionOperator:
    """Row-stochastic operator of a directed random walk.

    Parameters
    ----------
    graph:
        A :class:`DiGraph`; must be strongly connected unless teleporting
        (``damping < 1``) repairs reachability.
    damping:
        Probability of following an out-arc; with probability
        ``1 - damping`` the walk teleports to a uniform node.  ``1.0``
        (default) is the pure walk.  Nodes without out-arcs (dangling)
        always teleport.
    """

    def __init__(self, graph: DiGraph, *, damping: float = 1.0, check_connected: bool = True):
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if graph.num_nodes == 0:
            raise NotConnectedError("empty digraph")
        self._graph = graph
        self._damping = float(damping)
        dangling = graph.out_degrees == 0
        if damping == 1.0:
            if np.any(dangling):
                raise NotConnectedError(
                    "digraph has dangling nodes (no out-arcs); use damping < 1"
                )
            if check_connected and len(strongly_connected_components(graph)) != 1:
                raise NotConnectedError(
                    "digraph is not strongly connected; the pure walk is reducible"
                )
        self._dangling = dangling
        from scipy.sparse import csr_matrix

        out_deg = np.maximum(graph.out_degrees, 1).astype(np.float64)
        data = np.repeat(1.0 / out_deg, graph.out_degrees)
        n = graph.num_nodes
        self._matrix = csr_matrix(
            (data, graph.out_indices.copy(), graph.out_indptr.copy()), shape=(n, n)
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def damping(self) -> float:
        return self._damping

    @property
    def num_states(self) -> int:
        return self._graph.num_nodes

    def point_mass(self, node: int) -> np.ndarray:
        node = check_node_index(node, self.num_states)
        x = np.zeros(self.num_states, dtype=np.float64)
        x[node] = 1.0
        return x

    def step(self, distribution: np.ndarray) -> np.ndarray:
        """One step of the (possibly teleporting) directed walk."""
        x = np.asarray(distribution, dtype=np.float64)
        if x.shape != (self.num_states,):
            raise ValueError(f"distribution must have shape ({self.num_states},)")
        moved = np.asarray(x @ self._matrix).ravel()
        if self._damping < 1.0 or self._dangling.any():
            teleport_mass = (1.0 - self._damping) * (1.0 - x[self._dangling].sum())
            teleport_mass += x[self._dangling].sum()  # dangling always jumps
            moved = self._damping * moved
            # Remove the damped contribution of dangling rows (their
            # matrix rows are zero anyway) and spread teleports uniformly.
            return moved + teleport_mass / self.num_states
        return moved

    def evolve(self, distribution: np.ndarray, steps: int, *, validate: bool = True) -> np.ndarray:
        if steps < 0:
            raise ValueError("steps must be nonnegative")
        x = (
            check_probability_vector(distribution, name="distribution")
            if validate
            else np.asarray(distribution, dtype=np.float64)
        )
        for _ in range(steps):
            x = self.step(x)
        return x

    def stationary(self, *, tol: float = 1e-12, max_iter: int = 100_000) -> np.ndarray:
        """The stationary distribution by power iteration.

        Raises :class:`ConvergenceError` when the chain fails to settle
        (periodic pure walks do exactly that — use ``damping < 1``).
        """
        x = np.full(self.num_states, 1.0 / self.num_states)
        for _ in range(max_iter):
            nxt = self.step(x)
            if np.abs(nxt - x).sum() < tol:
                return nxt
            x = nxt
        raise ConvergenceError(
            f"power iteration did not reach tol={tol}; chain may be periodic",
            partial=x,
        )


def directed_second_eigenvalue_modulus(graph: DiGraph, *, damping: float = 1.0) -> float:
    """``|lambda_2|`` of the directed transition matrix (ARPACK).

    For directed chains eigenvalues are complex; the modulus of the
    second-largest one plays the SLEM's role in convergence-rate
    heuristics, but Theorem 2's two-sided bound does *not* apply (the
    chain is not reversible) — treat this as descriptive.
    """
    op = DirectedTransitionOperator(graph, damping=damping, check_connected=True)
    n = graph.num_nodes
    if n < 3:
        raise ValueError("need at least 3 nodes")
    from scipy.sparse.linalg import eigs

    matrix = op._matrix
    if n <= 400:
        dense = matrix.toarray()
        if damping < 1.0:
            dense = damping * dense + (1.0 - damping) / n
        values = np.linalg.eigvals(dense)
        mods = np.sort(np.abs(values))[::-1]
        return float(min(mods[1], 1.0))
    try:
        values = eigs(matrix.T.astype(np.float64), k=3, which="LM", return_eigenvectors=False, maxiter=5000)
    except Exception as exc:
        raise ConvergenceError(f"ARPACK failed on directed spectrum: {exc}") from exc
    mods = np.sort(np.abs(values))[::-1]
    second = float(mods[1])
    if damping < 1.0:
        second *= damping
    return min(second, 1.0)


def directed_variation_curve(
    graph: DiGraph,
    source: int,
    max_steps: int,
    *,
    damping: float = 1.0,
) -> np.ndarray:
    """``curve[t]`` = TVD between the walk distribution after t steps and
    the stationary distribution (directed analogue of
    :func:`repro.core.mixing.variation_distance_curve`)."""
    op = DirectedTransitionOperator(graph, damping=damping)
    pi = op.stationary(max_iter=200_000) if damping == 1.0 else op.stationary()
    x = op.point_mass(source)
    curve = np.empty(max_steps + 1, dtype=np.float64)
    curve[0] = total_variation_distance(x, pi, validate=False)
    for t in range(1, max_steps + 1):
        x = op.step(x)
        curve[t] = total_variation_distance(x, pi, validate=False)
    return curve
