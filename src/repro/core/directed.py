"""Mixing of *directed* random walks — the paper's future-work direction.

Section 4 converts directed datasets to undirected before measuring; the
natural follow-up (pursued by the same authors) is to measure the
directed graphs themselves.  Directed chains need different machinery:

* the stationary distribution has no closed form (it is not
  degree-proportional), so it is computed by power iteration;
* the transition matrix is not similar to a symmetric one, so Theorem 2
  does not apply; the SLEM generalises to the modulus of the second
  eigenvalue (complex in general), computed with ARPACK, and the
  definition-based measurement (equation (2)) carries over verbatim.

A *teleporting* variant (PageRank-style: with probability ``1 - damping``
jump to a uniformly random node) is provided because real directed
social graphs are rarely strongly aperiodic; teleporting guarantees
ergodicity at the cost of perturbing the chain.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConvergenceError, NotConnectedError
from ..graph.digraph import DiGraph, strongly_connected_components
from .operators import MarkovOperator
from .runtime import ExecutionPolicy, as_policy

__all__ = [
    "DirectedTransitionOperator",
    "directed_second_eigenvalue_modulus",
    "directed_variation_curve",
    "directed_variation_curves",
]


class DirectedTransitionOperator(MarkovOperator):
    """Row-stochastic operator of a directed random walk.

    Parameters
    ----------
    graph:
        A :class:`DiGraph`; must be strongly connected unless teleporting
        (``damping < 1``) repairs reachability.
    damping:
        Probability of following an out-arc; with probability
        ``1 - damping`` the walk teleports to a uniform node.  ``1.0``
        (default) is the pure walk.  Nodes without out-arcs (dangling)
        always teleport.
    """

    def __init__(self, graph: DiGraph, *, damping: float = 1.0, check_connected: bool = True):
        if not 0.0 < damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if graph.num_nodes == 0:
            raise NotConnectedError("empty digraph")
        self._graph = graph
        self._damping = float(damping)
        dangling = graph.out_degrees == 0
        if damping == 1.0:
            if np.any(dangling):
                raise NotConnectedError(
                    "digraph has dangling nodes (no out-arcs); use damping < 1"
                )
            if check_connected and len(strongly_connected_components(graph)) != 1:
                raise NotConnectedError(
                    "digraph is not strongly connected; the pure walk is reducible"
                )
        self._dangling = dangling
        self._teleporting = damping < 1.0 or bool(dangling.any())
        self._init_operator(graph.num_nodes)
        self._power_cache: Dict[Tuple[float, int], np.ndarray] = {}
        from scipy.sparse import csr_matrix

        out_deg = np.maximum(graph.out_degrees, 1).astype(np.float64)
        data = np.repeat(1.0 / out_deg, graph.out_degrees)
        n = graph.num_nodes
        self._matrix = csr_matrix(
            (data, graph.out_indices.copy(), graph.out_indptr.copy()), shape=(n, n)
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> DiGraph:
        return self._graph

    @property
    def damping(self) -> float:
        return self._damping

    def _apply_block(self, block: np.ndarray) -> np.ndarray:
        """One step of the (possibly teleporting) directed walk, batched.

        Each row is treated independently; row ``i`` of the result is
        bit-for-bit the single-vector step of row ``i``.
        """
        moved = np.asarray(block @ self._matrix)
        if self._teleporting:
            dangling_mass = block[:, self._dangling].sum(axis=1)
            teleport_mass = (1.0 - self._damping) * (1.0 - dangling_mass)
            teleport_mass = teleport_mass + dangling_mass  # dangling always jumps
            moved = self._damping * moved
            # Remove the damped contribution of dangling rows (their
            # matrix rows are zero anyway) and spread teleports uniformly.
            return moved + (teleport_mass / self.num_states)[:, np.newaxis]
        return moved

    def _compute_stationary(self) -> np.ndarray:
        return self._power_stationary(tol=1e-12, max_iter=100_000)

    def _power_stationary(self, *, tol: float, max_iter: int) -> np.ndarray:
        x = np.full(self.num_states, 1.0 / self.num_states)
        for _ in range(max_iter):
            nxt = self._apply_block(x[np.newaxis, :])[0]
            if np.abs(nxt - x).sum() < tol:
                return nxt
            x = nxt
        raise ConvergenceError(
            f"power iteration did not reach tol={tol}; chain may be periodic",
            partial=x,
        )

    def stationary(self, *, tol: float = 1e-12, max_iter: int = 100_000) -> np.ndarray:
        """The stationary distribution by power iteration (memoised).

        The result is cached per ``(tol, max_iter)`` so repeated curve
        measurements never re-run the iteration.  Raises
        :class:`ConvergenceError` when the chain fails to settle
        (periodic pure walks do exactly that — use ``damping < 1``).
        """
        key = (float(tol), int(max_iter))
        cached = self._power_cache.get(key)
        if cached is None:
            cached = self._power_stationary(tol=tol, max_iter=max_iter)
            cached.setflags(write=False)
            self._power_cache[key] = cached
            if self._stationary_cache is None and key == (1e-12, 100_000):
                self._stationary_cache = cached
        return cached


def directed_second_eigenvalue_modulus(graph: DiGraph, *, damping: float = 1.0) -> float:
    """``|lambda_2|`` of the directed transition matrix (ARPACK).

    For directed chains eigenvalues are complex; the modulus of the
    second-largest one plays the SLEM's role in convergence-rate
    heuristics, but Theorem 2's two-sided bound does *not* apply (the
    chain is not reversible) — treat this as descriptive.
    """
    op = DirectedTransitionOperator(graph, damping=damping, check_connected=True)
    n = graph.num_nodes
    if n < 3:
        raise ValueError("need at least 3 nodes")
    from scipy.sparse.linalg import eigs

    matrix = op._matrix
    if n <= 400:
        dense = matrix.toarray()
        if damping < 1.0:
            dense = damping * dense + (1.0 - damping) / n
        values = np.linalg.eigvals(dense)
        mods = np.sort(np.abs(values))[::-1]
        return float(min(mods[1], 1.0))
    try:
        values = eigs(matrix.T.astype(np.float64), k=3, which="LM", return_eigenvectors=False, maxiter=5000)
    except Exception as exc:
        raise ConvergenceError(f"ARPACK failed on directed spectrum: {exc}") from exc
    mods = np.sort(np.abs(values))[::-1]
    second = float(mods[1])
    if damping < 1.0:
        second *= damping
    return min(second, 1.0)


def directed_variation_curve(
    graph: DiGraph,
    source: int,
    max_steps: int,
    *,
    damping: float = 1.0,
    operator: Optional[DirectedTransitionOperator] = None,
) -> np.ndarray:
    """``curve[t]`` = TVD between the walk distribution after t steps and
    the stationary distribution (directed analogue of
    :func:`repro.core.mixing.variation_distance_curve`).

    Pass a prebuilt ``operator`` when measuring many sources on the same
    digraph — its power-iterated stationary distribution is memoised, so
    only the first call pays for it.
    """
    op = operator if operator is not None else DirectedTransitionOperator(graph, damping=damping)
    pi = op.stationary(max_iter=200_000) if op.damping == 1.0 else op.stationary()
    return op.variation_curve(source, max_steps, reference=pi)


def directed_variation_curves(
    graph: DiGraph,
    sources,
    walk_lengths,
    *,
    damping: float = 1.0,
    operator: Optional[DirectedTransitionOperator] = None,
    block_size: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> np.ndarray:
    """Multi-source directed measurement: ``(s, w)`` TVD checkpoints.

    The batched companion of :func:`directed_variation_curve`: one
    power-iterated stationary solve, then every source evolved through
    the shared block API — with ``workers > 1`` fanned out across the
    shared-memory sweep runtime (:mod:`repro.core.parallel`; both the
    pure-CSR and the teleporting kernel are supported, dangling mask
    included).
    """
    op = operator if operator is not None else DirectedTransitionOperator(graph, damping=damping)
    pi = op.stationary(max_iter=200_000) if op.damping == 1.0 else op.stationary()
    return op.variation_curves(
        sources,
        walk_lengths,
        reference=pi,
        policy=as_policy(policy, workers=workers, block_size=block_size),
    )
