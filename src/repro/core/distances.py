"""Distances between probability distributions.

The paper's measurements are phrased in *total variation distance*
(Definition 1).  Whānau's experiments used the *separation distance*
instead, which the paper criticises (footnote 2); both are provided so the
comparison can be reproduced.
"""

from __future__ import annotations

import numpy as np

from .._util import check_probability_vector

__all__ = [
    "total_variation_distance",
    "total_variation_to_reference",
    "separation_distance",
    "l2_distance",
    "kl_divergence",
    "hellinger_distance",
]


def total_variation_distance(p: np.ndarray, q: np.ndarray, *, validate: bool = True) -> float:
    """Total variation distance ``(1/2) * sum_i |p_i - q_i|``.

    This is the ``|| . ||_1`` metric of Definition 1 (with the customary
    1/2 factor so the distance lies in [0, 1]).
    """
    if validate:
        p = check_probability_vector(p, name="p")
        q = check_probability_vector(q, name="q")
        if p.size != q.size:
            raise ValueError("p and q must have the same length")
    return float(0.5 * np.abs(p - q).sum())


def total_variation_to_reference(
    block: np.ndarray, reference: np.ndarray, *, validate: bool = True
) -> np.ndarray:
    """Row-wise TVD of an ``(s, n)`` block against one reference vector.

    ``out[i] = (1/2) * sum_j |block[i, j] - reference[j]|`` — the batched
    form of :func:`total_variation_distance` used by the
    :class:`~repro.core.operators.MarkovOperator` block API.  Each entry
    is bit-for-bit what the scalar function returns on the corresponding
    row: the reduction runs per row as a contiguous 1-D pairwise sum
    (``abs(x - ref).sum(axis=1)`` on a multi-row array picks a different
    pairwise blocking than a 1-D sum, which would make results depend on
    how sources are chunked into blocks — a 1-ulp drift the operator
    layer promises never to introduce).
    """
    x = np.asarray(block, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"block must be 2-D (s, n), got shape {x.shape}")
    if validate:
        reference = check_probability_vector(reference, name="reference")
        for i in range(x.shape[0]):
            check_probability_vector(x[i], name=f"block[{i}]")
    ref = np.asarray(reference, dtype=np.float64)
    if ref.shape != (x.shape[1],):
        raise ValueError("reference must have one entry per block column")
    diff = np.abs(x - ref)
    out = np.empty(x.shape[0], dtype=np.float64)
    for i in range(x.shape[0]):
        out[i] = diff[i].sum()
    out *= 0.5
    return out


def separation_distance(p: np.ndarray, q: np.ndarray, *, validate: bool = True) -> float:
    """Separation distance ``max_i (1 - p_i / q_i)`` of p relative to q.

    Only entries with ``q_i > 0`` participate; an entry with ``q_i == 0``
    and ``p_i > 0`` makes the distance 1 (p escapes q's support).  Always
    upper-bounds the total variation distance.
    """
    if validate:
        p = check_probability_vector(p, name="p")
        q = check_probability_vector(q, name="q")
        if p.size != q.size:
            raise ValueError("p and q must have the same length")
    supported = q > 0
    if np.any(~supported & (np.asarray(p) > 0)):
        return 1.0
    # Overflow to +inf is harmless here: only the *smallest* ratio
    # matters, and a huge p/q just means that entry is not the minimum.
    with np.errstate(over="ignore"):
        ratio = np.asarray(p)[supported] / np.asarray(q)[supported]
    return float(np.clip(1.0 - ratio.min(), 0.0, 1.0))


def l2_distance(p: np.ndarray, q: np.ndarray, *, validate: bool = True) -> float:
    """Euclidean distance between the distribution vectors."""
    if validate:
        p = check_probability_vector(p, name="p")
        q = check_probability_vector(q, name="q")
        if p.size != q.size:
            raise ValueError("p and q must have the same length")
    return float(np.linalg.norm(np.asarray(p) - np.asarray(q)))


def kl_divergence(p: np.ndarray, q: np.ndarray, *, validate: bool = True) -> float:
    """Kullback–Leibler divergence ``D(p || q)`` in nats.

    Returns ``inf`` when p puts mass outside q's support.
    """
    if validate:
        p = check_probability_vector(p, name="p")
        q = check_probability_vector(q, name="q")
        if p.size != q.size:
            raise ValueError("p and q must have the same length")
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    mask = p > 0
    if np.any(mask & (q <= 0)):
        return float("inf")
    # log(p) - log(q) instead of log(p / q): the ratio can overflow when
    # q holds denormals even though the divergence itself is finite.
    return float((p[mask] * (np.log(p[mask]) - np.log(q[mask]))).sum())


def hellinger_distance(p: np.ndarray, q: np.ndarray, *, validate: bool = True) -> float:
    """Hellinger distance ``(1/sqrt(2)) * || sqrt(p) - sqrt(q) ||_2``."""
    if validate:
        p = check_probability_vector(p, name="p")
        q = check_probability_vector(q, name="q")
        if p.size != q.size:
            raise ValueError("p and q must have the same length")
    return float(np.linalg.norm(np.sqrt(p) - np.sqrt(q)) / np.sqrt(2.0))
