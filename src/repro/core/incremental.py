"""Incremental stationary/SLEM maintenance over temporal graphs.

When a graph evolves by small edge deltas, its spectrum moves a little;
recomputing the SLEM from scratch on every window throws that locality
away.  This module maintains the two extreme eigenpairs of the
normalised adjacency ``N = D^{-1/2} A D^{-1/2}`` *incrementally*:

**Warm start.**  The previous window's eigenvectors seed the next
window's Lanczos solves (``eigsh`` with an explicit ``v0``) run at the
loose-but-certified tolerance :data:`WARM_RESIDUAL_TOL` instead of the
cold path's machine-precision ``tol=0``.  The certification is the
symmetric residual bound: every Ritz pair obeys
``|theta - lambda| <= ||N x - theta x||_2``, and ``|lambda| <= 1`` for
the normalised adjacency, so an eigsh exit at relative tolerance
``1e-7`` pins the eigenvalue error an order of magnitude below the
:data:`WARM_SLEM_ATOL` contract.  An explicit residual certificate is
still evaluated after each warm solve — if it ever exceeds the safe
threshold the window silently recomputes cold.

**Agreement contract.**  Warm results must match cold recomputation
(:func:`repro.core.spectral.transition_spectrum_extremes`) to within
:data:`WARM_SLEM_ATOL` on every window — the residual bound guarantees
it analytically and the test suite pins it empirically across every
registered SpMM backend (float32 backends get the backend's own pinned
envelope instead).

**Cold fallback.**  Warm seeding is refused automatically when there is
no previous state, the node count changed, or the delta touches more
than :data:`MAX_WARM_DELTA_FRACTION` of the edges — perturbation
locality is no longer trustworthy, so the solver falls back to the
deterministic cold path (and says so in ``SpectralState.warm_started``).

Stationary maintenance is exact rather than approximate: the stationary
distribution is degree-proportional (Theorem 1), so
:class:`StationaryTracker` folds deltas into an integer degree vector
and reproduces :func:`repro.core.stationary.stationary_distribution`
bit-for-bit.

Matvecs route through the pluggable SpMM backend seam
(:mod:`repro.core.backends`): non-default backends wrap their prepared
step closure in a counted ``LinearOperator``, so the incremental path
inherits the tiled / float32 / streaming kernels and their telemetry.
The default ``"numpy"`` backend takes a fast path — a counted native
CSR matvec — because the numpy backend's step *is* the scipy product
and the per-call wrapper overhead would otherwise dominate the solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, NotConnectedError
from ..graph import Graph
from ..graph.temporal import EdgeDelta, TemporalGraph
from ..obs import OBS
from .backends import get_backend
from .mixing import measure_mixing, sample_sources
from .runtime import DEFAULT_POLICY, ExecutionPolicy, as_policy
from .spectral import SpectralSummary, normalized_adjacency

__all__ = [
    "WARM_SLEM_ATOL",
    "WARM_RESIDUAL_TOL",
    "MAX_WARM_DELTA_FRACTION",
    "SpectralState",
    "StationaryTracker",
    "warm_spectral_extremes",
    "SlemTrend",
    "MixingTrend",
    "slem_trend",
    "mixing_trend",
]

#: Pinned warm-vs-cold agreement tolerance on SLEM / lambda_2 /
#: lambda_min (float64 backends).  See DESIGN.md §7 for the derivation:
#: residual-norm stopping at :data:`WARM_RESIDUAL_TOL` bounds the
#: eigenvalue error two orders of magnitude below this contract.
WARM_SLEM_ATOL = 1e-6

#: Relative tolerance for the warm Lanczos solves *and* the absolute
#: residual certificate threshold.  For a symmetric operator
#: ``|theta - lambda| <= ||r||_2`` and ``|lambda| <= 1`` here, so this
#: bounds the warm eigenvalue error at WARM_SLEM_ATOL / 10.
WARM_RESIDUAL_TOL = 1e-7

#: Warm seeding is refused when a delta touches more than this fraction
#: of the current edge set — first-order perturbation locality is gone,
#: so a cold solve is both safer and barely slower.
MAX_WARM_DELTA_FRACTION = 0.25

#: Warm seeding needs headroom for the Lanczos basis (ncv = 20
#: vectors); below this the cold dense solve is cheaper anyway.
_MIN_WARM_NODES = 64


@dataclass(frozen=True)
class SpectralState:
    """One maintained spectral snapshot: eigenvalues plus their vectors.

    The vectors are what make the *next* window cheap — they seed the
    warm polish.  ``warm_started`` and ``matvecs`` record how this state
    was obtained (benchmarks and OBS read them).
    """

    lambda2: float
    lambda_min: float
    slem: float
    vec2: np.ndarray
    vec_min: np.ndarray
    n: int
    warm_started: bool
    matvecs: int

    def summary(self) -> SpectralSummary:
        """The static-analysis view of this state (method ``"warm"``)."""
        return SpectralSummary(
            lambda2=self.lambda2,
            lambda_min=self.lambda_min,
            slem=self.slem,
            gap=1.0 - self.slem,
            method="warm" if self.warm_started else "cold",
        )


class StationaryTracker:
    """Exact incremental maintenance of the stationary distribution.

    Theorem 1 makes this trivial: ``pi_v = deg(v) / 2m``, and a delta
    changes degrees by integer amounts.  The tracker keeps the integer
    degree vector and edge count, so :meth:`distribution` reproduces
    :func:`stationary_distribution` of the updated graph **bit-for-bit**
    (same float64 division, same operand order).
    """

    __slots__ = ("_degrees", "_num_edges")

    def __init__(self, degrees: np.ndarray, num_edges: int):
        self._degrees = np.asarray(degrees, dtype=np.int64).copy()
        self._num_edges = int(num_edges)

    @classmethod
    def from_graph(cls, graph: Graph) -> "StationaryTracker":
        return cls(graph.degrees, graph.num_edges)

    @property
    def degrees(self) -> np.ndarray:
        return self._degrees

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def apply(self, delta: EdgeDelta) -> "StationaryTracker":
        """Fold one delta into a new tracker (the original is unchanged)."""
        n = len(self._degrees)
        if delta.insert.size:
            n = max(n, int(delta.insert.max()) + 1)
        deg = np.zeros(n, dtype=np.int64)
        deg[: len(self._degrees)] = self._degrees
        for pairs, sign in ((delta.insert, 1), (delta.delete, -1)):
            if pairs.size:
                np.add.at(deg, pairs[:, 0], sign)
                np.add.at(deg, pairs[:, 1], sign)
        if np.any(deg < 0):
            raise ConfigurationError("delta deletes more incident edges than a node has")
        m = self._num_edges + int(delta.insert.shape[0]) - int(delta.delete.shape[0])
        return StationaryTracker(deg, m)

    def distribution(self) -> np.ndarray:
        """``pi = deg / 2m``, byte-identical to the cold computation."""
        if self._num_edges == 0:
            raise NotConnectedError("stationary distribution undefined: graph has no edges")
        deg = self._degrees.astype(np.float64)
        if np.any(deg == 0):
            raise NotConnectedError("stationary distribution undefined: graph has isolated nodes")
        return deg / (2.0 * self._num_edges)

    def __repr__(self) -> str:
        return f"StationaryTracker(n={len(self._degrees)}, m={self._num_edges})"


def _counted_operator(graph: Graph, policy: ExecutionPolicy):
    """``(op, counter, matrix)`` — a counted ``v -> N v`` LinearOperator.

    The default ``"numpy"`` backend applies the CSR matrix natively (its
    step closure is the scipy product; re-entering it per matvec would
    pay wrapper overhead thousands of times per solve).  Every other
    backend routes through its prepared step so warm solves really
    exercise the selected kernel.
    """
    import scipy.sparse.linalg as spla

    matrix = normalized_adjacency(graph)
    n = graph.num_nodes
    counter = {"matvecs": 0}
    if policy.backend == "numpy":

        def matvec(v):
            counter["matvecs"] += 1
            return matrix @ v

    else:
        step = get_backend(policy.backend).prepare(matrix, memory_budget=policy.memory_budget)

        def matvec(v):
            counter["matvecs"] += 1
            return np.asarray(
                step(np.asarray(v, dtype=np.float64).reshape(1, -1)), dtype=np.float64
            )[0]

    op = spla.LinearOperator((n, n), matvec=matvec, dtype=np.float64)
    return op, counter, matrix


def _cold_state(graph: Graph, policy: ExecutionPolicy) -> SpectralState:
    """Deterministic cold solve that also yields the extreme eigenvectors.

    Mirrors :func:`transition_spectrum_extremes`'s sparse path (same
    deterministic ``v0``, ``tol=0``) but keeps the vectors so the next
    window can warm-start.  Tiny graphs use a dense solve — Lanczos
    needs ``k < n`` plus basis headroom.
    """
    import scipy.sparse.linalg as spla

    n = graph.num_nodes
    op, counter, matrix = _counted_operator(graph, policy)
    if n <= _MIN_WARM_NODES:
        dense = matrix.toarray()
        vals, vecs = np.linalg.eigh(dense)
        lambda2, vec2 = float(vals[-2]), vecs[:, -2]
        lambda_min, vec_min = float(vals[0]), vecs[:, 0]
    else:
        v0 = np.full(n, 1.0 / np.sqrt(n))
        vals_hi, vecs_hi = spla.eigsh(op, k=3, which="LA", v0=v0, tol=0)
        order = np.argsort(vals_hi)
        lambda2, vec2 = float(vals_hi[order[-2]]), vecs_hi[:, order[-2]]
        vals_lo, vecs_lo = spla.eigsh(op, k=1, which="SA", v0=v0, tol=0)
        lambda_min, vec_min = float(vals_lo[0]), vecs_lo[:, 0]
    slem = min(max(abs(lambda2), abs(lambda_min)), 1.0)
    if OBS.enabled:
        OBS.add("core.incremental.cold_starts")
        OBS.add("core.incremental.matvecs", counter["matvecs"])
    return SpectralState(
        lambda2=lambda2,
        lambda_min=lambda_min,
        slem=slem,
        vec2=np.ascontiguousarray(vec2, dtype=np.float64),
        vec_min=np.ascontiguousarray(vec_min, dtype=np.float64),
        n=n,
        warm_started=False,
        matvecs=counter["matvecs"],
    )


def warm_spectral_extremes(
    graph: Graph,
    state: Optional[SpectralState] = None,
    *,
    changed_edges: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    residual_tol: float = WARM_RESIDUAL_TOL,
    max_delta_fraction: float = MAX_WARM_DELTA_FRACTION,
) -> SpectralState:
    """Maintain the extreme eigenpairs of ``N``, warm-starting when safe.

    Parameters
    ----------
    graph:
        The *current* snapshot.
    state:
        The previous window's :class:`SpectralState` (or ``None`` for a
        cold start).
    changed_edges:
        Edges touched since ``state`` was computed; when it exceeds
        ``max_delta_fraction * graph.num_edges`` the warm seed is
        rejected and the solver recomputes cold.  ``None`` means
        "unknown but small" (warm is attempted when ``state`` fits).
    policy:
        Execution policy; ``policy.backend`` selects the SpMM kernel the
        matvecs route through.

    The returned state satisfies the pinned agreement contract
    (:data:`WARM_SLEM_ATOL` against a cold solve) whichever path ran.
    """
    import scipy.sparse.linalg as spla

    run_policy = as_policy(policy) if policy is not None else DEFAULT_POLICY
    warm_ok = (
        state is not None
        and state.n == graph.num_nodes
        and graph.num_nodes > _MIN_WARM_NODES
        and (
            changed_edges is None
            or changed_edges <= max_delta_fraction * max(graph.num_edges, 1)
        )
    )
    if not warm_ok:
        return _cold_state(graph, run_policy)

    with OBS.span("incremental.warm", n=graph.num_nodes):
        op, counter, matrix = _counted_operator(graph, run_policy)
        # The previous eigenvectors seed loose-tolerance Lanczos solves;
        # k=2 "LA" resolves (lambda_1 = 1, lambda_2) together, which is
        # cheaper than deflating lambda_1 out by hand.
        vals_hi, vecs_hi = spla.eigsh(
            op, k=2, which="LA", v0=state.vec2, tol=residual_tol
        )
        order = np.argsort(vals_hi)
        lambda2, vec2 = float(vals_hi[order[-2]]), vecs_hi[:, order[-2]]
        vals_lo, vecs_lo = spla.eigsh(
            op, k=1, which="SA", v0=state.vec_min, tol=residual_tol
        )
        lambda_min, vec_min = float(vals_lo[0]), vecs_lo[:, 0]
        # Explicit residual certificate: |theta - lambda| <= ||r||_2 for
        # symmetric N.  eigsh already guarantees it at exit, but a cold
        # recompute on violation costs little and removes all trust in
        # ARPACK's stopping rule from the agreement contract.
        res2 = float(np.linalg.norm(matrix @ vec2 - lambda2 * vec2))
        res_min = float(np.linalg.norm(matrix @ vec_min - lambda_min * vec_min))
        counter["matvecs"] += 2
    if max(res2, res_min) > 2.0 * residual_tol:
        return _cold_state(graph, run_policy)
    slem = min(max(abs(lambda2), abs(lambda_min)), 1.0)
    if OBS.enabled:
        OBS.add("core.incremental.warm_starts")
        OBS.add("core.incremental.matvecs", counter["matvecs"])
    return SpectralState(
        lambda2=lambda2,
        lambda_min=lambda_min,
        slem=slem,
        vec2=np.ascontiguousarray(vec2, dtype=np.float64),
        vec_min=np.ascontiguousarray(vec_min, dtype=np.float64),
        n=graph.num_nodes,
        warm_started=True,
        matvecs=counter["matvecs"],
    )


@dataclass(frozen=True)
class SlemTrend:
    """SLEM (and friends) sampled across a temporal graph's windows."""

    times: Tuple[int, ...]
    slem: np.ndarray
    lambda2: np.ndarray
    lambda_min: np.ndarray
    warm_started: np.ndarray
    matvecs: np.ndarray

    def __len__(self) -> int:
        return len(self.times)


@dataclass(frozen=True)
class MixingTrend:
    """Per-source TVD curves sampled across windows.

    ``distances`` has shape ``(num_times, num_sources, num_walks)``;
    :meth:`worst_case` collapses the source axis the same way
    :meth:`repro.core.mixing.PerSourceMixing.worst_case` does, so trend
    curves are directly comparable to static Figure 3 curves.
    """

    times: Tuple[int, ...]
    walk_lengths: Tuple[int, ...]
    sources: Tuple[int, ...]
    distances: np.ndarray

    def worst_case(self) -> np.ndarray:
        """``(num_times, num_walks)`` max-over-sources TVD."""
        return self.distances.max(axis=1)

    def average_case(self) -> np.ndarray:
        """``(num_times, num_walks)`` mean-over-sources TVD."""
        return self.distances.mean(axis=1)

    def __len__(self) -> int:
        return len(self.times)


def _resolve_times(temporal: TemporalGraph, times: Optional[Sequence[int]]) -> Tuple[int, ...]:
    if times is None:
        return temporal.times()
    resolved = tuple(int(t) for t in times)
    if not resolved:
        raise ConfigurationError("times must be non-empty")
    if any(b <= a for a, b in zip(resolved, resolved[1:])):
        raise ConfigurationError("times must be strictly increasing")
    return resolved


def slem_trend(
    temporal: TemporalGraph,
    times: Optional[Sequence[int]] = None,
    *,
    warm: bool = True,
    policy: Optional[ExecutionPolicy] = None,
) -> SlemTrend:
    """Track the SLEM across windows, warm-starting between them.

    With ``warm=False`` every window is solved cold — that is the
    baseline the temporal benchmark gates the warm path against.
    """
    resolved = _resolve_times(temporal, times)
    states = []
    state: Optional[SpectralState] = None
    prev_t: Optional[int] = None
    for t in resolved:
        graph = temporal.at(t)
        changed = temporal.changes_between(prev_t, t) if prev_t is not None else None
        state = warm_spectral_extremes(
            graph,
            state if warm else None,
            changed_edges=changed,
            policy=policy,
        )
        states.append(state)
        prev_t = t
    return SlemTrend(
        times=resolved,
        slem=np.array([s.slem for s in states]),
        lambda2=np.array([s.lambda2 for s in states]),
        lambda_min=np.array([s.lambda_min for s in states]),
        warm_started=np.array([s.warm_started for s in states]),
        matvecs=np.array([s.matvecs for s in states], dtype=np.int64),
    )


def mixing_trend(
    temporal: TemporalGraph,
    walk_lengths: Sequence[int],
    *,
    sources: Optional[Sequence[int]] = None,
    num_sources: int = 25,
    seed: int = 0,
    times: Optional[Sequence[int]] = None,
    laziness: float = 0.0,
    policy: Optional[ExecutionPolicy] = None,
) -> MixingTrend:
    """Measure TVD curves on every window with one fixed source set.

    Sources are sampled once (from the *base* snapshot, so they are
    valid nodes in every window) and reused, which makes drift across
    windows attributable to the graph rather than to resampling.
    """
    resolved = _resolve_times(temporal, times)
    base = temporal.at(resolved[0])
    if sources is None:
        chosen = sample_sources(base, min(num_sources, base.num_nodes), seed=seed)
    else:
        chosen = tuple(int(s) for s in sources)
    walks = tuple(int(w) for w in walk_lengths)
    rows = []
    for t in resolved:
        result = measure_mixing(
            temporal.at(t),
            walks,
            sources=chosen,
            laziness=laziness,
            policy=policy,
        )
        rows.append(result.distances)
    return MixingTrend(
        times=resolved,
        walk_lengths=walks,
        sources=tuple(chosen),
        distances=np.stack(rows, axis=0),
    )
