"""Definition-based mixing-time measurement (equation (2)).

    T(eps) = max_i min { t : || pi - pi^{(i)} P^t ||_1 < eps }

The measurement machinery follows Section 3.3 exactly:

* start from a point-mass distribution at a source node,
* evolve it step by step with sparse vector–matrix products,
* record the total variation distance to the stationary distribution at
  every step,
* either brute-force over *every* source (small graphs — Figures 3-5) or
  over a random sample of sources, 1000 in the paper (large graphs —
  Figures 6-7).

Because T(eps) is a maximum over sources, any subset of sources yields a
*lower bound* on the true mixing time — the direction the paper cares
about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import ConfigurationError, ConvergenceError
from ..graph import Graph
from .._util import as_rng
from .operators import MarkovOperator
from .runtime import ExecutionPolicy, as_policy
from .walks import TransitionOperator

__all__ = [
    "MEASUREMENT_MODES",
    "variation_distance_curve",
    "mixing_time_from_source",
    "PerSourceMixing",
    "measure_mixing",
    "sample_sources",
    "MixingTimeEstimate",
    "estimate_mixing_time",
]

#: Estimator modes accepted by :func:`measure_mixing` /
#: :func:`estimate_mixing_time` (and the service query vocabulary).
#:
#: ``"point_mass"``
#:     The paper's definition: one walk per source node, started from a
#:     point mass (default, bit-for-bit the historical behaviour).
#: ``"uniform_start"``
#:     One walk started from the *uniform* distribution — the
#:     warm-started estimator of "Speeding up random walk mixing by
#:     starting from a uniform vertex": a single evolved row replaces
#:     ``s`` point-mass rows, trading the per-source worst case for the
#:     averaged start at a fraction of the cost.  ``sources`` is ignored
#:     and the result carries the sentinel source ``-1``.
#: ``"non_backtracking"``
#:     Hashimoto-style edge-space walks (see
#:     :mod:`repro.core.nonbacktracking`): per-source walks that never
#:     immediately reverse an edge, measured on node occupancies against
#:     ``deg/2m``.  Requires ``laziness == 0`` and builds its own arc
#:     operator (a supplied node-space ``operator`` is rejected).
MEASUREMENT_MODES = ("point_mass", "uniform_start", "non_backtracking")


def _check_mode(mode: str, *, laziness: float, operator) -> str:
    """Validate an estimator mode against the other knobs."""
    if mode not in MEASUREMENT_MODES:
        raise ConfigurationError(
            f"unknown measurement mode {mode!r}; expected one of {MEASUREMENT_MODES}"
        )
    if mode == "non_backtracking":
        if laziness != 0.0:
            raise ConfigurationError(
                "non_backtracking mode does not support laziness "
                "(the Hashimoto chain has no lazy variant here)"
            )
        from .nonbacktracking import NonBacktrackingOperator

        if operator is not None and not isinstance(operator, NonBacktrackingOperator):
            raise ConfigurationError(
                "non_backtracking mode requires a NonBacktrackingOperator "
                f"(got {type(operator).__name__})"
            )
    return mode


def variation_distance_curve(
    operator: MarkovOperator,
    source: int,
    max_steps: int,
) -> np.ndarray:
    """``curve[t] = || pi - pi^{(source)} P^t ||_1`` for t = 0..max_steps.

    Works for *any* :class:`~repro.core.operators.MarkovOperator`
    (undirected, directed, weighted); delegates to the shared
    :meth:`~repro.core.operators.MarkovOperator.variation_curve`.
    """
    return operator.variation_curve(source, max_steps)


def mixing_time_from_source(
    operator: MarkovOperator,
    source: int,
    epsilon: float,
    *,
    max_steps: int = 10_000,
) -> int:
    """Minimal t with variation distance below ``epsilon`` from ``source``.

    Raises :class:`ConvergenceError` (carrying the distance reached) when
    ``max_steps`` is hit first.
    """
    result = operator.hitting_times([source], epsilon, max_steps=max_steps)
    time = int(result.times[0])
    if time < 0:
        dist = float(result.final_distances[0])
        raise ConvergenceError(
            f"variation distance still {dist:.4g} >= {epsilon} after {max_steps} steps",
            partial=dist,
        )
    return time


def sample_sources(
    graph: Graph,
    count: Optional[int],
    *,
    seed=None,
) -> np.ndarray:
    """Source nodes for a measurement.

    ``count=None`` (or >= n) means *every* node — the brute-force mode of
    Figures 3-5; otherwise a uniform sample without replacement (the
    paper uses 1000).
    """
    n = graph.num_nodes
    if count is None or count >= n:
        return np.arange(n, dtype=np.int64)
    if count <= 0:
        raise ValueError("count must be positive")
    rng = as_rng(seed)
    return np.sort(rng.choice(n, size=count, replace=False)).astype(np.int64)


@dataclass
class PerSourceMixing:
    """Variation-distance trajectories for a set of sources.

    Attributes
    ----------
    sources:
        Node ids measured, shape ``(s,)``.
    walk_lengths:
        The walk lengths at which distances were recorded, shape ``(w,)``.
    distances:
        ``distances[i, j]`` = TVD between ``pi`` and the distribution of a
        walk of length ``walk_lengths[j]`` started at ``sources[i]``.
    """

    sources: np.ndarray
    walk_lengths: np.ndarray
    distances: np.ndarray

    def __post_init__(self):
        if self.distances.shape != (self.sources.size, self.walk_lengths.size):
            raise ValueError("distances must be (num_sources, num_walk_lengths)")

    # -- aggregations ---------------------------------------------------
    def worst_case(self) -> np.ndarray:
        """max over sources at each walk length (the definition's max_i)."""
        return self.distances.max(axis=0)

    def average_case(self) -> np.ndarray:
        """mean over sources at each walk length (the paper's 'average
        mixing time' perspective, Section 5)."""
        return self.distances.mean(axis=0)

    def quantile(self, q: float) -> np.ndarray:
        """Per-walk-length quantile over sources."""
        return np.quantile(self.distances, q, axis=0)

    def mixing_time(self, epsilon: float) -> int:
        """Smallest recorded walk length where the worst source is below
        ``epsilon``; raises :class:`ConvergenceError` if none is."""
        worst = self.worst_case()
        hits = np.flatnonzero(worst < epsilon)
        if hits.size == 0:
            raise ConvergenceError(
                f"no recorded walk length reaches epsilon={epsilon}; "
                f"best worst-case distance is {worst.min():.4g}",
                partial=float(worst.min()),
            )
        return int(self.walk_lengths[hits[0]])

    def epsilon_at(self, walk_length: int) -> np.ndarray:
        """Distances of every source at one recorded walk length."""
        hits = np.flatnonzero(self.walk_lengths == walk_length)
        if hits.size == 0:
            raise KeyError(f"walk length {walk_length} was not recorded")
        return self.distances[:, hits[0]]


def measure_mixing(
    graph: Graph,
    walk_lengths: Sequence[int],
    *,
    sources: Union[None, int, Sequence[int]] = None,
    seed=None,
    laziness: float = 0.0,
    check_aperiodic: bool = True,
    operator: Optional[MarkovOperator] = None,
    block_size: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    mode: str = "point_mass",
) -> PerSourceMixing:
    """Measure variation distance at the given walk lengths.

    Parameters
    ----------
    walk_lengths:
        Strictly increasing nonnegative walk lengths to record (e.g.
        ``[1, 5, 10, 20, 40]`` for Figure 3).
    sources:
        ``None`` → every node (brute force); an int → that many uniformly
        sampled sources; a sequence → exactly those nodes.
    laziness:
        Forwarded to :class:`TransitionOperator` (use > 0 on bipartite
        graphs).
    operator:
        A pre-built operator over ``graph`` to sweep with instead of
        constructing one — the warm path used by the service layer's
        operator registry (:mod:`repro.service`), where construction and
        connectivity checks are paid once across many requests.  Must
        have been built over ``graph`` with the same ``laziness``; when
        given, ``laziness``/``check_aperiodic`` are ignored.  Results
        are bit-identical to the cold path because the sweep itself is
        unchanged.
    block_size:
        Sources per evolution chunk; ``None`` sizes the chunk from the
        operator layer's memory budget (see
        :func:`~repro.core.operators.resolve_block_size`).
    workers:
        Process count for the shared-memory sweep runtime
        (:mod:`repro.core.parallel`); ``None``/``1`` stays serial,
        ``-1`` uses every core.  Parallel output is bit-for-bit equal
        to serial.  Deprecated alias — prefer ``policy=``.
    policy:
        An :class:`~repro.core.runtime.ExecutionPolicy` bundling all
        execution knobs (workers, block size, retries, shard timeout,
        checkpoint directory).  Passing ``checkpoint_dir`` makes this
        sweep resumable: completed shards are persisted and skipped on
        restart, with bit-identical final output.
    mode:
        Estimator mode — see :data:`MEASUREMENT_MODES`.  The default
        ``"point_mass"`` is the paper's definition and is bit-for-bit
        the historical behaviour.

    All sources are evolved through the shared
    :meth:`~repro.core.operators.MarkovOperator.variation_curves` block
    API — one sparse-times-dense product advances a whole chunk per step,
    an order of magnitude faster than per-source vector products (same
    math, bit-identical results).
    """
    _check_mode(mode, laziness=laziness, operator=operator)
    lengths = np.asarray(list(walk_lengths), dtype=np.int64)
    if lengths.size == 0:
        raise ValueError("walk_lengths must be non-empty")
    if np.any(lengths < 0) or np.any(np.diff(lengths) <= 0):
        raise ValueError("walk_lengths must be strictly increasing and nonnegative")
    run_policy = as_policy(policy, workers=workers, block_size=block_size)

    if mode == "uniform_start":
        if operator is None:
            operator = TransitionOperator(
                graph, laziness=laziness, check_aperiodic=check_aperiodic
            )
        uniform = np.full(
            (1, operator.num_states), 1.0 / operator.num_states, dtype=np.float64
        )
        out = operator.distribution_variation_curves(
            uniform, lengths, policy=run_policy
        )
        return PerSourceMixing(
            sources=np.array([-1], dtype=np.int64),
            walk_lengths=lengths,
            distances=out,
        )

    if sources is None or isinstance(sources, (int, np.integer)):
        source_ids = sample_sources(graph, None if sources is None else int(sources), seed=seed)
    else:
        source_ids = np.asarray(list(sources), dtype=np.int64)
        if source_ids.size == 0:
            raise ValueError("sources must be non-empty")

    if mode == "non_backtracking":
        from .nonbacktracking import non_backtracking_curves

        out = non_backtracking_curves(
            graph, source_ids, lengths, operator=operator, policy=run_policy
        )
        return PerSourceMixing(
            sources=source_ids, walk_lengths=lengths, distances=out
        )

    if operator is None:
        operator = TransitionOperator(
            graph, laziness=laziness, check_aperiodic=check_aperiodic
        )
    out = operator.variation_curves(source_ids, lengths, policy=run_policy)
    return PerSourceMixing(sources=source_ids, walk_lengths=lengths, distances=out)


@dataclass(frozen=True)
class MixingTimeEstimate:
    """A sampled lower-bound estimate of T(eps).

    ``walk_length`` is the smallest t at which *all* measured sources were
    within eps; ``per_source`` holds each source's individual hitting
    time (entries are -1 for sources that never got below eps within
    ``max_steps``).
    """

    epsilon: float
    walk_length: int
    per_source: np.ndarray
    sources: np.ndarray
    exhaustive: bool

    @property
    def average_walk_length(self) -> float:
        """Mean hitting time over sources that converged."""
        ok = self.per_source[self.per_source >= 0]
        if ok.size == 0:
            return float("nan")
        return float(ok.mean())


def estimate_mixing_time(
    graph: Graph,
    epsilon: float,
    *,
    sources: Union[None, int, Sequence[int]] = None,
    max_steps: int = 10_000,
    seed=None,
    laziness: float = 0.0,
    operator: Optional[MarkovOperator] = None,
    block_size: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
    mode: str = "point_mass",
) -> MixingTimeEstimate:
    """Estimate T(eps) by per-source hitting times of the eps ball.

    ``operator`` (optional) is a pre-built operator over ``graph`` — the
    warm path used by the service registry; ``laziness`` is ignored when
    it is given, and results are bit-identical to cold construction.
    ``mode`` selects the estimator (see :data:`MEASUREMENT_MODES`):
    ``"uniform_start"`` reports the single hitting time of the uniform
    start (sentinel source ``-1``), ``"non_backtracking"`` the per-source
    hitting times of the Hashimoto walk measured on node occupancies.

    All sources are evolved as one chunked block through
    :meth:`~repro.core.operators.MarkovOperator.hitting_times`, with
    early-exit masking: rows whose distance has already fallen below
    ``epsilon`` stop being stepped, so the block shrinks as sources
    converge.  ``workers > 1`` shards the sources across the
    shared-memory process pool (:mod:`repro.core.parallel`) with
    bit-for-bit identical results.

    Returns a :class:`MixingTimeEstimate`; raises
    :class:`ConvergenceError` when *no* source converges within
    ``max_steps`` (partial results are attached to the error).
    """
    _check_mode(mode, laziness=laziness, operator=operator)
    run_policy = as_policy(policy, workers=workers, block_size=block_size)

    if mode == "uniform_start":
        if operator is None:
            operator = TransitionOperator(graph, laziness=laziness)
        uniform = np.full(
            (1, operator.num_states), 1.0 / operator.num_states, dtype=np.float64
        )
        result = operator.distribution_hitting_times(
            uniform, epsilon, max_steps=max_steps, policy=run_policy
        )
        times = result.times
        if np.all(times < 0):
            raise ConvergenceError(
                f"uniform start did not reach epsilon={epsilon} within {max_steps} steps",
                partial=times,
            )
        return MixingTimeEstimate(
            epsilon=float(epsilon),
            walk_length=int(times.max()),
            per_source=times,
            sources=np.array([-1], dtype=np.int64),
            exhaustive=False,
        )

    if sources is None or isinstance(sources, (int, np.integer)):
        source_ids = sample_sources(graph, None if sources is None else int(sources), seed=seed)
        exhaustive = sources is None
    else:
        source_ids = np.asarray(list(sources), dtype=np.int64)
        exhaustive = False
    if mode == "non_backtracking":
        from .nonbacktracking import non_backtracking_hitting_times

        times = non_backtracking_hitting_times(
            graph,
            source_ids,
            epsilon,
            max_steps=max_steps,
            operator=operator,
            policy=run_policy,
        ).times
    else:
        if operator is None:
            operator = TransitionOperator(graph, laziness=laziness)
        times = operator.hitting_times(
            source_ids,
            epsilon,
            max_steps=max_steps,
            policy=run_policy,
        ).times
    if np.all(times < 0):
        raise ConvergenceError(
            f"no source reached epsilon={epsilon} within {max_steps} steps",
            partial=times,
        )
    walk_length = int(times.max()) if np.all(times >= 0) else int(max_steps)
    return MixingTimeEstimate(
        epsilon=float(epsilon),
        walk_length=walk_length,
        per_source=times,
        sources=source_ids,
        exhaustive=exhaustive and source_ids.size == graph.num_nodes,
    )
