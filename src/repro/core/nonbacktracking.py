"""Non-backtracking (Hashimoto) walk measurement in arc space.

A non-backtracking walk never immediately reverses the edge it just
crossed: from the arc ``u -> v`` it steps to a uniformly random arc
``v -> w`` with ``w != u`` (when ``deg(v) = 1`` the walk has no choice
and backtracks).  Avena et al. (PAPERS.md) show these walks mix faster
than the simple random walk on sparse graphs — the backtracking terms
that dominate short-walk return probabilities vanish — which makes the
non-backtracking estimator a cheaper route to the paper's mixing-time
curves on the social graphs studied here.

State space.  The chain lives on the ``2m`` *directed edge slots* of the
CSR representation — exactly the arc tables the Sybil route engine
already memoises (:func:`repro.sybil.routes.arc_sources` /
:func:`repro.sybil.routes.reverse_slots`) — so the operator reuses those
read-only arrays instead of rebuilding arc indices.  The Hashimoto
transition matrix ``B`` has

    B[e, f] = 1 / (deg(dst(e)) - 1)   for arcs f leaving dst(e), f != rev(e)
    B[e, rev(e)] = 1                  when deg(dst(e)) = 1 (forced backtrack)

``B`` is doubly stochastic (every arc ``f = u -> v`` is entered from the
``deg(u) - 1`` arcs into ``u`` other than ``rev(f)``, each with
probability ``1/(deg(u)-1)`` — or from ``rev(f)`` alone when
``deg(u) = 1``), so its stationary distribution is uniform over arcs;
projecting arc mass onto arc *heads* recovers the familiar ``deg / 2m``
node stationary distribution of the simple walk.  Measurement therefore
happens in node space: evolve arc blocks with the same blocked SpMM as
every other operator (the backend seam applies unchanged — ``B`` is just
another CSR matrix), project each checkpoint onto nodes, and record TVD
against ``deg / 2m``.  A walk "started at node i" starts uniform over
the out-arcs of ``i``, matching the sampling definition of the walk.

Caveat: non-backtracking chains need cycles to mix — on a graph that is
exactly a cycle the chain is a deterministic rotation and never
converges.  :func:`non_backtracking_hitting_times` reports ``-1`` for
such sources exactly like the simple-walk path.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..graph import Graph
from ..obs import OBS
from .distances import total_variation_to_reference
from .operators import HittingTimes, MarkovOperator, resolve_block_size
from .runtime import ExecutionPolicy, as_policy

__all__ = [
    "NonBacktrackingOperator",
    "non_backtracking_curves",
    "non_backtracking_hitting_times",
]


def _concatenated_aranges(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]-1, 0..counts[1]-1, ...]`` without a Python loop."""
    total = int(counts.sum())
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets


class NonBacktrackingOperator(MarkovOperator):
    """The Hashimoto edge-space operator of an undirected graph.

    A full :class:`~repro.core.operators.MarkovOperator` over the ``2m``
    arc slots: all block evolution machinery (and every registered SpMM
    backend) applies verbatim because the operator is an ordinary CSR
    matrix.  The node-space helpers (:meth:`start_block`,
    :meth:`project_to_nodes`, :meth:`node_stationary`) translate between
    arc space and the node distributions the mixing measurement reports.
    """

    def __init__(self, graph: Graph):
        from scipy.sparse import csr_matrix

        from ..sybil.routes import arc_sources, reverse_slots

        if graph.num_nodes < 2:
            raise ConfigurationError(
                "non-backtracking operator needs at least two nodes"
            )
        deg = graph.degrees
        if np.any(deg == 0):
            raise ConfigurationError(
                "non-backtracking operator undefined with isolated nodes"
            )
        num_slots = int(graph.indices.size)  # 2m
        dst = graph.indices
        rev = reverse_slots(graph)
        # Row e: the walk sits on arc e = src -> dst and chooses among the
        # arcs leaving dst, excluding the reversal — unless dst is a leaf,
        # where reversal is forced.
        head_deg = deg[dst].astype(np.int64)
        counts = np.where(head_deg == 1, 1, head_deg - 1)
        candidates = (
            np.repeat(graph.indptr[dst].astype(np.int64), head_deg)
            + _concatenated_aranges(head_deg)
        )
        keep = (candidates != np.repeat(rev, head_deg)) | np.repeat(
            head_deg == 1, head_deg
        )
        indices = candidates[keep]
        indptr = np.concatenate(
            [np.zeros(1, dtype=np.int64), np.cumsum(counts, dtype=np.int64)]
        )
        data = np.repeat(1.0 / counts.astype(np.float64), counts)
        self._graph = graph
        self._arc_dst = dst
        self._arc_src = arc_sources(graph)
        self._matrix = csr_matrix(
            (data, indices, indptr), shape=(num_slots, num_slots)
        )
        self._projection = csr_matrix(
            (
                np.ones(num_slots, dtype=np.float64),
                dst.astype(np.int64),
                np.arange(num_slots + 1, dtype=np.int64),
            ),
            shape=(num_slots, graph.num_nodes),
        )
        self._init_operator(num_slots)
        if OBS.enabled:
            OBS.add("core.nonbacktracking.built")
            OBS.add("core.nonbacktracking.arcs", num_slots)

    # -- MarkovOperator surface -----------------------------------------
    def _compute_stationary(self) -> np.ndarray:
        # B is doubly stochastic: uniform over arcs.
        return np.full(self._num_states, 1.0 / self._num_states)

    # -- arc/node translation -------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying undirected graph."""
        return self._graph

    @property
    def num_arcs(self) -> int:
        """Number of directed edge slots (``2m``)."""
        return self._num_states

    def start_block(self, sources: Sequence[int]) -> np.ndarray:
        """``(s, 2m)`` block: row ``i`` uniform over out-arcs of source i.

        The arc-space image of "start a non-backtracking walk at node
        ``sources[i]``" — the first step is a uniformly random incident
        edge, with no reversal to exclude yet.
        """
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size == 0:
            raise ValueError("sources must be non-empty")
        n = self._graph.num_nodes
        if np.any(src < 0) or np.any(src >= n):
            raise IndexError(f"sources out of range for graph with {n} nodes")
        deg = self._graph.degrees
        indptr = self._graph.indptr
        block = np.zeros((src.size, self._num_states), dtype=np.float64)
        for i, node in enumerate(src):
            lo, hi = int(indptr[node]), int(indptr[node + 1])
            block[i, lo:hi] = 1.0 / deg[node]
        return block

    def project_to_nodes(self, block: np.ndarray) -> np.ndarray:
        """Collapse ``(s, 2m)`` arc mass onto arc heads: ``(s, n)``.

        ``out[i, v]`` is the probability the walk of row ``i`` currently
        *occupies* node ``v`` (the head of its current arc).
        """
        x = self._check_block(block)
        return np.asarray(x @ self._projection)

    def node_stationary(self) -> np.ndarray:
        """``deg / 2m`` — the node-space image of the uniform arc law."""
        deg = self._graph.degrees.astype(np.float64)
        return deg / deg.sum()


def _node_reference(
    operator: NonBacktrackingOperator, reference: Optional[np.ndarray]
) -> np.ndarray:
    if reference is None:
        return operator.node_stationary()
    ref = np.asarray(reference, dtype=np.float64)
    n = operator.graph.num_nodes
    if ref.shape != (n,):
        raise ValueError(f"reference must have shape ({n},), got {ref.shape}")
    return ref


def non_backtracking_curves(
    graph: Graph,
    sources: Sequence[int],
    walk_lengths: Sequence[int],
    *,
    reference: Optional[np.ndarray] = None,
    operator: Optional[NonBacktrackingOperator] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> np.ndarray:
    """Node-space TVD checkpoints for non-backtracking walks.

    The non-backtracking analogue of
    :meth:`~repro.core.operators.MarkovOperator.variation_curves`:
    ``out[i, j]`` is the TVD between ``deg/2m`` (or ``reference``) and
    the *node occupancy* of a non-backtracking walk of length
    ``walk_lengths[j]`` started at ``sources[i]``.  Arc blocks are
    chunked against the same memory budget as node blocks and stepped
    with the policy-selected SpMM backend.
    """
    lengths = np.asarray(walk_lengths, dtype=np.int64).ravel()
    if lengths.size == 0:
        raise ValueError("walk_lengths must be non-empty")
    if np.any(lengths < 0) or np.any(np.diff(lengths) <= 0):
        raise ValueError("walk_lengths must be strictly increasing and nonnegative")
    policy = as_policy(policy)
    op = operator if operator is not None else NonBacktrackingOperator(graph)
    src = np.asarray(sources, dtype=np.int64).ravel()
    ref = _node_reference(op, reference)
    chunk_rows = resolve_block_size(op.num_arcs, policy.block_size)
    apply_step = op._resolve_step(policy)
    if OBS.enabled:
        OBS.add("core.evolution.rows", src.size)
        OBS.add("core.evolution.steps", int(lengths[-1]) * src.size)
    max_len = int(lengths[-1])
    out = np.empty((src.size, lengths.size), dtype=np.float64)
    for lo in range(0, src.size, chunk_rows):
        chunk = src[lo:lo + chunk_rows]
        x = op.start_block(chunk)
        col = 0
        for t in range(max_len + 1):
            if col < lengths.size and lengths[col] == t:
                out[lo:lo + chunk.size, col] = total_variation_to_reference(
                    op.project_to_nodes(x), ref, validate=False
                )
                col += 1
            if t < max_len:
                x = apply_step(x)
    return out


def non_backtracking_hitting_times(
    graph: Graph,
    sources: Sequence[int],
    epsilon: float,
    *,
    max_steps: int = 10_000,
    reference: Optional[np.ndarray] = None,
    operator: Optional[NonBacktrackingOperator] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> HittingTimes:
    """Per-source node-space eps-hitting times of non-backtracking walks.

    Mirrors :meth:`~repro.core.operators.MarkovOperator.hitting_times`
    including early-exit masking (converged arc rows retire from the
    block); distances are measured on node occupancies against
    ``deg/2m``.  Sources whose walk never converges — e.g. on graphs
    that are close to pure cycles, where the non-backtracking chain is
    (nearly) periodic — get time ``-1``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ValueError("epsilon must be in (0, 1)")
    if max_steps < 0:
        raise ValueError("max_steps must be nonnegative")
    policy = as_policy(policy)
    op = operator if operator is not None else NonBacktrackingOperator(graph)
    src = np.asarray(sources, dtype=np.int64).ravel()
    ref = _node_reference(op, reference)
    chunk_rows = resolve_block_size(op.num_arcs, policy.block_size)
    apply_step = op._resolve_step(policy)
    if OBS.enabled:
        OBS.add("core.evolution.rows", src.size)
    times = np.full(src.size, -1, dtype=np.int64)
    final = np.empty(src.size, dtype=np.float64)
    for lo in range(0, src.size, chunk_rows):
        chunk = src[lo:lo + chunk_rows]
        x = op.start_block(chunk)
        active = np.arange(lo, lo + chunk.size, dtype=np.int64)
        dist = total_variation_to_reference(
            op.project_to_nodes(x), ref, validate=False
        )
        hit = dist < epsilon
        times[active[hit]] = 0
        final[active] = dist
        x = x[~hit]
        active = active[~hit]
        for t in range(1, max_steps + 1):
            if active.size == 0:
                break
            x = apply_step(x)
            if OBS.enabled:
                OBS.add("core.evolution.steps", active.size)
            dist = total_variation_to_reference(
                op.project_to_nodes(x), ref, validate=False
            )
            final[active] = dist
            hit = dist < epsilon
            if np.any(hit):
                times[active[hit]] = t
                x = x[~hit]
                active = active[~hit]
    return HittingTimes(times=times, final_distances=final)
