"""Unified Markov-operator layer with batched multi-source evolution.

Every random-walk variant in the reproduction — the plain simple random
walk (:class:`~repro.core.walks.TransitionOperator`), the teleporting
directed walk (:class:`~repro.core.directed.DirectedTransitionOperator`)
and the trust-weighted walk
(:class:`~repro.core.trust.WeightedTransitionOperator`) — is a
row-stochastic Markov operator evolved the same way: start from a
point-mass row vector, repeatedly right-multiply by ``P``, and record the
total variation distance to a reference distribution.  Historically each
operator reimplemented ``point_mass`` / ``step`` / ``evolve`` and its own
validation, with subtle drift between the copies, and every measurement
loop evolved one source at a time with 1-D sparse mat-vecs.

:class:`MarkovOperator` centralises all of that and adds the *block API*
that makes the paper's definition-based measurement (equation (2)) a
sparse-times-dense-block product instead of ``s`` independent mat-vec
loops:

* :meth:`MarkovOperator.point_mass_block` builds the ``(s, n)`` block of
  point masses for ``s`` sources;
* :meth:`MarkovOperator.step_block` advances a whole block one step
  (``X @ P``), dispatching to the subclass kernel
  :meth:`MarkovOperator._apply_block`;
* :meth:`MarkovOperator.variation_curves` records TVD-to-reference at
  requested walk-length checkpoints for every source, chunking the block
  so the dense buffer stays under a configurable memory budget;
* :meth:`MarkovOperator.hitting_times` computes per-source
  ``min { t : ||pi - pi^(i) P^t|| < eps }`` with early-exit masking —
  rows whose distance already fell below ``eps`` stop being stepped.

Block rows are bit-for-bit identical to sequential 1-D evolution (scipy's
CSR mat-vec accumulates in the same order either way), so batching changes
wall-clock time, never results; the property tests in
``tests/core/test_operators.py`` pin that invariant for all operators,
laziness settings and chunk boundaries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple, Optional, Sequence

import numpy as np

from .._util import check_node_index, check_probability_vector
from ..obs import OBS
from .distances import total_variation_to_reference
from .runtime import ExecutionPolicy, as_policy

__all__ = [
    "DEFAULT_BLOCK_BYTES",
    "HittingTimes",
    "MarkovOperator",
    "policy_block_bytes",
    "resolve_block_size",
]

#: Default memory budget for one dense ``(s, n)`` float64 evolution block.
#: The SpMM streams the whole block every step, so the block must fit in
#: cache, not merely in RAM: sweeping chunk sizes on the stand-in datasets
#: shows throughput collapsing once the block outgrows a few MiB (a
#: (1000, 10000) block — 80 MB — is ~5x slower per row than 16-row
#: chunks).  1 MiB lands in the 16-128 row sweet spot for every dataset
#: in the registry.
DEFAULT_BLOCK_BYTES: int = 1024 * 1024

#: Hard cap on rows per chunk: past this, wider blocks stop amortising
#: Python/scipy call overhead and only add memory pressure (tiny graphs
#: would otherwise get million-row chunks from the byte budget alone).
_MAX_BLOCK_ROWS: int = 1024


def resolve_block_size(
    num_states: int,
    block_size: Optional[int] = None,
    *,
    memory_budget_bytes: int = DEFAULT_BLOCK_BYTES,
) -> int:
    """Rows per evolution chunk.

    ``block_size=None`` sizes the chunk so one ``(s, n)`` float64 block
    stays under ``memory_budget_bytes`` (capped at ``1024`` rows, floored
    at ``1`` — a budget smaller than a single row still yields one row,
    never a zero-row chunk); an explicit positive ``block_size`` is
    honoured verbatim.  Degenerate inputs fail loudly instead of
    producing degenerate block shapes: ``num_states < 1`` (a chain with
    no states has no rows to chunk), non-positive or non-integral
    ``block_size`` overrides, and non-positive memory budgets all raise
    :class:`ValueError`.
    """
    num_states = int(num_states)
    if num_states < 1:
        raise ValueError(f"num_states must be a positive integer, got {num_states}")
    if block_size is not None:
        size = int(block_size)
        if size != block_size:
            raise ValueError(f"block_size must be an integer, got {block_size!r}")
        if size < 1:
            raise ValueError("block_size must be a positive integer")
        return size
    if memory_budget_bytes < 1:
        raise ValueError("memory_budget_bytes must be positive")
    rows = int(memory_budget_bytes) // (8 * num_states)
    return int(max(1, min(rows, _MAX_BLOCK_ROWS)))


def policy_block_bytes(policy: ExecutionPolicy) -> int:
    """Dense-block byte budget implied by one :class:`ExecutionPolicy`.

    Without a ``memory_budget`` this is the historical
    :data:`DEFAULT_BLOCK_BYTES`; with one, the dense ``(s, n)``
    evolution block gets half the budget (the other half belongs to the
    streaming backend's double-buffered stripes), floored at one row's
    worth so a tiny budget still makes progress.  Purely an execution
    decision — chunk boundaries are bit-for-bit neutral.
    """
    if policy.memory_budget is None:
        return DEFAULT_BLOCK_BYTES
    return max(policy.memory_budget // 2, 8)


class HittingTimes(NamedTuple):
    """Result of :meth:`MarkovOperator.hitting_times`.

    Attributes
    ----------
    times:
        Per-source first step count with distance below epsilon
        (``-1`` for sources that never converged within the budget).
    final_distances:
        The distance recorded when the row stopped being stepped: at the
        hitting time for converged rows, at ``max_steps`` otherwise.
    """

    times: np.ndarray
    final_distances: np.ndarray


class MarkovOperator(ABC):
    """Abstract row-stochastic operator with shared evolution machinery.

    Subclasses call :meth:`_init_operator` with the state count (and
    usually set ``self._matrix`` to a scipy CSR transition matrix, which
    the default :meth:`_apply_block` kernel uses).  Operators whose step
    is not a plain ``X @ P`` (e.g. teleporting chains) override
    :meth:`_apply_block` only — every public method funnels through it.
    """

    _num_states: int

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _init_operator(self, num_states: int) -> None:
        """Initialise shared state; must run before any evolution call."""
        self._num_states = int(num_states)
        self._stationary_cache: Optional[np.ndarray] = None
        self._backend_cache: dict = {}

    # ------------------------------------------------------------------
    # Abstract surface
    # ------------------------------------------------------------------
    @abstractmethod
    def _compute_stationary(self) -> np.ndarray:
        """Compute the stationary distribution (uncached)."""

    def _apply_block(self, block: np.ndarray) -> np.ndarray:
        """One unvalidated step of a ``(s, n)`` block: ``X @ P``.

        The default kernel multiplies by ``self._matrix``; subclasses with
        extra dynamics (teleporting, dangling mass) override this single
        method and inherit everything else.
        """
        return np.asarray(block @ self._matrix)

    def _resolve_step(self, policy: ExecutionPolicy):
        """The step kernel honouring ``policy.backend``.

        ``backend="numpy"`` (the default) — and *any* backend on an
        operator with a custom :meth:`_apply_block` (teleporting,
        dangling-mass dynamics the registry kernels cannot replicate
        from CSR arrays alone, mirroring
        :func:`repro.core.parallel.describe_operator`'s contract) —
        resolves to :meth:`_apply_block` itself: choosing the default
        backend changes nothing, bit-for-bit.  Other backends prepare a
        kernel over ``self._matrix`` once and memoise it per backend
        name on the operator.
        """
        name = policy.backend
        if (
            name == "numpy"
            or type(self)._apply_block is not MarkovOperator._apply_block
            or getattr(self, "_matrix", None) is None
        ):
            return self._apply_block
        cache = getattr(self, "_backend_cache", None)
        if cache is None:  # operators built before _init_operator grew the cache
            cache = self._backend_cache = {}
        key = (name, policy.memory_budget)
        step = cache.get(key)
        if step is None:
            from .backends import get_backend

            step = get_backend(name).prepare(
                self._matrix, memory_budget=policy.memory_budget
            )
            cache[key] = step
        return step

    # ------------------------------------------------------------------
    # Shared properties
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of chain states (= graph nodes)."""
        return self._num_states

    def stationary(self) -> np.ndarray:
        """The stationary distribution ``pi`` (memoised, read-only).

        The first call computes it (closed form for reversible chains,
        power iteration for directed ones); later calls return the cached
        vector.  The array is marked read-only so the cache cannot be
        corrupted through the returned reference.
        """
        if self._stationary_cache is None:
            pi = np.asarray(self._compute_stationary(), dtype=np.float64)
            pi.setflags(write=False)
            self._stationary_cache = pi
        return self._stationary_cache

    # ------------------------------------------------------------------
    # Unified validation (single source of truth for all operators)
    # ------------------------------------------------------------------
    def _check_vector(self, distribution: np.ndarray, *, name: str = "distribution") -> np.ndarray:
        """Shape/dtype gate for a single row distribution."""
        x = np.asarray(distribution, dtype=np.float64)
        if x.shape != (self._num_states,):
            raise ValueError(
                f"{name} must have shape ({self._num_states},), got {x.shape}"
            )
        return x

    def _check_block(self, block: np.ndarray, *, name: str = "block") -> np.ndarray:
        """Shape/dtype gate for an ``(s, n)`` block of row distributions."""
        x = np.asarray(block, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self._num_states:
            raise ValueError(
                f"{name} must have shape (s, {self._num_states}), got {x.shape}"
            )
        return x

    # ------------------------------------------------------------------
    # Point masses
    # ------------------------------------------------------------------
    def point_mass(self, node: int) -> np.ndarray:
        """The initial distribution pi^{(i)} concentrated at ``node``."""
        node = check_node_index(node, self._num_states)
        x = np.zeros(self._num_states, dtype=np.float64)
        x[node] = 1.0
        return x

    def point_mass_block(self, sources: Sequence[int]) -> np.ndarray:
        """The ``(s, n)`` block whose row ``i`` is a point mass at
        ``sources[i]`` — the batched starting state of equation (2)."""
        src = np.asarray(sources, dtype=np.int64).ravel()
        if src.size == 0:
            raise ValueError("sources must be non-empty")
        if np.any(src < 0) or np.any(src >= self._num_states):
            raise IndexError(
                f"sources out of range for operator with {self._num_states} states"
            )
        block = np.zeros((src.size, self._num_states), dtype=np.float64)
        block[np.arange(src.size), src] = 1.0
        return block

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step(self, distribution: np.ndarray) -> np.ndarray:
        """One step: returns ``x P`` for a row distribution ``x``."""
        x = self._check_vector(distribution)
        return self._apply_block(x[np.newaxis, :])[0]

    def step_block(self, block: np.ndarray) -> np.ndarray:
        """One step of a whole ``(s, n)`` block: ``X P``.

        Row ``i`` of the result is bit-for-bit what ``step`` would return
        for row ``i`` of the input — batching is a pure speed transform.
        """
        x = self._check_block(block)
        if OBS.enabled:
            OBS.add("core.step_block.calls")
            OBS.add("core.step_block.rows", x.shape[0])
        return self._apply_block(x)

    def evolve(self, distribution: np.ndarray, steps: int, *, validate: bool = True) -> np.ndarray:
        """The distribution after ``steps`` applications of P."""
        if steps < 0:
            raise ValueError("steps must be nonnegative")
        x = (
            check_probability_vector(distribution, name="distribution")
            if validate
            else self._check_vector(distribution)
        )
        block = x[np.newaxis, :]
        for _ in range(steps):
            block = self._apply_block(block)
        return block[0]

    def evolve_block(
        self,
        block: np.ndarray,
        steps: int,
        *,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """A whole block after ``steps`` applications of P.

        ``policy`` (an :class:`~repro.core.runtime.ExecutionPolicy`)
        steers execution: ``workers > 1`` shards the block's rows across
        the fault-tolerant process pool (rows are independent chains, so
        sharding is bit-for-bit neutral); the serial path runs whenever
        the pool is unavailable or pointless (see
        :mod:`repro.core.parallel`).  The bare ``workers=`` kwarg is a
        deprecated alias.
        """
        if steps < 0:
            raise ValueError("steps must be nonnegative")
        policy = as_policy(policy, workers=workers)
        x = self._check_block(block)
        with OBS.span(
            "core.evolve_block",
            operator=type(self).__name__,
            rows=int(x.shape[0]),
            steps=int(steps),
        ):
            if policy.workers is not None:
                from .parallel import maybe_parallel_evolve_block

                out = maybe_parallel_evolve_block(self, x, steps, policy=policy)
                if out is not None:
                    return out
            if OBS.enabled:
                OBS.add("core.evolution.rows", x.shape[0])
                OBS.add("core.evolution.steps", steps * x.shape[0])
            apply_step = self._resolve_step(policy)
            for _ in range(steps):
                x = apply_step(x)
            return x

    def trajectory(self, distribution: np.ndarray, steps: int, *, validate: bool = True) -> np.ndarray:
        """All intermediate distributions: shape ``(steps + 1, n)``.

        Row ``t`` is the distribution after ``t`` steps (row 0 is the
        input).  Memory is ``(steps + 1) * n`` floats — use
        :meth:`evolve` when only the endpoint matters.
        """
        if steps < 0:
            raise ValueError("steps must be nonnegative")
        x = (
            check_probability_vector(distribution, name="distribution")
            if validate
            else self._check_vector(distribution)
        )
        out = np.empty((steps + 1, self._num_states), dtype=np.float64)
        out[0] = x
        for t in range(1, steps + 1):
            out[t] = self._apply_block(out[t - 1][np.newaxis, :])[0]
        return out

    # ------------------------------------------------------------------
    # Batched measurement primitives (the Figure 3-7 hot path)
    # ------------------------------------------------------------------
    def variation_curve(
        self,
        source: int,
        max_steps: int,
        *,
        reference: Optional[np.ndarray] = None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """``curve[t] = || pi - pi^{(source)} P^t ||_1`` for t = 0..max_steps.

        ``reference`` defaults to :meth:`stationary`; pass a different
        distribution to measure against (the originator-biased study
        measures biased walks against the *plain* pi, for example).
        """
        if max_steps < 0:
            raise ValueError("max_steps must be nonnegative")
        policy = as_policy(policy, workers=workers)
        return self.variation_curves(
            [source], np.arange(max_steps + 1), reference=reference, policy=policy
        )[0]

    def variation_curves(
        self,
        sources: Sequence[int],
        walk_lengths: Sequence[int],
        *,
        reference: Optional[np.ndarray] = None,
        block_size: Optional[int] = None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """TVD to ``reference`` at each checkpoint for every source.

        Returns a ``(s, w)`` array with
        ``out[i, j] = || ref - pi^{(sources[i])} P^{walk_lengths[j]} ||_1``.
        Sources are evolved as one dense block per chunk (one SpMM per
        step advances the whole chunk), with the chunk size resolved via
        :func:`resolve_block_size` so the buffer respects the memory
        budget.  Execution is steered by ``policy`` (an
        :class:`~repro.core.runtime.ExecutionPolicy`): ``workers > 1``
        fans the chunks out across the fault-tolerant shared-memory pool
        (:mod:`repro.core.parallel`) with bit-for-bit identical,
        order-preserving results, and ``checkpoint_dir`` persists/
        resumes completed shards.  The bare ``workers=``/``block_size=``
        kwargs are deprecated aliases.
        """
        lengths = np.asarray(walk_lengths, dtype=np.int64).ravel()
        if lengths.size == 0:
            raise ValueError("walk_lengths must be non-empty")
        if np.any(lengths < 0) or np.any(np.diff(lengths) <= 0):
            raise ValueError("walk_lengths must be strictly increasing and nonnegative")
        policy = as_policy(policy, workers=workers, block_size=block_size)
        src = np.asarray(sources, dtype=np.int64).ravel()
        ref = self.stationary() if reference is None else self._check_vector(
            reference, name="reference"
        )
        with OBS.span(
            "core.variation_curves",
            operator=type(self).__name__,
            sources=int(src.size),
            checkpoints=int(lengths.size),
            max_walk=int(lengths[-1]),
        ) as span:
            if policy.workers is not None or policy.checkpoint_dir is not None:
                from .parallel import maybe_parallel_variation_curves

                out = maybe_parallel_variation_curves(
                    self, src, lengths, reference=ref, policy=policy
                )
                if out is not None:
                    return out
            chunk_rows = resolve_block_size(
                self._num_states,
                policy.block_size,
                memory_budget_bytes=policy_block_bytes(policy),
            )
            telemetry = OBS.enabled
            if telemetry:
                span.set(chunk_rows=int(chunk_rows), path="serial")
                OBS.add("core.evolution.rows", src.size)
                OBS.add("core.evolution.steps", int(lengths[-1]) * src.size)
                OBS.observe("core.evolution.chunk_rows", min(chunk_rows, src.size))
            max_len = int(lengths[-1])
            apply_step = self._resolve_step(policy)
            out = np.empty((src.size, lengths.size), dtype=np.float64)
            for lo in range(0, src.size, chunk_rows):
                chunk = src[lo:lo + chunk_rows]
                x = self.point_mass_block(chunk)
                col = 0
                for t in range(max_len + 1):
                    if col < lengths.size and lengths[col] == t:
                        out[lo:lo + chunk.size, col] = total_variation_to_reference(
                            x, ref, validate=False
                        )
                        if telemetry:
                            # Convergence trace: how far this chunk still is
                            # from the reference at each checkpoint.
                            d = out[lo:lo + chunk.size, col]
                            OBS.event(
                                "tvd_checkpoint",
                                step=t,
                                chunk_lo=int(lo),
                                rows=int(chunk.size),
                                mean_tvd=float(d.mean()),
                                max_tvd=float(d.max()),
                            )
                        col += 1
                    if t < max_len:
                        x = apply_step(x)
            return out

    def hitting_times(
        self,
        sources: Sequence[int],
        epsilon: float,
        *,
        max_steps: int = 10_000,
        reference: Optional[np.ndarray] = None,
        block_size: Optional[int] = None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> HittingTimes:
        """Per-source ``min { t : || ref - pi^{(i)} P^t ||_1 < eps }``.

        The batched analogue of the per-source hitting-time loop: each
        chunk is evolved as a block, and rows whose distance has already
        fallen below ``epsilon`` are *retired* from the block (early-exit
        masking), so the SpMM shrinks as sources converge.  Rows that
        never converge within ``max_steps`` get time ``-1``.
        ``workers > 1`` shards the sources across the shared-memory
        process pool (:mod:`repro.core.parallel`); early-exit masking
        then runs independently inside every worker, and the reassembled
        result is bit-for-bit equal to the serial one.
        """
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if max_steps < 0:
            raise ValueError("max_steps must be nonnegative")
        policy = as_policy(policy, workers=workers, block_size=block_size)
        src = np.asarray(sources, dtype=np.int64).ravel()
        ref = self.stationary() if reference is None else self._check_vector(
            reference, name="reference"
        )
        with OBS.span(
            "core.hitting_times",
            operator=type(self).__name__,
            sources=int(src.size),
            epsilon=float(epsilon),
            max_steps=int(max_steps),
        ) as span:
            if policy.workers is not None or policy.checkpoint_dir is not None:
                from .parallel import maybe_parallel_hitting_times

                out = maybe_parallel_hitting_times(
                    self,
                    src,
                    epsilon,
                    max_steps=max_steps,
                    reference=ref,
                    policy=policy,
                )
                if out is not None:
                    return out
            chunk_rows = resolve_block_size(
                self._num_states,
                policy.block_size,
                memory_budget_bytes=policy_block_bytes(policy),
            )
            telemetry = OBS.enabled
            if telemetry:
                span.set(chunk_rows=int(chunk_rows), path="serial")
                OBS.add("core.evolution.rows", src.size)
                OBS.observe("core.evolution.chunk_rows", min(chunk_rows, src.size))
            apply_step = self._resolve_step(policy)
            times = np.full(src.size, -1, dtype=np.int64)
            final = np.empty(src.size, dtype=np.float64)
            for lo in range(0, src.size, chunk_rows):
                chunk = src[lo:lo + chunk_rows]
                x = self.point_mass_block(chunk)
                # Positions (into the global result arrays) still being stepped.
                active = np.arange(lo, lo + chunk.size, dtype=np.int64)
                dist = total_variation_to_reference(x, ref, validate=False)
                hit = dist < epsilon
                times[active[hit]] = 0
                final[active] = dist
                x = x[~hit]
                active = active[~hit]
                last_t = 0
                for t in range(1, max_steps + 1):
                    if active.size == 0:
                        break
                    x = apply_step(x)
                    if telemetry:
                        OBS.add("core.evolution.steps", active.size)
                    dist = total_variation_to_reference(x, ref, validate=False)
                    final[active] = dist
                    hit = dist < epsilon
                    if np.any(hit):
                        if telemetry:
                            # Convergence trace: early-exit masking means
                            # the block shrinks; record every retirement.
                            OBS.event(
                                "rows_retired",
                                step=t,
                                chunk_lo=int(lo),
                                retired=int(hit.sum()),
                                still_active=int(active.size - hit.sum()),
                            )
                        times[active[hit]] = t
                        x = x[~hit]
                        active = active[~hit]
                    last_t = t
                if telemetry:
                    OBS.observe("core.hitting.steps_per_chunk", last_t)
                    OBS.add("core.hitting.unconverged_rows", int(active.size))
            return HittingTimes(times=times, final_distances=final)

    # ------------------------------------------------------------------
    # Distribution-start measurement (uniform-start / warm-start modes)
    # ------------------------------------------------------------------
    def distribution_variation_curves(
        self,
        block: np.ndarray,
        walk_lengths: Sequence[int],
        *,
        reference: Optional[np.ndarray] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """TVD checkpoints for walks started from *given* distributions.

        The generalisation of :meth:`variation_curves` from point masses
        to arbitrary initial rows — the primitive behind the
        uniform-start estimator ("start the walk at a uniformly random
        vertex" collapses ``s`` point-mass sweeps into evolving the one
        uniform row) and behind warm-started measurement generally.
        Rows are chunked exactly like the point-mass path and evolved
        with the policy-selected backend kernel; the sweep is serial by
        design (the callers pass a handful of rows, far below where the
        pool pays for itself).
        """
        lengths = np.asarray(walk_lengths, dtype=np.int64).ravel()
        if lengths.size == 0:
            raise ValueError("walk_lengths must be non-empty")
        if np.any(lengths < 0) or np.any(np.diff(lengths) <= 0):
            raise ValueError("walk_lengths must be strictly increasing and nonnegative")
        policy = policy if policy is not None else as_policy(None)
        x_all = self._check_block(block)
        ref = self.stationary() if reference is None else self._check_vector(
            reference, name="reference"
        )
        chunk_rows = resolve_block_size(
            self._num_states,
            policy.block_size,
            memory_budget_bytes=policy_block_bytes(policy),
        )
        apply_step = self._resolve_step(policy)
        if OBS.enabled:
            OBS.add("core.evolution.rows", x_all.shape[0])
            OBS.add("core.evolution.steps", int(lengths[-1]) * x_all.shape[0])
        max_len = int(lengths[-1])
        out = np.empty((x_all.shape[0], lengths.size), dtype=np.float64)
        for lo in range(0, x_all.shape[0], chunk_rows):
            x = x_all[lo:lo + chunk_rows].copy()
            col = 0
            for t in range(max_len + 1):
                if col < lengths.size and lengths[col] == t:
                    out[lo:lo + x.shape[0], col] = total_variation_to_reference(
                        x, ref, validate=False
                    )
                    col += 1
                if t < max_len:
                    x = apply_step(x)
        return out

    def distribution_hitting_times(
        self,
        block: np.ndarray,
        epsilon: float,
        *,
        max_steps: int = 10_000,
        reference: Optional[np.ndarray] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> HittingTimes:
        """Per-row ``min { t : || ref - x_i P^t ||_1 < eps }`` for given rows.

        The distribution-start analogue of :meth:`hitting_times`, with
        the same early-exit masking (converged rows retire from the
        block).  Rows that never converge within ``max_steps`` get time
        ``-1``.
        """
        if not 0.0 < epsilon < 1.0:
            raise ValueError("epsilon must be in (0, 1)")
        if max_steps < 0:
            raise ValueError("max_steps must be nonnegative")
        policy = policy if policy is not None else as_policy(None)
        x_all = self._check_block(block)
        ref = self.stationary() if reference is None else self._check_vector(
            reference, name="reference"
        )
        chunk_rows = resolve_block_size(
            self._num_states,
            policy.block_size,
            memory_budget_bytes=policy_block_bytes(policy),
        )
        apply_step = self._resolve_step(policy)
        num_rows = x_all.shape[0]
        if OBS.enabled:
            OBS.add("core.evolution.rows", num_rows)
        times = np.full(num_rows, -1, dtype=np.int64)
        final = np.empty(num_rows, dtype=np.float64)
        for lo in range(0, num_rows, chunk_rows):
            x = x_all[lo:lo + chunk_rows].copy()
            active = np.arange(lo, lo + x.shape[0], dtype=np.int64)
            dist = total_variation_to_reference(x, ref, validate=False)
            hit = dist < epsilon
            times[active[hit]] = 0
            final[active] = dist
            x = x[~hit]
            active = active[~hit]
            for t in range(1, max_steps + 1):
                if active.size == 0:
                    break
                x = apply_step(x)
                if OBS.enabled:
                    OBS.add("core.evolution.steps", active.size)
                dist = total_variation_to_reference(x, ref, validate=False)
                final[active] = dist
                hit = dist < epsilon
                if np.any(hit):
                    times[active[hit]] = t
                    x = x[~hit]
                    active = active[~hit]
        return HittingTimes(times=times, final_distances=final)
