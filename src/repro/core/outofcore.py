"""Out-of-core transition dynamics over memory-mapped graphs.

:class:`~repro.core.walks.TransitionOperator` normally materialises its
row-stochastic matrix ``P = alpha I + (1 - alpha) D^{-1} A`` as a scipy
CSR — an O(2m) float64 allocation that defeats the point of opening a
graph as a :class:`~repro.graph.storage.MemmapGraph`.  This module
provides :class:`StripedTransitionMatrix`, a lazy stand-in that derives
any *column stripe* of P's CSC form directly from the mapped CSR arrays
on demand:

* for the undirected walk, CSC column ``j`` of ``D^{-1} A`` has rows
  ``indices[indptr[j]:indptr[j+1]]`` (one contiguous mapped read) and
  values ``inv_deg[rows]`` — the exact float64 values scipy's
  construction produces, since ``np.repeat(inv_deg, degrees)`` stores
  ``inv_deg[row]`` verbatim and CSR→CSC conversion only permutes;
* laziness inserts the diagonal ``alpha`` into each column at its
  sorted row position and scales the rest by ``1 - alpha`` — the same
  two float64 operations scipy's ``alpha*I + (1-alpha)*P`` performs, so
  stripe values are bit-for-bit scipy's.

The ``streaming`` backend (:mod:`repro.core.backends`) consumes the
stripe protocol (``csc_indptr`` / ``csc_stripe``); the dense-block
``block @ matrix`` protocol is also implemented (via the same streaming
kernel), so the default ``numpy`` backend path works unchanged on
memory-mapped operators and produces identical bits.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import Graph
from .runtime import sweep_fingerprint

__all__ = ["StripedTransitionMatrix"]


class StripedTransitionMatrix:
    """Lazy ``P = alpha I + (1 - alpha) D^{-1} A`` over CSR arrays.

    Never holds more than O(n) derived state (inverse degrees, the lazy
    CSC indptr); matrix entries are synthesised per column stripe from
    the graph's (possibly memory-mapped) ``indptr`` / ``indices``.
    """

    #: Make ``ndarray @ striped`` defer to :meth:`__rmatmul__` instead of
    #: coercing this object into a dtype=object array.
    __array_ufunc__ = None
    __array_priority__ = 10.2

    ndim = 2

    def __init__(self, graph: Graph, *, laziness: float = 0.0):
        if not 0.0 <= laziness < 1.0:
            raise ValueError("laziness must be in [0, 1)")
        degrees = np.asarray(graph.degrees, dtype=np.int64)
        if degrees.size == 0 or np.any(degrees == 0):
            raise ValueError("transition matrix undefined with isolated nodes")
        self._graph = graph
        self._alpha = float(laziness)
        # Same expression as the in-memory construction — the stripe
        # values must be the very float64 numbers scipy would store.
        self._inv_deg = 1.0 / degrees.astype(np.float64)
        self._csc_indptr: Optional[np.ndarray] = None
        self._default_step = None
        self._dense_cache = None

    # ------------------------------------------------------------------
    # Matrix-protocol surface
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        n = self._graph.num_nodes
        return (n, n)

    @property
    def dtype(self):
        return np.dtype(np.float64)

    @property
    def nnz(self) -> int:
        extra = self._graph.num_nodes if self._alpha > 0.0 else 0
        return int(self._graph.indptr[-1]) + extra

    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def laziness(self) -> float:
        return self._alpha

    @property
    def path(self) -> Optional[str]:
        """Backing ``.csr`` container of the graph, when it has one.

        Non-``None`` is what lets the parallel layer publish this
        operator by *path* — workers re-map the container instead of
        copying 2m int64s into shared memory.
        """
        return getattr(self._graph, "path", None)

    @property
    def fingerprint(self) -> str:
        """Content identity for checkpoint/cache keys.

        Covers the graph's CSR fingerprint (cheap for container-backed
        graphs — the digest is recorded in the file header) plus the
        laziness, i.e. exactly the inputs the matrix is a pure function
        of.
        """
        memo = getattr(self._graph, "_memo", None)
        graph_key = memo.get("graph_fingerprint") if memo is not None else None
        if graph_key is None:
            graph_key = sweep_fingerprint(
                "service.graph", self._graph.indptr, self._graph.indices
            )
            if memo is not None:
                memo["graph_fingerprint"] = graph_key
        return sweep_fingerprint("core.striped_transition", graph_key, self._alpha)

    # ------------------------------------------------------------------
    # Stripe protocol (consumed by the streaming backend)
    # ------------------------------------------------------------------
    @property
    def csc_indptr(self) -> np.ndarray:
        """Column pointer of P's CSC form (O(n) in memory, computed once).

        P is symmetric in *structure* (not values), so the adjacency
        ``indptr`` is already the CSC pointer; laziness adds exactly one
        diagonal entry per column.
        """
        if self._csc_indptr is None:
            indptr = np.asarray(self._graph.indptr, dtype=np.int64)
            if self._alpha > 0.0:
                indptr = indptr + np.arange(indptr.shape[0], dtype=np.int64)
            self._csc_indptr = indptr
        return self._csc_indptr

    def csc_stripe(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise CSC columns ``[lo, hi)`` of P.

        Returns ``(local_indptr, rows, vals)`` with ``local_indptr[0] ==
        0``.  One contiguous read of the mapped ``indices`` plus O(stripe)
        compute; bit-for-bit the slice scipy's ``tocsc()`` would hold.
        """
        graph_indptr = self._graph.indptr
        s0, s1 = int(graph_indptr[lo]), int(graph_indptr[hi])
        rows = np.asarray(self._graph.indices[s0:s1], dtype=np.int64)
        local_indptr = np.asarray(graph_indptr[lo:hi + 1], dtype=np.int64) - s0
        alpha = self._alpha
        if alpha == 0.0:
            return local_indptr, rows, self._inv_deg[rows]
        vals = self._inv_deg[rows] * (1.0 - alpha)
        # Insert the diagonal alpha at each column's sorted row slot.
        # Entry k belongs to column `col_of[k]`; it precedes the diagonal
        # exactly when its row id is below the column id (no self loops,
        # so never equal).
        width = hi - lo
        col_of = np.repeat(
            np.arange(lo, hi, dtype=np.int64), np.diff(local_indptr)
        )
        below = rows < col_of
        before_diag = np.bincount(
            (col_of - lo)[below], minlength=width
        )
        insert_at = local_indptr[:-1] + before_diag
        rows_out = np.insert(rows, insert_at, np.arange(lo, hi, dtype=np.int64))
        vals_out = np.insert(vals, insert_at, alpha)
        local_out = local_indptr + np.arange(width + 1, dtype=np.int64)
        return local_out, rows_out, vals_out

    # ------------------------------------------------------------------
    # Dense-block product (the default numpy-backend path)
    # ------------------------------------------------------------------
    def __rmatmul__(self, block: np.ndarray) -> np.ndarray:
        """``block @ P`` via the streaming stripe kernel (default budget).

        Bit-for-bit equal to materialising P and letting scipy multiply
        — the streaming kernel reproduces scipy's per-column
        accumulation order exactly — so the default backend stays the
        oracle on memory-mapped operators too.
        """
        if self._default_step is None:
            from .backends import _prepare_streaming

            self._default_step = _prepare_streaming(self)
        x = np.asarray(block, dtype=np.float64)
        if x.ndim == 1:
            return self._default_step(x[np.newaxis, :])[0]
        return self._default_step(x)

    # ------------------------------------------------------------------
    # Materialisation escape hatches (small graphs / non-core backends)
    # ------------------------------------------------------------------
    def tocsr(self):
        """The matrix as an in-memory scipy CSR (O(2m) — small graphs only)."""
        if self._dense_cache is None:
            from scipy.sparse import csr_matrix, identity

            graph = self._graph
            n = graph.num_nodes
            indices = np.array(graph.indices, dtype=np.int64)
            indptr = np.array(graph.indptr, dtype=np.int64)
            data = np.repeat(self._inv_deg, np.asarray(graph.degrees))
            plain = csr_matrix((data, indices, indptr), shape=(n, n))
            if self._alpha > 0.0:
                lazy = (self._alpha * identity(n, format="csr")) + (
                    1.0 - self._alpha
                ) * plain
                self._dense_cache = lazy.tocsr()
            else:
                self._dense_cache = plain
        return self._dense_cache

    def tocsc(self):
        return self.tocsr().tocsc()

    @property
    def data(self):
        return self.tocsr().data

    @property
    def indices(self):
        return self.tocsr().indices

    @property
    def indptr(self):
        return self.tocsr().indptr

    def __repr__(self) -> str:
        n = self._graph.num_nodes
        return (
            f"StripedTransitionMatrix(n={n}, nnz={self.nnz}, "
            f"laziness={self._alpha}, path={self.path!r})"
        )
