"""Shared-memory process-pool runtime for multi-source sweeps.

The paper's definition-based measurement (equation (2)) is embarrassingly
parallel across sources: every row of a
:meth:`~repro.core.operators.MarkovOperator.variation_curves` /
:meth:`~repro.core.operators.MarkovOperator.hitting_times` /
:meth:`~repro.core.operators.MarkovOperator.evolve_block` call evolves an
independent chain.  PR 1 turned the per-source python loop into chunked
SpMM blocks; this module fans those blocks out across *processes* so a
1000-source sweep uses every core instead of one.

Design
------
* **Publish once, attach zero-copy.**  The operator's CSR arrays
  (``indptr``/``indices``/``data``), the reference (stationary) vector
  and — for teleporting chains — the dangling mask are packed into a
  single :mod:`multiprocessing.shared_memory` segment by
  :func:`publish_operator`.  Workers attach ``numpy`` views straight onto
  the segment (no pickling of the matrix, no per-worker copy) and
  rebuild a lightweight operator around them.
* **Same kernel, same numbers.**  Worker operators either inherit the
  base ``X @ P`` kernel or invoke
  ``DirectedTransitionOperator._apply_block`` *itself* on duck-typed
  state, so the arithmetic executed in a worker is the exact code the
  serial path runs.  Rows are independent, scipy's CSR SpMM accumulates
  each output row in a fixed order, and shards are reassembled in source
  order — parallel output is therefore **bit-for-bit identical** to the
  serial block path (``tests/core/test_parallel.py`` pins this for every
  operator flavour, worker count and chunk boundary).
* **Deterministic reassembly.**  Sources are sharded into contiguous
  ``np.array_split`` slices; ``Pool.map`` preserves task order, and the
  parent concatenates shard results positionally.  Scheduling order can
  vary; output order and values cannot.
* **Serial fallback.**  Every ``maybe_parallel_*`` entry point returns
  ``None`` — and the caller runs the proven serial path — when
  ``workers`` resolves to <= 1, the platform cannot ``fork`` (the pool
  relies on copy-on-write module state), shared memory is unavailable,
  ``REPRO_PARALLEL=0`` is set, or the operator carries a custom
  ``_apply_block`` this runtime does not know how to replicate.

The public surface for callers is the ``workers=`` keyword on the
:class:`~repro.core.operators.MarkovOperator` block APIs (and the
``--workers`` CLI flag / ``ExperimentConfig.workers`` knob above them);
the functions here are the runtime those keywords dispatch to.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import time
from typing import Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from ..obs import OBS
from .operators import HittingTimes, MarkovOperator, resolve_block_size
from .runtime import DEFAULT_POLICY, ExecutionPolicy, run_sharded, sweep_fingerprint

__all__ = [
    "OperatorPayload",
    "RoutePayload",
    "SharedOperatorHandle",
    "cleanup_published_segments",
    "describe_operator",
    "install_signal_cleanup",
    "maybe_parallel_evolve_block",
    "maybe_parallel_hitting_times",
    "maybe_parallel_originator_curves",
    "maybe_parallel_route_hits",
    "maybe_parallel_route_tails",
    "maybe_parallel_variation_curves",
    "parallel_backend_available",
    "pin_published_operator",
    "publish_operator",
    "publish_route_state",
    "resolve_workers",
    "unpin_published_operator",
]

#: Shards per worker: oversharding lets ``Pool.map`` rebalance uneven
#: per-source work (hitting times vary wildly across sources) while the
#: contiguous, order-preserving reassembly keeps results deterministic.
_OVERSHARD = 4

#: Byte alignment of each array inside the shared segment (cache line).
_ALIGN = 64

#: Environment kill-switch: ``REPRO_PARALLEL=0`` forces the serial path
#: everywhere without touching call sites (debugging, constrained CI).
_ENV_SWITCH = "REPRO_PARALLEL"


# ----------------------------------------------------------------------
# Worker-count resolution
# ----------------------------------------------------------------------
def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` request to a concrete process count.

    ``None``, ``0`` and ``1`` mean *serial* (no pool); ``-1`` means one
    worker per available core (``os.cpu_count()``); any other positive
    integer is honoured verbatim.  Values below ``-1`` raise.
    """
    if workers is None:
        return 1
    count = int(workers)
    if count == -1:
        return max(1, os.cpu_count() or 1)
    if count < 0:
        raise ValueError(f"workers must be >= -1, got {workers}")
    return max(1, count)


def parallel_backend_available() -> bool:
    """True when the fork + shared-memory runtime can be used here."""
    if os.environ.get(_ENV_SWITCH, "") == "0":
        return False
    try:
        import multiprocessing
        import multiprocessing.shared_memory  # noqa: F401  (probe import)
    except ImportError:  # pragma: no cover - stdlib always has these
        return False
    return "fork" in multiprocessing.get_all_start_methods()


def _fanout_available(policy: ExecutionPolicy) -> bool:
    """Whether this policy's execution mode can fan out at all.

    ``execution="threads"`` needs no fork and no shared memory — only
    the ``REPRO_PARALLEL=0`` kill-switch can veto it; ``"processes"``
    needs the full fork + shared-memory backend.
    """
    if policy.execution == "threads":
        return os.environ.get(_ENV_SWITCH, "") != "0"
    return parallel_backend_available()


# ----------------------------------------------------------------------
# Operator description (what gets published)
# ----------------------------------------------------------------------
def describe_operator(operator):
    """Classify an operator for worker-side reconstruction.

    Returns ``(kind, csr_matrix, extras)`` where ``kind`` is ``"csr"``
    (plain/lazy/weighted/pure-directed — the base ``X @ P`` kernel),
    ``"teleport"`` (damped/dangling directed chains) or ``"mmap"``
    (out-of-core operators over an on-disk ``.csr`` container, published
    by *path* rather than by copying arrays), or ``None`` when the
    operator's step cannot be replicated from its CSR arrays alone
    (unknown ``_apply_block`` override) — the caller then stays serial.
    """
    from scipy.sparse import issparse

    from .directed import DirectedTransitionOperator
    from .operators import MarkovOperator
    from .outofcore import StripedTransitionMatrix

    matrix = getattr(operator, "_matrix", None)
    if isinstance(matrix, StripedTransitionMatrix):
        # Out-of-core operator.  Publishable only when the backing graph
        # has an on-disk container workers can re-map (anonymous striped
        # matrices would force a full copy, defeating the point) and the
        # step is the base kernel (same rule as the CSR branch below).
        if (
            isinstance(operator, DirectedTransitionOperator)
            or type(operator)._apply_block is not MarkovOperator._apply_block
            or matrix.path is None
        ):
            return None
        return "mmap", matrix, {}
    if matrix is None or not issparse(matrix):
        return None
    matrix = matrix.tocsr()
    if isinstance(operator, DirectedTransitionOperator):
        if operator._teleporting:
            return (
                "teleport",
                matrix,
                {"damping": operator._damping, "dangling": operator._dangling},
            )
        return "csr", matrix, {}
    if type(operator)._apply_block is not MarkovOperator._apply_block:
        return None  # custom dynamics we cannot reproduce from CSR arrays
    return "csr", matrix, {}


# ----------------------------------------------------------------------
# Shared-memory publication (parent side)
# ----------------------------------------------------------------------
class _ArrayField(NamedTuple):
    name: str
    offset: int
    dtype: str
    shape: Tuple[int, ...]


class OperatorPayload(NamedTuple):
    """Picklable description of a published operator.

    Only this tiny tuple crosses the process boundary per task — the
    arrays themselves live in the named shared-memory segment.
    """

    kind: str  # "csr" | "teleport" | "originator" | "mmap"
    num_states: int
    shm_name: str
    fields: Tuple[_ArrayField, ...]
    damping: float = 1.0
    beta: float = 0.0
    #: ``"mmap"`` only: the on-disk ``.csr`` container workers re-map
    #: (instead of copying 2m int64s into the segment) and the laziness
    #: of the striped transition matrix rebuilt on top of it.
    path: Optional[str] = None
    alpha: float = 0.0


class RoutePayload(NamedTuple):
    """Picklable description of published random-route state.

    The segment carries the route engine's graph-derived arrays (arc
    sources + reverse-slot map, or a built ``next_slot`` table) plus any
    per-sweep state (pre-drawn start slots, node masks); instance seeds
    never cross the boundary as data — workers re-derive them from the
    root ``entropy`` via ``SeedSequence(entropy, spawn_key=(i,))``,
    which reconstructs ``root.spawn(n)[i]`` exactly.
    """

    kind: str  # "route_tails" | "route_hits"
    num_nodes: int
    shm_name: str
    fields: Tuple[_ArrayField, ...]
    entropy: object = None


class SharedOperatorHandle:
    """Owner of one published shared-memory segment (parent side).

    The parent creates it, fans tasks referencing ``payload`` out to the
    pool, and must :meth:`close` it afterwards (``with`` works too) —
    workers only ever attach; lifecycle belongs to the parent.
    """

    def __init__(self, payload: OperatorPayload, shm) -> None:
        self.payload = payload
        self._shm = shm
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        _unregister_segment(self._shm.name)
        try:
            self._shm.close()
        finally:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass

    def __enter__(self) -> "SharedOperatorHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Segment lifecycle: leak-proofing against interrupts
# ----------------------------------------------------------------------
# POSIX shared memory is kernel-persistent: a segment whose owner dies
# between publish and close survives in /dev/shm until reboot.  The
# ``with publish_operator(...)`` discipline covers exceptions, but not
# SIGTERM/SIGINT landing mid-sweep, and a long-lived *service* holding
# warm segments for minutes makes that window wide.  Every published
# segment is therefore tracked here, keyed by name and stamped with the
# publishing PID, and (a) an atexit hook unlinks leftovers on normal
# interpreter shutdown, (b) :func:`install_signal_cleanup` extends that
# to fatal signals.  The PID stamp is the fork guard: pool workers
# inherit this table (and any installed handlers), but they must never
# unlink the parent's live segments — cleanup skips entries it does not
# own.  (Workers also exit via ``os._exit``, skipping atexit, which is
# correct for the same reason.)

_SEGMENTS_LOCK = threading.Lock()
#: name -> (SharedMemory, owner pid)
_LIVE_SEGMENTS: Dict[str, Tuple[object, int]] = {}
_ATEXIT_INSTALLED = False
#: signum -> previous handler, for the handlers we installed in this PID.
_SIGNAL_PREVIOUS: Dict[int, object] = {}
_SIGNAL_OWNER_PID: Optional[int] = None


def _register_segment(shm) -> None:
    global _ATEXIT_INSTALLED
    with _SEGMENTS_LOCK:
        _LIVE_SEGMENTS[shm.name] = (shm, os.getpid())
        if not _ATEXIT_INSTALLED:
            atexit.register(cleanup_published_segments)
            _ATEXIT_INSTALLED = True


def _unregister_segment(name: str) -> None:
    with _SEGMENTS_LOCK:
        _LIVE_SEGMENTS.pop(name, None)


def cleanup_published_segments() -> int:
    """Close + unlink every live segment *published by this process*.

    Idempotent and safe to call from atexit or a signal handler; returns
    the number of segments reclaimed.  Segments registered by another
    PID (i.e. inherited across ``fork`` by a pool worker) are left
    alone — their owner's cleanup handles them.
    """
    pid = os.getpid()
    with _SEGMENTS_LOCK:
        mine = [
            name
            for name, (_shm, owner) in _LIVE_SEGMENTS.items()
            if owner == pid
        ]
        entries = [(name, _LIVE_SEGMENTS.pop(name)[0]) for name in mine]
    reclaimed = 0
    for _name, shm in entries:
        try:
            shm.close()
        except (OSError, ValueError):  # pragma: no cover - already closed
            pass
        try:
            shm.unlink()
            reclaimed += 1
        except FileNotFoundError:
            pass
    return reclaimed


def _signal_cleanup_handler(signum, frame):
    # Only the installing process acts; a forked child that inherited
    # this handler chains straight to the previous disposition.
    if os.getpid() == _SIGNAL_OWNER_PID:
        cleanup_published_segments()
    previous = _SIGNAL_PREVIOUS.get(signum, signal.SIG_DFL)
    if callable(previous):
        previous(signum, frame)
        return
    # Re-deliver under the default disposition so the exit status still
    # says "killed by signal" (what supervisors and shells expect).
    signal.signal(signum, signal.SIG_DFL)
    os.kill(os.getpid(), signum)


def install_signal_cleanup(signums: Tuple[int, ...] = (signal.SIGTERM,)) -> None:
    """Unlink live segments when a fatal signal lands (then die normally).

    Call once from long-running entry points (the CLI does, including
    ``repro-mixing serve``); installing from a non-main thread is a
    no-op because CPython only allows signal handlers on the main
    thread.  Handlers chain to whatever was installed before.
    """
    global _SIGNAL_OWNER_PID
    if threading.current_thread() is not threading.main_thread():
        return
    _SIGNAL_OWNER_PID = os.getpid()
    for signum in signums:
        current = signal.getsignal(signum)
        if current is _signal_cleanup_handler:
            continue
        _SIGNAL_PREVIOUS[signum] = current
        signal.signal(signum, _signal_cleanup_handler)


# ----------------------------------------------------------------------
# Pinned operators: the registry-aware warm path
# ----------------------------------------------------------------------
# A batch sweep publishes its operator, fans out, and unlinks — correct
# for one-shot runs, wasteful for a service answering many requests
# against the same graph: every request would re-pack the CSR arrays
# into a fresh segment.  The service's OperatorRegistry instead *pins*
# the publication: the segment stays live across requests and
# ``maybe_parallel_*`` sweeps check the pin table before publishing.
# Pins are keyed by the identity of the operator's CSR matrix (the
# object the registry keeps alive for exactly as long as the pin, so id
# reuse cannot alias) and record the published reference vector; a sweep
# reuses the pin only when its reference *is* that vector — true for
# default-reference sweeps because operators memoise ``stationary()``.

_PINS_LOCK = threading.Lock()
#: id(csr matrix) -> (matrix strong ref, reference, handle)
_PINNED: Dict[int, Tuple[object, Optional[np.ndarray], SharedOperatorHandle]] = {}


def pin_published_operator(operator, reference=None) -> Optional[SharedOperatorHandle]:
    """Publish ``operator`` once and keep the segment warm until unpinned.

    ``reference`` defaults to the operator's stationary distribution —
    the vector every default sweep passes.  Returns the owning handle,
    or ``None`` when the operator is not publishable (unknown type) or
    the parallel backend is unavailable; callers treat ``None`` as
    "serial-only environment" and proceed (sweeps just skip the warm
    path).  Pinning the same operator twice returns the existing handle.
    """
    if not parallel_backend_available():
        return None
    described = describe_operator(operator)
    if described is None:
        return None
    kind, matrix, extras = described
    if reference is None:
        reference = operator.stationary()
    with _PINS_LOCK:
        pinned = _PINNED.get(id(matrix))
        if pinned is not None:
            return pinned[2]
        handle = publish_operator(kind, matrix, reference, **extras)
        _PINNED[id(matrix)] = (matrix, reference, handle)
    if OBS.enabled:
        OBS.add("parallel.pins")
    return handle


def unpin_published_operator(operator) -> bool:
    """Drop the pin for ``operator`` and unlink its segment.

    Returns whether a pin existed.  Safe to call for never-pinned
    operators (the registry calls it unconditionally on eviction).
    """
    described = describe_operator(operator)
    if described is None:
        return False
    _kind, matrix, _extras = described
    with _PINS_LOCK:
        pinned = _PINNED.pop(id(matrix), None)
    if pinned is None:
        return False
    pinned[2].close()
    if OBS.enabled:
        OBS.add("parallel.unpins")
    return True


class _LeasedPublication:
    """Context manager: a pinned segment if one matches, else a fresh one.

    The sweep wrappers use this in place of ``with publish_operator(...)``:
    exit closes (unlinks) the segment only when this sweep published it —
    pinned segments outlive the sweep by design.
    """

    __slots__ = ("_handle", "_owned")

    def __init__(self, kind, matrix, extras, reference) -> None:
        with _PINS_LOCK:
            pinned = _PINNED.get(id(matrix))
            if pinned is not None and pinned[1] is reference:
                self._handle = pinned[2]
                self._owned = False
                if OBS.enabled:
                    OBS.add("parallel.pinned_publish_hits")
                return
        self._handle = publish_operator(kind, matrix, reference, **extras)
        self._owned = True

    def __enter__(self) -> SharedOperatorHandle:
        return self._handle

    def __exit__(self, *exc) -> None:
        if self._owned:
            self._handle.close()


def _copy_fields(
    shm, fields: List[_ArrayField], named: List[Tuple[str, np.ndarray]]
) -> None:
    """Copy each source array into its slot inside the shared segment.

    Module-level (rather than inlined in :func:`publish_operator`) so the
    leak-safety tests can monkeypatch it to fail and assert the segment
    is unlinked on the error path.
    """
    for field, (_name, array) in zip(fields, named):
        view = np.ndarray(
            field.shape, dtype=np.dtype(field.dtype), buffer=shm.buf, offset=field.offset
        )
        view[...] = array


def _layout_fields(
    named: List[Tuple[str, np.ndarray]],
) -> Tuple[List[_ArrayField], int]:
    """Back-to-back cache-line-aligned layout for a list of arrays."""
    fields: List[_ArrayField] = []
    offset = 0
    for name, array in named:
        offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
        fields.append(_ArrayField(name, offset, array.dtype.str, array.shape))
        offset += array.nbytes
    return fields, offset


def publish_operator(
    kind: str,
    matrix,
    reference: Optional[np.ndarray] = None,
    *,
    damping: float = 1.0,
    dangling: Optional[np.ndarray] = None,
    beta: float = 0.0,
) -> SharedOperatorHandle:
    """Pack CSR arrays (+ reference / dangling mask) into one segment.

    Arrays are laid out back-to-back at cache-line alignment; the
    returned handle's :attr:`~SharedOperatorHandle.payload` records the
    layout so workers can rebuild zero-copy views.

    Exception-safe: if anything after segment creation fails (the copy,
    payload assembly, …) the segment is closed **and unlinked** before
    the exception propagates, so a failed publish never leaves a stray
    ``/dev/shm`` entry behind (``tests/core/test_parallel_safety.py``).
    """
    from multiprocessing import shared_memory

    publish_start = time.perf_counter() if OBS.enabled else 0.0

    named: List[Tuple[str, np.ndarray]] = []
    path = None
    alpha = 0.0
    if kind == "mmap":
        # Path-based publication: workers re-map the on-disk container,
        # so the segment carries only the sweep's reference vector.
        path = matrix.path
        alpha = float(matrix.laziness)
    else:
        named.extend(
            [
                ("data", np.ascontiguousarray(matrix.data)),
                ("indices", np.ascontiguousarray(matrix.indices)),
                ("indptr", np.ascontiguousarray(matrix.indptr)),
            ]
        )
    if reference is not None:
        named.append(("reference", np.ascontiguousarray(reference)))
    if dangling is not None:
        named.append(("dangling", np.ascontiguousarray(dangling)))

    fields, offset = _layout_fields(named)
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        _copy_fields(shm, fields, named)
        payload = OperatorPayload(
            kind=kind,
            num_states=int(matrix.shape[0]),
            shm_name=shm.name,
            fields=tuple(fields),
            damping=float(damping),
            beta=float(beta),
            path=path,
            alpha=alpha,
        )
        handle = SharedOperatorHandle(payload, shm)
        _register_segment(shm)
    except BaseException:
        # Never leak the segment: close our mapping and unlink the name.
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        raise
    if OBS.enabled:
        OBS.add("parallel.publishes")
        OBS.add("parallel.publish_bytes", int(shm.size))
        OBS.observe("parallel.publish_seconds", time.perf_counter() - publish_start)
    return handle


def publish_route_state(
    kind: str,
    named: List[Tuple[str, np.ndarray]],
    *,
    num_nodes: int,
    entropy=None,
) -> SharedOperatorHandle:
    """Pack route-engine arrays into one shared segment.

    The route analogue of :func:`publish_operator`: same segment format
    (back-to-back cache-line-aligned arrays described by
    ``_ArrayField`` records), same exception-safe unlink-on-failure
    contract, same single-publish-per-sweep lifecycle — only the payload
    type differs (:class:`RoutePayload` carries the root seed entropy so
    workers can rebuild per-instance tables without shipping them).
    """
    from multiprocessing import shared_memory

    publish_start = time.perf_counter() if OBS.enabled else 0.0
    named = [(name, np.ascontiguousarray(array)) for name, array in named]
    fields, offset = _layout_fields(named)
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    try:
        _copy_fields(shm, fields, named)
        payload = RoutePayload(
            kind=kind,
            num_nodes=int(num_nodes),
            shm_name=shm.name,
            fields=tuple(fields),
            entropy=entropy,
        )
        handle = SharedOperatorHandle(payload, shm)
        _register_segment(shm)
    except BaseException:
        # Never leak the segment: close our mapping and unlink the name.
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        raise
    if OBS.enabled:
        OBS.add("parallel.publishes")
        OBS.add("parallel.publish_bytes", int(shm.size))
        OBS.observe("parallel.publish_seconds", time.perf_counter() - publish_start)
    return handle


# ----------------------------------------------------------------------
# Worker-side attachment and reconstruction
# ----------------------------------------------------------------------
#: Per-worker cache: segment name -> (shm, views, reconstruction cache).
#: A pool worker serves many shards of the same sweep; attaching once
#: per worker keeps the zero-copy promise.
_ATTACHED: Dict[str, Tuple[object, Dict[str, np.ndarray], dict]] = {}

#: Seconds the most recent :func:`_attach` in *this process* spent
#: mapping the segment (0.0 when it hit the cache).  Read by
#: :func:`_timed_task` so per-worker attach latency travels back to the
#: parent alongside task results without a second IPC channel.
_ATTACH_SECONDS_PENDING = 0.0


def _build_views(shm, fields: Tuple[_ArrayField, ...]) -> Dict[str, np.ndarray]:
    """Rebuild the read-only zero-copy array views over an attached segment.

    Module-level so the leak-safety tests can monkeypatch it to fail and
    assert the worker-side mapping is closed on the error path.
    """
    views: Dict[str, np.ndarray] = {}
    for field in fields:
        view = np.ndarray(
            field.shape, dtype=np.dtype(field.dtype), buffer=shm.buf, offset=field.offset
        )
        view.flags.writeable = False  # shared state is sacrosanct
        views[field.name] = view
    return views


def _attach(payload: OperatorPayload):
    global _ATTACH_SECONDS_PENDING
    entry = _ATTACHED.get(payload.shm_name)
    if entry is None:
        from multiprocessing import shared_memory

        attach_start = time.perf_counter()
        shm = shared_memory.SharedMemory(name=payload.shm_name)
        # No resource-tracker bookkeeping here: fork workers inherit the
        # parent's tracker, whose cache is a *set* — the attach-side
        # registration collapses into the parent's create-side one, and
        # the parent's unlink() retires it exactly once.  (An explicit
        # unregister per worker would over-remove and make the tracker
        # print KeyError noise at shutdown.)
        try:
            views = _build_views(shm, payload.fields)
        except BaseException:
            # Close this process's mapping; unlinking stays the parent's
            # job (other workers may still be attached to the name).
            shm.close()
            raise
        entry = (shm, views, {})
        _ATTACHED[payload.shm_name] = entry
        _ATTACH_SECONDS_PENDING = time.perf_counter() - attach_start
    else:
        _ATTACH_SECONDS_PENDING = 0.0
    return entry


class _SharedCSROperator(MarkovOperator):
    """Worker-side stand-in built on shared-memory CSR views.

    Deliberately *not* constructed through any graph class — it owns the
    minimal state the :class:`~repro.core.operators.MarkovOperator`
    machinery needs and borrows that machinery wholesale (the inherited
    ``X @ P`` kernel, chunking, early-exit masking), so a worker
    executes the very same code path as the serial parent.
    """

    def __init__(self, matrix) -> None:
        self._init_operator(matrix.shape[0])
        self._matrix = matrix

    def _compute_stationary(self):  # pragma: no cover - guarded
        raise RuntimeError(
            "worker operators require an explicit reference distribution"
        )


class _SharedTeleportOperator(_SharedCSROperator):
    """Worker-side teleporting chain.

    ``_apply_block`` delegates to ``DirectedTransitionOperator``'s own
    method on duck-typed state — the teleport arithmetic cannot drift
    from the serial implementation because it *is* the serial
    implementation.
    """

    def __init__(self, matrix, damping: float, dangling: np.ndarray) -> None:
        super().__init__(matrix)
        self._damping = float(damping)
        self._dangling = dangling
        self._teleporting = True

    def _apply_block(self, block: np.ndarray) -> np.ndarray:
        from .directed import DirectedTransitionOperator

        return DirectedTransitionOperator._apply_block(self, block)


def _worker_operator(payload: OperatorPayload):
    """Rebuild (and memoise) the operator inside a pool worker."""
    _shm, views, cache = _attach(payload)
    operator = cache.get("operator")
    if operator is None:
        if payload.kind == "mmap":
            # Re-map the container instead of attaching CSR copies: the
            # kernel-shared page cache means N workers walking the same
            # stripes cost one set of physical pages, not N.
            from ..graph.storage import open_csr
            from .outofcore import StripedTransitionMatrix

            graph = open_csr(payload.path)
            operator = _SharedCSROperator(
                StripedTransitionMatrix(graph, laziness=payload.alpha)
            )
            cache["operator"] = operator
            return operator, views.get("reference")
        from scipy.sparse import csr_matrix

        n = payload.num_states
        matrix = csr_matrix(
            (views["data"], views["indices"], views["indptr"]), shape=(n, n)
        )
        if payload.kind == "teleport":
            operator = _SharedTeleportOperator(
                matrix, payload.damping, views["dangling"]
            )
        else:
            operator = _SharedCSROperator(matrix)
        cache["operator"] = operator
    return operator, views.get("reference")


# ----------------------------------------------------------------------
# Worker task functions (must be module-level for pickling)
# ----------------------------------------------------------------------
def _curves_task(args) -> np.ndarray:
    payload, sources, lengths, block_size, backend, memory_budget = args
    operator, reference = _worker_operator(payload)
    return operator.variation_curves(
        sources,
        lengths,
        reference=reference,
        policy=ExecutionPolicy(
            block_size=block_size, backend=backend, memory_budget=memory_budget
        ),
    )


def _hitting_task(args) -> Tuple[np.ndarray, np.ndarray]:
    payload, sources, epsilon, max_steps, block_size, backend, memory_budget = args
    operator, reference = _worker_operator(payload)
    result = operator.hitting_times(
        sources,
        epsilon,
        max_steps=max_steps,
        reference=reference,
        policy=ExecutionPolicy(
            block_size=block_size, backend=backend, memory_budget=memory_budget
        ),
    )
    return result.times, result.final_distances


def _evolve_task(args) -> np.ndarray:
    payload, block, steps, backend, memory_budget = args
    operator, _reference = _worker_operator(payload)
    return operator.evolve_block(
        block,
        steps,
        policy=ExecutionPolicy(backend=backend, memory_budget=memory_budget),
    )


def _originator_task(args) -> np.ndarray:
    payload, sources, lengths, block_size = args
    from .trust import _originator_curves_chunks

    operator, reference = _worker_operator(payload)
    return _originator_curves_chunks(
        operator._matrix, reference, sources, payload.beta, lengths, block_size
    )


def _route_tails_task(args) -> np.ndarray:
    """Tails for one contiguous instance shard (worker side).

    Attaches the published route state and runs the *same*
    ``advance_route_shard`` kernel the serial fallback uses — tables are
    rebuilt from the root entropy, start slots come pre-drawn from the
    parent (so the rng stream is consumed exactly once, in the parent,
    in instance order), and the result is the shard's
    ``(nodes, hi - lo, lengths)`` tail cube.
    """
    payload, instance_lo, instance_hi, lengths, block_size = args
    from ..sybil.routes import advance_route_shard

    _shm, views, _cache = _attach(payload)
    return advance_route_shard(
        views["src"],
        views["rev"],
        payload.num_nodes,
        payload.entropy,
        instance_lo,
        instance_hi,
        views["starts"][instance_lo:instance_hi],
        lengths,
        block_size,
    )


def _route_hits_task(args) -> np.ndarray:
    """Node-intersection scan for one contiguous slot shard (worker side)."""
    payload, slot_lo, slot_hi, length = args
    from ..sybil.sybilguard import route_hit_scan

    _shm, views, _cache = _attach(payload)
    return route_hit_scan(
        views["table"],
        views["indices"],
        views["src"],
        views["mask"],
        slot_lo,
        slot_hi,
        length,
    )


# ----------------------------------------------------------------------
# Parent-side fan-out
# ----------------------------------------------------------------------
#: Registry of the picklable worker task functions, keyed by sweep kind.
#: :func:`_run_tasks` uses the key both to pick the function and to tag
#: per-task telemetry, so the instrumented path and the bare path call
#: the *same* module-level functions.
_TASK_FNS = {
    "curves": _curves_task,
    "hitting": _hitting_task,
    "evolve": _evolve_task,
    "originator": _originator_task,
    "route_tails": _route_tails_task,
    "route_hits": _route_hits_task,
}


def _timed_task(args):
    """Telemetry wrapper executed *inside* a pool worker.

    Only dispatched when the parent has telemetry enabled (the fork
    inherits ``OBS.enabled``, but worker-side registries die with the
    child — so we ship the few scalars the parent wants back alongside
    the result instead).  Returns
    ``(elapsed_seconds, attach_seconds, worker_pid, result)``.
    """
    key, inner = args
    start = time.perf_counter()
    result = _TASK_FNS[key](inner)
    elapsed = time.perf_counter() - start
    return elapsed, _ATTACH_SECONDS_PENDING, os.getpid(), result


def _policy_knobs(
    policy: Optional[ExecutionPolicy],
    workers: Optional[int],
    block_size: Optional[int],
) -> Tuple[ExecutionPolicy, Optional[int], Optional[int]]:
    """Resolve the ``(policy, workers, block_size)`` triple.

    The ``maybe_parallel_*`` entry points accept either an explicit
    :class:`~repro.core.runtime.ExecutionPolicy` (which wins, and whose
    ``workers``/``block_size`` fields are unpacked) or the bare legacy
    knobs (kept un-deprecated at this internal layer — the public APIs
    own the deprecation story via :func:`repro.core.runtime.as_policy`).
    """
    if policy is None:
        return DEFAULT_POLICY, workers, block_size
    return policy, policy.workers, policy.block_size


def _note_parallel_path(workers: int, shards: int) -> None:
    """Tag the enclosing operator span (if any) as having gone parallel."""
    if not OBS.enabled:
        return
    span = OBS.current_span()
    if span is not None:
        span.set(path="parallel", workers=int(workers), shards=int(shards))


def _shard(sources: np.ndarray, workers: int) -> List[np.ndarray]:
    count = min(sources.size, workers * _OVERSHARD)
    shards = [s for s in np.array_split(sources, count)]
    if OBS.enabled:
        for s in shards:
            OBS.observe("parallel.shard_rows", s.size)
    return shards


def _effective_workers(workers: Optional[int], num_rows: int) -> int:
    return min(resolve_workers(workers), max(num_rows, 0))


def _operator_fingerprint(
    sweep: str, kind: str, matrix, extras: dict, reference, *parts, backend="numpy"
) -> str:
    """Content-addressed identity of one operator sweep (checkpoint key).

    Hashes the CSR arrays, the operator's extra dynamics (damping /
    dangling mask / originator bias) and the sweep parameters — but not
    ``workers``/``block_size``/``execution``, to which results are
    pinned invariant.  ``backend`` follows the same rule *conditionally*:
    float64 backends are bit-identical to the oracle, so they share the
    oracle's fingerprint (a checkpoint taken under one resumes under
    another); a non-exact numeric (float32) genuinely changes the
    numbers, so its numeric tag joins the hash and its checkpoints never
    masquerade as float64 results.
    """
    from .backends import backend_numeric

    numeric = backend_numeric(backend)
    extra_parts = () if numeric == "float64" else (f"numeric:{numeric}",)
    content = getattr(matrix, "fingerprint", None)
    if content is not None:
        # Out-of-core matrices carry a content digest (graph fingerprint
        # + laziness) — hashing it stands in for streaming 2m int64s off
        # disk.  Scipy matrices keep the original array hash so existing
        # checkpoints stay valid.
        matrix_parts: Tuple[object, ...] = (content,)
    else:
        matrix_parts = (matrix.data, matrix.indices, matrix.indptr)
    return sweep_fingerprint(
        sweep,
        kind,
        *matrix_parts,
        tuple(int(v) for v in matrix.shape),
        float(extras.get("damping", 1.0)),
        extras.get("dangling"),
        float(extras.get("beta", 0.0)),
        reference,
        *parts,
        *extra_parts,
    )


def maybe_parallel_variation_curves(
    operator,
    sources: np.ndarray,
    walk_lengths: np.ndarray,
    *,
    reference: np.ndarray,
    workers: Optional[int] = None,
    block_size: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[np.ndarray]:
    """Fan a validated ``variation_curves`` call out to a pool.

    Returns the assembled ``(s, w)`` array, or ``None`` when the serial
    path should run instead (see module docstring for the fallback
    rules).  Inputs are assumed validated by the calling operator.
    With ``policy.checkpoint_dir`` set the sweep is checkpointed (and
    resumed) per shard, even when the pool itself is unavailable.
    """
    policy, workers, block_size = _policy_knobs(policy, workers, block_size)
    count = _effective_workers(workers, sources.size)
    threads = policy.execution == "threads"
    use_pool = count > 1 and _fanout_available(policy)
    if (not use_pool and policy.checkpoint_dir is None) or sources.size == 0:
        return None
    described = describe_operator(operator)
    if described is None:
        return None
    kind, matrix, extras = described
    fingerprint = None
    if policy.checkpoint_dir is not None:
        fingerprint = _operator_fingerprint(
            "curves",
            kind,
            matrix,
            extras,
            reference,
            sources,
            walk_lengths,
            backend=policy.backend,
        )

    def serial_run(lo: int, hi: int) -> np.ndarray:
        return operator.variation_curves(
            sources[lo:hi],
            walk_lengths,
            reference=reference,
            policy=ExecutionPolicy(
                block_size=block_size,
                backend=policy.backend,
                memory_budget=policy.memory_budget,
            ),
        )

    if use_pool and not threads:
        with _LeasedPublication(kind, matrix, extras, reference) as handle:
            payload = handle.payload

            def make_task(lo: int, hi: int):
                return (
                    payload,
                    sources[lo:hi],
                    walk_lengths,
                    block_size,
                    policy.backend,
                    policy.memory_budget,
                )

            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
            parts = run_sharded(
                kind="curves",
                total=int(sources.size),
                policy=policy,
                workers=count,
                make_task=make_task,
                serial_run=serial_run,
                fingerprint=fingerprint,
                use_pool=True,
                overshard=_OVERSHARD,
            )
    else:
        # Thread mode needs no publication — shards call the in-process
        # serial kernel directly; run_sharded routes to the thread pool.
        if use_pool:
            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
        parts = run_sharded(
            kind="curves",
            total=int(sources.size),
            policy=policy,
            workers=count if use_pool else 1,
            make_task=None,
            serial_run=serial_run,
            fingerprint=fingerprint,
            use_pool=use_pool,
            overshard=_OVERSHARD,
        )
    return np.concatenate(parts, axis=0)


def maybe_parallel_hitting_times(
    operator,
    sources: np.ndarray,
    epsilon: float,
    *,
    max_steps: int,
    reference: np.ndarray,
    workers: Optional[int] = None,
    block_size: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[HittingTimes]:
    """Parallel analogue of :func:`maybe_parallel_variation_curves` for
    per-source hitting times (early-exit masking runs inside each
    worker, exactly as in the serial chunks)."""
    policy, workers, block_size = _policy_knobs(policy, workers, block_size)
    count = _effective_workers(workers, sources.size)
    threads = policy.execution == "threads"
    use_pool = count > 1 and _fanout_available(policy)
    if (not use_pool and policy.checkpoint_dir is None) or sources.size == 0:
        return None
    described = describe_operator(operator)
    if described is None:
        return None
    kind, matrix, extras = described
    fingerprint = None
    if policy.checkpoint_dir is not None:
        fingerprint = _operator_fingerprint(
            "hitting",
            kind,
            matrix,
            extras,
            reference,
            sources,
            float(epsilon),
            int(max_steps),
            backend=policy.backend,
        )

    def serial_run(lo: int, hi: int):
        result = operator.hitting_times(
            sources[lo:hi],
            epsilon,
            max_steps=max_steps,
            reference=reference,
            policy=ExecutionPolicy(
                block_size=block_size,
                backend=policy.backend,
                memory_budget=policy.memory_budget,
            ),
        )
        return result.times, result.final_distances

    if use_pool and not threads:
        with _LeasedPublication(kind, matrix, extras, reference) as handle:
            payload = handle.payload

            def make_task(lo: int, hi: int):
                return (
                    payload,
                    sources[lo:hi],
                    epsilon,
                    max_steps,
                    block_size,
                    policy.backend,
                    policy.memory_budget,
                )

            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
            parts = run_sharded(
                kind="hitting",
                total=int(sources.size),
                policy=policy,
                workers=count,
                make_task=make_task,
                serial_run=serial_run,
                fingerprint=fingerprint,
                use_pool=True,
                overshard=_OVERSHARD,
            )
    else:
        if use_pool:
            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
        parts = run_sharded(
            kind="hitting",
            total=int(sources.size),
            policy=policy,
            workers=count if use_pool else 1,
            make_task=None,
            serial_run=serial_run,
            fingerprint=fingerprint,
            use_pool=use_pool,
            overshard=_OVERSHARD,
        )
    times = np.concatenate([p[0] for p in parts])
    final = np.concatenate([p[1] for p in parts])
    return HittingTimes(times=times, final_distances=final)


def maybe_parallel_evolve_block(
    operator,
    block: np.ndarray,
    steps: int,
    *,
    workers: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[np.ndarray]:
    """Shard a dense ``(s, n)`` block row-wise across the pool.

    Rows are independent chains, so splitting/reassembling rows is
    bit-for-bit neutral; the block rows themselves travel by pickle (a
    one-off cost the ``steps`` SpMMs amortise) while the operator rides
    shared memory.
    """
    policy, workers, _block_size = _policy_knobs(policy, workers, None)
    count = _effective_workers(workers, block.shape[0])
    threads = policy.execution == "threads"
    if count <= 1 or steps == 0 or not _fanout_available(policy):
        # No checkpoint-only path here: evolve blocks are usually one
        # iteration of a larger loop (e.g. SybilRank), so their content
        # changes every call and a content-addressed checkpoint would
        # never be revisited.
        return None
    described = describe_operator(operator)
    if described is None:
        return None
    kind, matrix, extras = described

    def serial_run(lo: int, hi: int) -> np.ndarray:
        return operator.evolve_block(
            block[lo:hi],
            steps,
            policy=ExecutionPolicy(
                backend=policy.backend, memory_budget=policy.memory_budget
            ),
        )

    if threads:
        _note_parallel_path(count, min(int(block.shape[0]), count * _OVERSHARD))
        parts = run_sharded(
            kind="evolve",
            total=int(block.shape[0]),
            policy=policy,
            workers=count,
            make_task=None,
            serial_run=serial_run,
            fingerprint=None,
            use_pool=True,
            overshard=_OVERSHARD,
        )
        return np.concatenate(parts, axis=0)

    with publish_operator(kind, matrix, None, **extras) as handle:
        payload = handle.payload

        def make_task(lo: int, hi: int):
            return (payload, block[lo:hi], steps, policy.backend, policy.memory_budget)

        _note_parallel_path(count, min(int(block.shape[0]), count * _OVERSHARD))
        parts = run_sharded(
            kind="evolve",
            total=int(block.shape[0]),
            policy=policy,
            workers=count,
            make_task=make_task,
            serial_run=serial_run,
            fingerprint=None,
            use_pool=True,
            overshard=_OVERSHARD,
        )
    return np.concatenate(parts, axis=0)


def maybe_parallel_originator_curves(
    matrix,
    reference: np.ndarray,
    sources: np.ndarray,
    beta: float,
    walk_lengths: np.ndarray,
    *,
    workers: Optional[int] = None,
    block_size: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[np.ndarray]:
    """Fan the originator-biased trust sweep out to the pool.

    The biased chain is per-source (each row jumps back to *its own*
    originator), so the payload carries ``beta`` and each worker runs
    the shared chunk kernel from :mod:`repro.core.trust` on its shard.
    """
    policy, workers, block_size = _policy_knobs(policy, workers, block_size)
    count = _effective_workers(workers, sources.size)
    threads = policy.execution == "threads"
    use_pool = count > 1 and _fanout_available(policy)
    if (not use_pool and policy.checkpoint_dir is None) or sources.size == 0:
        return None
    chunk_rows = resolve_block_size(matrix.shape[0], block_size)
    fingerprint = None
    if policy.checkpoint_dir is not None:
        fingerprint = _operator_fingerprint(
            "originator",
            "originator",
            matrix,
            {"beta": float(beta)},
            reference,
            sources,
            walk_lengths,
        )

    def serial_run(lo: int, hi: int) -> np.ndarray:
        from .trust import _originator_curves_chunks

        return _originator_curves_chunks(
            matrix, reference, sources[lo:hi], beta, walk_lengths, chunk_rows
        )

    if use_pool and not threads:
        with publish_operator("originator", matrix, reference, beta=beta) as handle:
            payload = handle.payload

            def make_task(lo: int, hi: int):
                return (payload, sources[lo:hi], walk_lengths, chunk_rows)

            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
            parts = run_sharded(
                kind="originator",
                total=int(sources.size),
                policy=policy,
                workers=count,
                make_task=make_task,
                serial_run=serial_run,
                fingerprint=fingerprint,
                use_pool=True,
                overshard=_OVERSHARD,
            )
    else:
        if use_pool:
            _note_parallel_path(count, min(sources.size, count * _OVERSHARD))
        parts = run_sharded(
            kind="originator",
            total=int(sources.size),
            policy=policy,
            workers=count if use_pool else 1,
            make_task=None,
            serial_run=serial_run,
            fingerprint=fingerprint,
            use_pool=use_pool,
            overshard=_OVERSHARD,
        )
    return np.concatenate(parts, axis=0)


def maybe_parallel_route_tails(
    routes,
    starts: np.ndarray,
    lengths: np.ndarray,
    *,
    workers: Optional[int] = None,
    block_size: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[np.ndarray]:
    """Fan a route tail sweep out across instance shards.

    The parent pre-draws every instance's start slots (``starts`` is the
    full ``(r, nodes)`` table, preserving the serial rng stream) and
    publishes them alongside the graph-derived ``src``/``rev`` arrays;
    each worker rebuilds its instances' tables from the root entropy and
    steps them with the shared blocked kernel.  Shards are contiguous
    instance ranges reassembled positionally along the instance axis, so
    the output is bit-for-bit the serial blocked result.  Returns
    ``None`` for the usual serial-fallback reasons.  The checkpoint key
    hashes the arc arrays, root entropy, pre-drawn starts and lengths,
    so SybilLimit admission sweeps resume without replaying a draw.
    """
    policy, workers, block_size = _policy_knobs(policy, workers, block_size)
    num_instances = int(starts.shape[0])
    count = _effective_workers(workers, num_instances)
    threads = policy.execution == "threads"
    use_pool = count > 1 and _fanout_available(policy)
    if (not use_pool and policy.checkpoint_dir is None) or num_instances == 0:
        return None
    from ..sybil.routes import advance_route_shard, arc_sources, reverse_slots

    graph = routes.graph
    src = arc_sources(graph)
    rev = reverse_slots(graph)
    entropy = routes._entropy
    fingerprint = None
    if policy.checkpoint_dir is not None:
        fingerprint = sweep_fingerprint(
            "route_tails", src, rev, int(graph.num_nodes), entropy, starts, lengths
        )

    def serial_run(lo: int, hi: int) -> np.ndarray:
        return advance_route_shard(
            src,
            rev,
            graph.num_nodes,
            entropy,
            lo,
            hi,
            starts[lo:hi],
            lengths,
            block_size,
        )

    if use_pool and not threads:
        named = [("src", src), ("rev", rev), ("starts", starts)]
        with publish_route_state(
            "route_tails", named, num_nodes=graph.num_nodes, entropy=entropy
        ) as handle:
            payload = handle.payload

            def make_task(lo: int, hi: int):
                return (payload, lo, hi, lengths, block_size)

            _note_parallel_path(count, min(num_instances, count * _OVERSHARD))
            parts = run_sharded(
                kind="route_tails",
                total=num_instances,
                policy=policy,
                workers=count,
                make_task=make_task,
                serial_run=serial_run,
                fingerprint=fingerprint,
                use_pool=True,
                overshard=_OVERSHARD,
            )
    else:
        if use_pool:
            _note_parallel_path(count, min(num_instances, count * _OVERSHARD))
        parts = run_sharded(
            kind="route_tails",
            total=num_instances,
            policy=policy,
            workers=count if use_pool else 1,
            make_task=None,
            serial_run=serial_run,
            fingerprint=fingerprint,
            use_pool=use_pool,
            overshard=_OVERSHARD,
        )
    return np.concatenate(parts, axis=1)


def maybe_parallel_route_hits(
    table: np.ndarray,
    indices: np.ndarray,
    src: np.ndarray,
    mask: np.ndarray,
    length: int,
    *,
    workers: Optional[int] = None,
    policy: Optional[ExecutionPolicy] = None,
) -> Optional[np.ndarray]:
    """Fan SybilGuard's per-slot node-intersection scan across the pool.

    Shards the ``2m`` directed slots contiguously; every worker advances
    its shard through the *same* published ``next_slot`` table and ORs
    node hits stepwise (``repro.sybil.sybilguard.route_hit_scan``).
    Reassembly is positional, the scan is branch-free boolean algebra —
    parallel output is bit-for-bit the serial scan.  (No checkpoint
    path: the scan is an inner per-length loop, cheap relative to the
    tail sweeps that feed it.)
    """
    policy, workers, _block_size = _policy_knobs(policy, workers, None)
    num_slots = int(table.shape[0])
    count = _effective_workers(workers, num_slots)
    if count <= 1 or not _fanout_available(policy):
        return None
    from ..sybil.sybilguard import route_hit_scan

    def serial_run(lo: int, hi: int) -> np.ndarray:
        return route_hit_scan(table, indices, src, mask, lo, hi, int(length))

    if policy.execution == "threads":
        _note_parallel_path(count, min(num_slots, count * _OVERSHARD))
        return np.concatenate(
            run_sharded(
                kind="route_hits",
                total=num_slots,
                policy=policy,
                workers=count,
                make_task=None,
                serial_run=serial_run,
                fingerprint=None,
                use_pool=True,
                overshard=_OVERSHARD,
            )
        )

    named = [
        ("table", table),
        ("indices", indices),
        ("src", src),
        ("mask", mask),
    ]
    with publish_route_state("route_hits", named, num_nodes=mask.shape[0]) as handle:
        payload = handle.payload

        def make_task(lo: int, hi: int):
            return (payload, lo, hi, int(length))

        _note_parallel_path(count, min(num_slots, count * _OVERSHARD))
        parts = run_sharded(
            kind="route_hits",
            total=num_slots,
            policy=policy,
            workers=count,
            make_task=make_task,
            serial_run=serial_run,
            fingerprint=None,
            use_pool=True,
            overshard=_OVERSHARD,
        )
    return np.concatenate(parts)
