"""Fault-tolerant sharded execution: :class:`ExecutionPolicy`, retries,
per-shard timeouts, serial degradation and checkpoint/resume.

The paper's headline numbers come from hour-scale sweeps — 1000-source
TVD curves (equation (2)) and SybilLimit admission sweeps over hundreds
of route lengths.  The PR-2 shared-memory pool fans those sweeps out
across processes, but a single SIGKILLed worker (OOM killer, preempted
container) used to lose the whole run, and the knobs steering the
runtime (``workers=``, ``block_size=``) had sprawled as ad-hoc kwargs
across every call site.  This module fixes both:

* :class:`ExecutionPolicy` is the single object that carries every
  execution knob — worker count, chunk size, retry budget, per-shard
  timeout, checkpoint directory — and is accepted as ``policy=`` by all
  block APIs, sweeps and Sybil runners.  The legacy ``workers=`` /
  ``block_size=`` kwargs keep working as deprecated aliases
  (:func:`as_policy` maps them onto a policy and emits a
  ``DeprecationWarning``).
* :func:`run_sharded` is the fault-tolerant executor the
  ``maybe_parallel_*`` entry points (:mod:`repro.core.parallel`) drive:
  failed shards (dead worker, timeout, unpicklable exception) are
  retried up to ``max_retries`` times with exponential backoff on a
  rebuilt pool, and any shard still failing afterwards is **degraded to
  in-process serial execution** — the sweep completes with output
  bit-identical to the serial path, or raises; partial results are
  never returned.
* :class:`CheckpointStore` persists completed shard results under a
  content-addressed key (graph/operator fingerprint + sweep parameters
  + seed entropy, via :func:`sweep_fingerprint`), each shard written
  atomically (temp file + ``os.replace``) with an embedded integrity
  digest.  Interrupted sweeps resume by recomputing only the missing
  row ranges; because every row of a sweep is an independent chain (the
  invariant pinned since PR 1), resumed output is bit-identical to an
  uninterrupted run regardless of how shard boundaries shifted.  A
  checkpoint that fails validation raises
  :class:`~repro.errors.CheckpointCorruption` — never silently wrong
  numbers.

Fault injection (tests / CI only)
---------------------------------
``REPRO_FAULT_INJECT=<mode>:<shard>`` makes the pool worker executing
shard ``<shard>`` misbehave: ``crash`` SIGKILLs the worker process,
``timeout`` sleeps past the shard deadline, ``raise`` throws a
retryable exception, and ``abort`` raises an error the parent treats as
an interruption (used to exercise checkpoint/resume).  With
``REPRO_FAULT_INJECT_STATE=<path>`` the fault fires exactly once (the
first process to create the state file claims it), so a retry then
succeeds; without it the fault repeats and the shard ends up on the
serial-degradation path.  Injection only ever happens inside pool
workers — the in-process serial path never injects, so degradation is
guaranteed to terminate.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import CheckpointCorruption, ConfigurationError, RuntimeFailure
from ..obs import OBS
from .backends import DEFAULT_BACKEND, validate_backend

__all__ = [
    "DEFAULT_POLICY",
    "CheckpointStore",
    "ExecutionPolicy",
    "as_policy",
    "run_sharded",
    "sweep_fingerprint",
]

#: Base of the exponential retry backoff (seconds): round ``k`` of
#: retries sleeps ``_BACKOFF_BASE * 2**(k-1)`` before rebuilding the
#: pool.  Module-level so tests can zero it.
_BACKOFF_BASE = 0.05

#: Environment hooks for fault injection (see module docstring).
_FAULT_ENV = "REPRO_FAULT_INJECT"
_FAULT_STATE_ENV = "REPRO_FAULT_INJECT_STATE"
_FAULT_SLEEP_ENV = "REPRO_FAULT_INJECT_SLEEP"

_CHECKPOINT_SCHEMA = "repro.runtime.checkpoint/v1"


# ----------------------------------------------------------------------
# ExecutionPolicy: the one object that carries every execution knob
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecutionPolicy:
    """How a sweep executes — never *what* it computes.

    Every knob here is bit-for-bit neutral: results are pinned identical
    across worker counts, shard boundaries, chunk sizes, retries,
    degradation and checkpoint resume, so a policy can be changed freely
    between (or during) runs without perturbing any number.

    Attributes
    ----------
    workers:
        Process count for the shared-memory pool.  ``None``/``0``/``1``
        stay serial, ``-1`` uses every core.
    block_size:
        Rows per dense evolution chunk (``None`` → sized from the
        operator layer's memory budget).
    max_retries:
        How many times a failed shard (dead worker, timeout, worker
        exception) is retried on a rebuilt pool before it is degraded to
        in-process serial execution.
    shard_timeout:
        Seconds the parent waits on one shard before declaring it a
        straggler and re-dispatching (``None`` → wait forever; worker
        *death* is still detected immediately).
    checkpoint_dir:
        Directory for content-addressed sweep checkpoints; ``None``
        disables checkpointing.  Sweeps sharing a directory never
        collide — the key hashes the operator, parameters and seed
        entropy.
    resume:
        When true (default) a checkpointed sweep skips shards already
        on disk; when false existing checkpoints for this sweep are
        discarded and recomputed.
    telemetry:
        Convenience mirror of ``ExperimentConfig.telemetry`` for
        policy-first callers: the experiment harness/CLI enable the
        process-wide :data:`repro.obs.OBS` registry when set.  The
        numeric layers ignore it (telemetry is process-global and
        provably inert).
    backend:
        Name of the SpMM kernel serving the blocked ``X @ P`` hot path
        (see :mod:`repro.core.backends`).  ``"numpy"`` (default) and
        every other float64 backend are bit-for-bit neutral — the
        differential harness pins them against the oracle — so like the
        other knobs they never enter checkpoint fingerprints;
        ``"float32"`` trades a pinned error envelope for bandwidth and
        therefore *does* perturb results (its sweeps fingerprint and
        cache separately).  Unknown names fail here, at construction.
    execution:
        ``"processes"`` (default) fans shards out across the PR-2
        fork + shared-memory pool; ``"threads"`` runs the same shards on
        a thread pool calling the in-process serial kernel directly — no
        fork, no publish, no pickling, same bits (numpy releases the GIL
        inside the SpMM).  Threads win on small sweeps where the pool's
        startup overhead dominates.
    memory_budget:
        Bytes of working memory one sweep may hold at a time.  ``None``
        (default) keeps the historical behaviour (dense blocks sized
        from the operator layer's 1 MiB default).  When set, dense
        evolution chunks are sized to half the budget and the
        ``streaming`` backend sizes its CSR stripes from the remainder,
        so a sweep over a memory-mapped graph whose CSR exceeds RAM
        stays inside the ceiling.  Like every other field this is an
        execution knob: any budget produces bit-for-bit the same numbers
        and never enters checkpoint fingerprints.
    """

    workers: Optional[int] = None
    block_size: Optional[int] = None
    max_retries: int = 2
    shard_timeout: Optional[float] = None
    checkpoint_dir: Optional[str] = None
    resume: bool = True
    telemetry: bool = False
    backend: str = DEFAULT_BACKEND
    execution: str = "processes"
    memory_budget: Optional[int] = None

    def __post_init__(self):
        w = self.workers
        if w is not None:
            if isinstance(w, bool) or not isinstance(w, (int, np.integer)):
                raise ConfigurationError(
                    f"workers must be an integer, got {w!r} ({type(w).__name__})"
                )
            if w < -1:
                raise ConfigurationError(f"workers must be >= -1, got {w}")
        b = self.block_size
        if b is not None:
            if isinstance(b, bool) or not isinstance(b, (int, np.integer)) or b < 1:
                raise ConfigurationError(
                    f"block_size must be a positive integer, got {b!r}"
                )
        r = self.max_retries
        if isinstance(r, bool) or not isinstance(r, (int, np.integer)) or r < 0:
            raise ConfigurationError(
                f"max_retries must be a nonnegative integer, got {r!r}"
            )
        t = self.shard_timeout
        if t is not None:
            try:
                t = float(t)
            except (TypeError, ValueError):
                raise ConfigurationError(
                    f"shard_timeout must be a positive number of seconds, got {t!r}"
                ) from None
            if not t > 0.0:
                raise ConfigurationError(
                    f"shard_timeout must be a positive number of seconds, got {t!r}"
                )
            object.__setattr__(self, "shard_timeout", t)
        if self.checkpoint_dir is not None:
            # Accept Path objects but store a plain string: policies end
            # up inside JSON run manifests via dataclasses.asdict.
            object.__setattr__(self, "checkpoint_dir", os.fspath(self.checkpoint_dir))
        validate_backend(self.backend)
        if self.execution not in ("processes", "threads"):
            raise ConfigurationError(
                f"execution must be 'processes' or 'threads', got {self.execution!r}"
            )
        mb = self.memory_budget
        if mb is not None:
            if isinstance(mb, bool) or not isinstance(mb, (int, np.integer)) or mb < 1:
                raise ConfigurationError(
                    f"memory_budget must be a positive byte count, got {mb!r}"
                )
            object.__setattr__(self, "memory_budget", int(mb))


#: The policy every API uses when the caller passes nothing: serial,
#: auto-sized chunks, no checkpointing.  Shared singleton so the hot
#: paths can test ``policy is DEFAULT_POLICY`` without allocation.
DEFAULT_POLICY = ExecutionPolicy()


def as_policy(
    policy: Optional[ExecutionPolicy] = None,
    *,
    workers: Optional[int] = None,
    block_size: Optional[int] = None,
    stacklevel: int = 3,
) -> ExecutionPolicy:
    """Merge the ``policy=`` kwarg with the deprecated legacy aliases.

    * ``policy`` given, legacy kwargs absent → the policy, verbatim.
    * legacy ``workers=``/``block_size=`` given → a one-off policy
      wrapping them, plus a ``DeprecationWarning`` pointing at the call
      site (``stacklevel`` hops up).
    * both given → :class:`~repro.errors.ConfigurationError`; silently
      preferring one over the other would make the other a no-op.
    * neither given → :data:`DEFAULT_POLICY`.
    """
    if policy is not None:
        if not isinstance(policy, ExecutionPolicy):
            raise ConfigurationError(
                f"policy must be an ExecutionPolicy, got {type(policy).__name__}"
            )
        if workers is not None or block_size is not None:
            raise ConfigurationError(
                "pass either policy= or the legacy workers=/block_size= kwargs, "
                "not both (the legacy kwargs are deprecated aliases)"
            )
        return policy
    if workers is None and block_size is None:
        return DEFAULT_POLICY
    warnings.warn(
        "the workers=/block_size= kwargs are deprecated; pass "
        "policy=repro.ExecutionPolicy(workers=..., block_size=...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return ExecutionPolicy(workers=workers, block_size=block_size)


# ----------------------------------------------------------------------
# Fault injection (test/CI hooks; inert unless the env vars are set)
# ----------------------------------------------------------------------
class InjectedFault(RuntimeError):
    """A deliberately injected, *retryable* worker failure."""


class InjectedAbort(RuntimeError):
    """A deliberately injected interruption: the parent stops the sweep
    (after persisting completed shards) instead of retrying."""


def _parse_fault_spec() -> Optional[Tuple[str, int]]:
    raw = os.environ.get(_FAULT_ENV, "").strip()
    if not raw:
        return None
    mode, _, index = raw.partition(":")
    try:
        return mode.strip(), int(index)
    except ValueError:
        return None  # malformed spec: ignore rather than kill real runs


def _claim_fault_once() -> bool:
    """True when this process wins the right to inject the fault.

    ``REPRO_FAULT_INJECT_STATE`` names a claim file created with
    ``O_CREAT | O_EXCL``: exactly one process across all retries ever
    succeeds, giving crash-*once* semantics.  With no state file the
    fault fires every time the shard index matches.
    """
    path = os.environ.get(_FAULT_STATE_ENV)
    if not path:
        return True
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def maybe_inject_fault(shard_index: int) -> None:
    """Misbehave on purpose when the environment asks for it.

    Called only from inside pool workers (:func:`_worker_shard`); the
    serial path never injects, so serial degradation always terminates.
    """
    spec = _parse_fault_spec()
    if spec is None:
        return
    mode, target = spec
    if shard_index != target or not _claim_fault_once():
        return
    if mode == "crash":
        os.kill(os.getpid(), signal.SIGKILL)
    elif mode == "timeout":
        time.sleep(float(os.environ.get(_FAULT_SLEEP_ENV, "30.0")))
    elif mode == "raise":
        raise InjectedFault(f"injected worker failure in shard {shard_index}")
    elif mode == "abort":
        raise InjectedAbort(f"injected interruption in shard {shard_index}")


# ----------------------------------------------------------------------
# Content-addressed sweep fingerprints
# ----------------------------------------------------------------------
def _hash_part(h, obj) -> None:
    """Feed one object into the digest with an unambiguous type tag."""
    if obj is None:
        h.update(b"\x00N")
    elif isinstance(obj, np.ndarray):
        a = np.ascontiguousarray(obj)
        h.update(f"\x00nd:{a.dtype.str}:{a.shape}:".encode())
        h.update(a.tobytes())
    elif isinstance(obj, (bytes, bytearray)):
        h.update(b"\x00by:")
        h.update(bytes(obj))
    elif isinstance(obj, str):
        h.update(b"\x00st:")
        h.update(obj.encode())
    elif isinstance(obj, (bool, int, np.integer)):
        h.update(f"\x00in:{int(obj)}".encode())
    elif isinstance(obj, (float, np.floating)):
        h.update(f"\x00fl:{float(obj).hex()}".encode())
    elif isinstance(obj, (tuple, list)):
        h.update(f"\x00seq:{len(obj)}:".encode())
        for item in obj:
            _hash_part(h, item)
    else:
        raise TypeError(
            f"cannot fingerprint object of type {type(obj).__name__}"
        )


def sweep_fingerprint(kind: str, *parts) -> str:
    """Content-addressed identity of one sweep.

    Hashes the sweep *inputs* — operator arrays, reference vector,
    sources, walk lengths, scalars, seed entropy — but **not** the
    execution knobs (``workers``, ``block_size``): results are pinned
    invariant to those, so a checkpoint taken at one worker count
    resumes cleanly at another.  Accepts ndarrays, scalars (arbitrary-
    precision ints included, which covers ``SeedSequence.entropy``),
    strings, and nested sequences thereof.
    """
    h = hashlib.sha256()
    h.update(b"repro.runtime.sweep/v1")
    _hash_part(h, kind)
    for part in parts:
        _hash_part(h, part)
    return h.hexdigest()


def _shard_digest(fingerprint: str, lo: int, hi: int, parts) -> str:
    h = hashlib.sha256()
    h.update(fingerprint.encode())
    h.update(f":{lo}:{hi}:".encode())
    for part in parts:
        a = np.ascontiguousarray(part)
        h.update(f"{a.dtype.str}:{a.shape}:".encode())
        h.update(a.tobytes())
    return h.hexdigest()


# ----------------------------------------------------------------------
# Checkpoint store
# ----------------------------------------------------------------------
class CheckpointStore:
    """On-disk store of completed shard results for one sweep.

    Layout: ``{root}/{kind}-{fingerprint[:32]}/`` holding ``meta.json``
    plus one ``shard-{lo:010d}-{hi:010d}.npz`` per completed contiguous
    row range.  Every shard embeds the full fingerprint, its row bounds
    and a sha256 digest of its arrays; every file is written to a temp
    name and atomically renamed, so a crash mid-write leaves at most a
    temp file, never a truncated shard.  Any validation failure —
    unreadable archive, digest mismatch, bounds outside the sweep,
    overlapping shards, a meta file from a different sweep — raises
    :class:`~repro.errors.CheckpointCorruption`.
    """

    def __init__(self, root, *, kind: str, fingerprint: str, total: int) -> None:
        self.kind = str(kind)
        self.fingerprint = str(fingerprint)
        self.total = int(total)
        self.directory = Path(root) / f"{self.kind}-{self.fingerprint[:32]}"

    # -- paths ----------------------------------------------------------
    def _shard_path(self, lo: int, hi: int) -> Path:
        return self.directory / f"shard-{lo:010d}-{hi:010d}.npz"

    # -- meta -----------------------------------------------------------
    def _write_meta(self) -> None:
        meta_path = self.directory / "meta.json"
        if meta_path.exists():
            return
        payload = {
            "schema": _CHECKPOINT_SCHEMA,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "total": self.total,
        }
        tmp = meta_path.with_name(f".meta-{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, meta_path)

    def _check_meta(self) -> None:
        meta_path = self.directory / "meta.json"
        if not meta_path.exists():
            return
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointCorruption(
                f"unreadable checkpoint metadata {meta_path}: {exc}"
            ) from exc
        expected = {
            "schema": _CHECKPOINT_SCHEMA,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "total": self.total,
        }
        for key, want in expected.items():
            if meta.get(key) != want:
                raise CheckpointCorruption(
                    f"checkpoint metadata mismatch in {meta_path}: "
                    f"{key}={meta.get(key)!r}, expected {want!r}"
                )

    # -- write ----------------------------------------------------------
    def save(self, lo: int, hi: int, result) -> int:
        """Atomically persist one completed shard; returns bytes written."""
        parts = result if isinstance(result, tuple) else (result,)
        arrays = {
            f"part{i}": np.ascontiguousarray(p) for i, p in enumerate(parts)
        }
        arrays["nparts"] = np.int64(len(parts))
        arrays["bounds"] = np.asarray([lo, hi], dtype=np.int64)
        arrays["fingerprint"] = np.asarray(self.fingerprint)
        arrays["digest"] = np.asarray(
            _shard_digest(self.fingerprint, lo, hi, parts)
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._write_meta()
        path = self._shard_path(lo, hi)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path.stat().st_size

    def clear(self) -> None:
        """Discard every shard of *this* sweep (``resume=False``)."""
        if not self.directory.exists():
            return
        for path in self.directory.glob("shard-*.npz"):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - concurrent cleanup
                pass

    # -- read -----------------------------------------------------------
    def load(self) -> Dict[Tuple[int, int], Any]:
        """All valid completed shards, keyed by ``(lo, hi)`` row bounds.

        Every archive is fully validated (readable, fingerprint match,
        bounds sane and matching the filename, digest match, no overlap
        with any other shard); any failure raises
        :class:`~repro.errors.CheckpointCorruption` rather than letting
        a bad shard masquerade as finished work.
        """
        if not self.directory.exists():
            return {}
        self._check_meta()
        results: Dict[Tuple[int, int], Any] = {}
        for path in sorted(self.directory.glob("shard-*.npz")):
            results.update(self._load_shard(path))
        spans = sorted(results)
        for (lo_a, hi_a), (lo_b, _hi_b) in zip(spans, spans[1:]):
            if hi_a > lo_b:
                raise CheckpointCorruption(
                    f"overlapping checkpoint shards in {self.directory}: "
                    f"[{lo_a}, {hi_a}) and starting at {lo_b}"
                )
        return results

    def _load_shard(self, path: Path) -> Dict[Tuple[int, int], Any]:
        try:
            with np.load(path, allow_pickle=False) as archive:
                stored = {name: archive[name] for name in archive.files}
        except Exception as exc:
            raise CheckpointCorruption(
                f"unreadable checkpoint shard {path}: {exc}"
            ) from exc
        for required in ("nparts", "bounds", "fingerprint", "digest"):
            if required not in stored:
                raise CheckpointCorruption(
                    f"checkpoint shard {path} is missing its {required!r} record"
                )
        if str(stored["fingerprint"]) != self.fingerprint:
            raise CheckpointCorruption(
                f"checkpoint shard {path} belongs to a different sweep "
                "(fingerprint mismatch)"
            )
        lo, hi = (int(v) for v in stored["bounds"])
        if not (0 <= lo < hi <= self.total):
            raise CheckpointCorruption(
                f"checkpoint shard {path} covers rows [{lo}, {hi}) outside "
                f"the sweep's [0, {self.total})"
            )
        if path.name != self._shard_path(lo, hi).name:
            raise CheckpointCorruption(
                f"checkpoint shard {path} does not match its embedded "
                f"bounds [{lo}, {hi})"
            )
        nparts = int(stored["nparts"])
        try:
            parts = tuple(stored[f"part{i}"] for i in range(nparts))
        except KeyError as exc:
            raise CheckpointCorruption(
                f"checkpoint shard {path} is missing result arrays"
            ) from exc
        if str(stored["digest"]) != _shard_digest(self.fingerprint, lo, hi, parts):
            raise CheckpointCorruption(
                f"checkpoint shard {path} failed its integrity digest"
            )
        return {(lo, hi): parts[0] if nparts == 1 else parts}


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
def _missing_ranges(
    total: int, done: List[Tuple[int, int]]
) -> List[Tuple[int, int]]:
    """Complement of ``done`` within ``[0, total)`` (done is non-overlapping)."""
    gaps: List[Tuple[int, int]] = []
    cursor = 0
    for lo, hi in sorted(done):
        if lo > cursor:
            gaps.append((cursor, lo))
        cursor = max(cursor, hi)
    if cursor < total:
        gaps.append((cursor, total))
    return gaps


def _split_ranges(
    gaps: List[Tuple[int, int]], total: int, target_shards: int
) -> List[Tuple[int, int]]:
    """Chop the missing intervals into roughly even contiguous shards.

    The shard width targets ``total / target_shards`` rows so resume
    granularity matches a fresh run's; boundaries are free to differ
    between runs because every row is independent (results are pinned
    invariant to sharding).
    """
    width = max(1, -(-total // max(1, target_shards)))
    out: List[Tuple[int, int]] = []
    for lo, hi in gaps:
        for start in range(lo, hi, width):
            out.append((start, min(start + width, hi)))
    return out


# ----------------------------------------------------------------------
# Pool worker entry point
# ----------------------------------------------------------------------
def _worker_shard(args):
    """Module-level pool task: fault injection, then the sweep kernel.

    ``args`` is ``(kind, shard_index, inner, timed)`` — ``inner`` is the
    kind's regular task tuple (see ``repro.core.parallel._TASK_FNS``)
    and ``timed`` mirrors the parent's telemetry flag so the result
    travels back wrapped as ``(elapsed, attach_seconds, pid, result)``
    exactly like the PR-3 instrumented path.
    """
    kind, shard_index, inner, timed = args
    from .parallel import _TASK_FNS, _timed_task

    maybe_inject_fault(shard_index)
    if timed:
        return _timed_task((kind, inner))
    return _TASK_FNS[kind](inner)


# ----------------------------------------------------------------------
# The fault-tolerant executor
# ----------------------------------------------------------------------
def _make_executor(workers: int):
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = multiprocessing.get_context("fork")
    setup_start = time.perf_counter() if OBS.enabled else 0.0
    executor = ProcessPoolExecutor(max_workers=workers, mp_context=context)
    if OBS.enabled:
        OBS.observe("parallel.pool_setup_seconds", time.perf_counter() - setup_start)
    return executor


def _retire_executor(executor, *, kill: bool) -> None:
    """Tear an executor down without ever blocking the parent.

    ``kill=True`` (a shard timed out or the pool broke): SIGKILL any
    surviving workers first — a straggler sleeping in a kernel would
    otherwise keep the non-daemonic pool (and the interpreter's atexit
    join) alive indefinitely.
    """
    if kill:
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # pragma: no cover - already dead
                pass
    try:
        executor.shutdown(wait=not kill, cancel_futures=kill)
    except TypeError:  # pragma: no cover - python < 3.9
        executor.shutdown(wait=not kill)


def run_sharded(
    *,
    kind: str,
    total: int,
    policy: ExecutionPolicy,
    workers: int,
    make_task: Optional[Callable[[int, int], tuple]],
    serial_run: Callable[[int, int], Any],
    fingerprint: Optional[str] = None,
    use_pool: bool = True,
    overshard: int = 4,
) -> List[Any]:
    """Execute a sweep over ``total`` independent rows, fault-tolerantly.

    Returns the per-shard results ordered by row offset, covering
    ``[0, total)`` exactly; the caller concatenates along its sweep
    axis.  ``make_task(lo, hi)`` builds the picklable pool-task tuple
    for one shard; ``serial_run(lo, hi)`` computes the same rows
    in-process (used for non-pool execution and for degradation) —
    both must produce bit-identical rows, which every kernel in this
    package does by construction.

    Failure handling (pool path): a shard whose worker dies
    (``BrokenProcessPool``), exceeds ``policy.shard_timeout`` or raises
    is retried on a freshly built pool up to ``policy.max_retries``
    times with exponential backoff; shards still failing afterwards run
    via ``serial_run`` in-process.  ``fingerprint`` (with
    ``policy.checkpoint_dir``) enables checkpoint/resume: completed
    shards persist as they arrive and already-persisted row ranges are
    never recomputed.
    """
    store: Optional[CheckpointStore] = None
    results: Dict[Tuple[int, int], Any] = {}
    if policy.checkpoint_dir is not None and fingerprint is not None:
        store = CheckpointStore(
            policy.checkpoint_dir, kind=kind, fingerprint=fingerprint, total=total
        )
        if policy.resume:
            results = store.load()
            if OBS.enabled and results:
                OBS.add("runtime.checkpoint.loaded_shards", len(results))
                OBS.add(
                    "runtime.checkpoint.loaded_rows",
                    sum(hi - lo for lo, hi in results),
                )
        else:
            store.clear()

    def _finish(lo: int, hi: int, value) -> None:
        results[(lo, hi)] = value
        if store is not None:
            written = store.save(lo, hi, value)
            if OBS.enabled:
                OBS.add("runtime.checkpoint.saved_shards")
                OBS.add("runtime.checkpoint.bytes_written", written)

    target = min(total, max(1, workers) * max(1, overshard))
    pending = _split_ranges(_missing_ranges(total, list(results)), total, target)
    if pending:
        if OBS.enabled:
            for lo, hi in pending:
                OBS.observe("parallel.shard_rows", hi - lo)
        if use_pool and workers > 1:
            if policy.execution == "threads":
                _execute_threads(kind, pending, workers, serial_run, _finish)
            else:
                _execute_pool(
                    kind, pending, policy, workers, make_task, serial_run, _finish
                )
        else:
            for lo, hi in pending:
                _finish(lo, hi, serial_run(lo, hi))

    ordered = sorted(results)
    cursor = 0
    out: List[Any] = []
    for lo, hi in ordered:
        if lo != cursor:
            raise RuntimeFailure(
                f"internal: {kind} sweep left rows [{cursor}, {lo}) uncovered"
            )
        out.append(results[(lo, hi)])
        cursor = hi
    if cursor != total:
        raise RuntimeFailure(
            f"internal: {kind} sweep left rows [{cursor}, {total}) uncovered"
        )
    return out


def _execute_threads(
    kind: str,
    pending: List[Tuple[int, int]],
    workers: int,
    serial_run: Callable[[int, int], Any],
    finish: Callable[[int, int, Any], None],
) -> None:
    """Thread-pool fan-out: the serial kernel, concurrently.

    Each shard calls ``serial_run`` — the in-process code path itself —
    on a worker thread; numpy/scipy release the GIL inside the SpMM, so
    independent shards overlap without fork or shared-memory publish
    overhead.  No retry machinery: there is no process to die and no
    deadline to miss, so a shard exception is a real error and
    propagates (after every submitted future is drained).  Results are
    bit-identical to serial by construction — it *is* the serial kernel.
    """
    from concurrent.futures import ThreadPoolExecutor

    if OBS.enabled:
        OBS.add("runtime.thread_sweeps")
        OBS.add("runtime.thread_shards", len(pending))
    with OBS.span(
        "parallel.thread_pool", kind=kind, workers=int(workers), tasks=len(pending)
    ):
        with ThreadPoolExecutor(max_workers=workers) as executor:
            futures = [
                (lo, hi, executor.submit(serial_run, lo, hi)) for lo, hi in pending
            ]
            for lo, hi, future in futures:
                finish(lo, hi, future.result())


def _execute_pool(
    kind: str,
    pending: List[Tuple[int, int]],
    policy: ExecutionPolicy,
    workers: int,
    make_task: Callable[[int, int], tuple],
    serial_run: Callable[[int, int], Any],
    finish: Callable[[int, int, Any], None],
) -> None:
    """Pool fan-out with retry rounds, straggler kill and degradation."""
    from concurrent.futures import TimeoutError as FutureTimeout
    from concurrent.futures.process import BrokenProcessPool

    timed = OBS.enabled
    items = [
        (index, lo, hi, make_task(lo, hi))
        for index, (lo, hi) in enumerate(pending)
    ]
    pids: Dict[int, int] = {}
    abort: Optional[BaseException] = None
    span = (
        OBS.span("parallel.pool", kind=kind, workers=int(workers), tasks=len(items))
        if timed
        else None
    )
    if span is not None:
        span.__enter__()
    try:
        for attempt in range(policy.max_retries + 1):
            if not items:
                break
            if attempt:
                delay = _BACKOFF_BASE * (2.0 ** (attempt - 1))
                if OBS.enabled:
                    OBS.add("runtime.retry.rounds")
                    OBS.observe("runtime.retry.backoff_seconds", delay)
                if delay > 0.0:
                    time.sleep(delay)
            executor = _make_executor(workers)
            kill = False
            failed = []
            try:
                futures = [
                    (
                        item,
                        executor.submit(
                            _worker_shard, (kind, item[0], item[3], timed)
                        ),
                    )
                    for item in items
                ]
                for item, future in futures:
                    index, lo, hi, _inner = item
                    try:
                        value = future.result(timeout=policy.shard_timeout)
                    except FutureTimeout:
                        kill = True
                        failed.append(item)
                        if OBS.enabled:
                            OBS.add("runtime.retry.timeout")
                        continue
                    except BrokenProcessPool:
                        kill = True
                        failed.append(item)
                        if OBS.enabled:
                            OBS.add("runtime.retry.crash")
                        continue
                    except InjectedAbort as exc:
                        # Interruption: keep draining (and persisting)
                        # the shards that did complete, then stop.
                        abort = RuntimeFailure(
                            f"{kind} sweep interrupted at shard {index}: {exc}"
                        )
                        abort.__cause__ = exc
                        continue
                    except (KeyboardInterrupt, SystemExit):
                        kill = True
                        raise
                    except BaseException:
                        failed.append(item)
                        if OBS.enabled:
                            OBS.add("runtime.retry.error")
                        continue
                    if timed:
                        elapsed, attach_seconds, pid, value = value
                        OBS.observe(f"parallel.task_seconds.{kind}", elapsed)
                        if attach_seconds > 0.0:
                            OBS.observe("parallel.attach_seconds", attach_seconds)
                        pids[pid] = pids.get(pid, 0) + 1
                    finish(lo, hi, value)
            finally:
                _retire_executor(executor, kill=kill)
            if abort is not None:
                raise abort
            items = failed
        if items:
            # Retries exhausted: the pool is unrecoverable for these
            # shards — finish them in-process.  The serial path never
            # injects faults, so this always terminates.
            if OBS.enabled:
                OBS.add("runtime.serial_degradations")
                OBS.add("runtime.degraded_shards", len(items))
            for _index, lo, hi, _inner in items:
                finish(lo, hi, serial_run(lo, hi))
    finally:
        if span is not None:
            if pids:
                OBS.set_gauge("parallel.workers_used", len(pids))
                OBS.observe("parallel.tasks_per_worker_max", max(pids.values()))
            span.__exit__(None, None, None)
