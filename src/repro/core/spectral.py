"""Spectral analysis of the random-walk transition matrix.

Computes the second largest eigenvalue modulus (SLEM)

    mu = max(|lambda_2|, |lambda_n|)

of ``P = D^{-1} A`` (Theorem 2), which drives both mixing-time bounds and
the conductance bound ``Phi >= 1 - mu``.  Three interchangeable back-ends
are provided:

``"sparse"``
    scipy's Lanczos (``eigsh``) on the *symmetric normalisation*
    ``N = D^{-1/2} A D^{-1/2}``, which is similar to P (same spectrum) but
    symmetric, so the Hermitian solver applies.  This is the method that
    scales to million-node graphs and is the default.
``"dense"``
    ``numpy.linalg.eigvalsh`` on the dense N — exact reference for small
    graphs (guarded by a node-count cap).
``"power"``
    Our own deflated power iteration on N — a dependency-free
    cross-check that also demonstrates the classical algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, ConvergenceError, NotConnectedError
from ..graph import Graph, is_connected
from ..obs import OBS

__all__ = [
    "SpectralSummary",
    "normalized_adjacency",
    "normalized_adjacency_operator",
    "non_backtracking_slem",
    "transition_spectrum_extremes",
    "slem",
    "spectral_gap",
    "conductance_lower_bound",
    "cheeger_bounds",
]

_DENSE_CAP = 4000


@dataclass(frozen=True)
class SpectralSummary:
    """Spectral facts about a graph's random walk.

    Attributes
    ----------
    lambda2:
        Second largest eigenvalue of P (signed).
    lambda_min:
        Smallest eigenvalue of P (signed; ``> -1`` iff non-bipartite).
    slem:
        ``max(|lambda2|, |lambda_min|)`` — the paper's mu.
    gap:
        Spectral gap ``1 - slem``.
    method:
        Back-end that produced the values.
    """

    lambda2: float
    lambda_min: float
    slem: float
    gap: float
    method: str


def normalized_adjacency(graph: Graph):
    """``N = D^{-1/2} A D^{-1/2}`` as a CSR matrix.

    N is symmetric and similar to P via ``P = D^{-1/2} N D^{1/2}``, so they
    share eigenvalues; N's eigenvectors are D^{1/2}-rescaled versions of
    P's.

    Memoised on the (immutable) graph's ``_memo`` dict: temporal trend
    sweeps solve on the same window snapshots repeatedly, and rebuilding
    the O(2m) CSR per solve would dominate the warm solver's win.
    """
    from scipy.sparse import csr_matrix

    memo = getattr(graph, "_memo", None)
    if memo is not None and "normalized_adjacency" in memo:
        return memo["normalized_adjacency"]
    deg = graph.degrees.astype(np.float64)
    if np.any(deg == 0):
        raise NotConnectedError("normalized adjacency undefined with isolated nodes")
    inv_sqrt = 1.0 / np.sqrt(deg)
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    data = inv_sqrt[src] * inv_sqrt[graph.indices]
    n = graph.num_nodes
    matrix = csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))
    if memo is not None:
        memo["normalized_adjacency"] = matrix
    return matrix


def normalized_adjacency_operator(graph: Graph, *, memory_budget=None):
    """``N`` as a matrix-free ``LinearOperator`` streaming row stripes.

    The out-of-core analogue of :func:`normalized_adjacency`: holds only
    O(n) derived state (``deg^{-1/2}``) and computes ``N @ v`` by walking
    the (possibly memory-mapped) CSR arrays one budget-sized stripe at a
    time, so million-node graphs never materialise the O(2m) float64
    ``data`` array.  Row sums use ``np.add.reduceat`` — fine here because
    the Lanczos/power consumers are tolerance-based (unlike the
    bit-identity-pinned walk kernels, which must reproduce scipy's
    accumulation order exactly).
    """
    from scipy.sparse.linalg import LinearOperator

    from .backends import _STREAM_DEFAULT_BYTES, stripe_bounds

    deg = graph.degrees.astype(np.float64)
    if np.any(deg == 0):
        raise NotConnectedError("normalized adjacency undefined with isolated nodes")
    inv_sqrt = 1.0 / np.sqrt(deg)
    n = graph.num_nodes
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    indices = graph.indices
    budget = _STREAM_DEFAULT_BYTES if memory_budget is None else int(memory_budget)
    bounds = stripe_bounds(indptr, budget)

    def matvec(v: np.ndarray) -> np.ndarray:
        x = inv_sqrt * np.asarray(v, dtype=np.float64).reshape(-1)
        out = np.empty(n, dtype=np.float64)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            s0, s1 = int(indptr[lo]), int(indptr[hi])
            idx = np.asarray(indices[s0:s1], dtype=np.int64)
            starts = indptr[lo:hi] - s0
            # No empty rows (isolated nodes rejected above), so reduceat's
            # repeated-index pitfall cannot trigger.
            out[lo:hi] = inv_sqrt[lo:hi] * np.add.reduceat(x[idx], starts)
        if OBS.enabled:
            OBS.add("spectral.stream.matvecs")
            OBS.add("spectral.stream.stripes", len(bounds) - 1)
        return out

    return LinearOperator((n, n), matvec=matvec, rmatvec=matvec, dtype=np.float64)


def _normalized_matrix(graph: Graph):
    """CSR for in-memory graphs, a streamed operator for mapped ones."""
    if graph.is_memmap:
        return normalized_adjacency_operator(graph)
    return normalized_adjacency(graph)


def _extremes_sparse(graph: Graph, *, tol: float = 0.0, maxiter=None) -> Tuple[float, float]:
    from scipy.sparse.linalg import eigsh

    matrix = _normalized_matrix(graph)
    n = matrix.shape[0]
    if n <= 16:
        return _extremes_dense(graph)
    k = min(3, n - 1)
    # Largest algebraic: lambda_1 = 1 and lambda_2; deterministic start
    # vector keeps results reproducible.
    v0 = np.full(n, 1.0 / np.sqrt(n))
    try:
        with OBS.timer("spectral.sparse.seconds"):
            top = eigsh(matrix, k=k, which="LA", return_eigenvectors=False, tol=tol, maxiter=maxiter, v0=v0)
            bottom = eigsh(matrix, k=1, which="SA", return_eigenvectors=False, tol=tol, maxiter=maxiter, v0=v0)
    except Exception as exc:  # ArpackNoConvergence and friends
        raise ConvergenceError(f"sparse eigensolver failed: {exc}") from exc
    if OBS.enabled:
        OBS.add("spectral.sparse.solves", 2)
        OBS.observe("spectral.sparse.ritz_k", k)
    top = np.sort(top)[::-1]
    lambda2 = float(top[1])
    lambda_min = float(bottom[0])
    return lambda2, lambda_min


def _extremes_dense(graph: Graph) -> Tuple[float, float]:
    n = graph.num_nodes
    if n > _DENSE_CAP:
        raise ConfigurationError(
            f"dense spectral back-end capped at {_DENSE_CAP} nodes (got {n}); use method='sparse'"
        )
    dense = normalized_adjacency(graph).toarray()
    eigenvalues = np.linalg.eigvalsh(dense)
    return float(eigenvalues[-2]), float(eigenvalues[0])


def _extremes_power(
    graph: Graph,
    *,
    tol: float = 1e-10,
    maxiter: int = 100_000,
    seed: int = 7,
) -> Tuple[float, float]:
    """Deflated power iteration on N.

    The top eigenpair of N is known in closed form (eigenvalue 1 with
    eigenvector ``sqrt(deg)``), so lambda_2 comes from power iteration on
    the orthogonal complement.  |lambda_min| comes from iterating on
    ``N + I`` (shifting the spectrum to [0, 2]) from the bottom end via
    ``2I - (N + I) = I - N`` — we iterate ``I - N`` deflated by the same
    top vector, whose dominant eigenvalue is ``1 - lambda_min``.
    """
    matrix = _normalized_matrix(graph)
    n = matrix.shape[0]
    top_vec = np.sqrt(graph.degrees.astype(np.float64))
    top_vec /= np.linalg.norm(top_vec)
    rng = np.random.default_rng(seed)

    def dominant(apply_op) -> float:
        x = rng.standard_normal(n)
        x -= (x @ top_vec) * top_vec
        x /= np.linalg.norm(x)
        value = 0.0
        for iteration in range(maxiter):
            y = apply_op(x)
            y -= (y @ top_vec) * top_vec  # re-deflate against drift
            norm = np.linalg.norm(y)
            if norm == 0:
                if OBS.enabled:
                    OBS.observe("spectral.power.iterations", iteration + 1)
                return 0.0
            y /= norm
            new_value = float(y @ apply_op(y))
            residual = abs(new_value - value)
            if residual <= tol:
                if OBS.enabled:
                    OBS.observe("spectral.power.iterations", iteration + 1)
                    OBS.observe("spectral.power.residual", residual)
                return new_value
            value = new_value
            x = y
        if OBS.enabled:
            OBS.add("spectral.power.nonconverged")
        raise ConvergenceError("power iteration did not converge", partial=value)

    # lambda with the largest |.| among non-top eigenvalues:
    lam_abs_top = dominant(lambda v: matrix @ v)
    # Largest eigenvalue of (I - N) restricted to the complement = 1 - lambda_min.
    lam_shift = dominant(lambda v: v - matrix @ v)
    lambda_min = 1.0 - lam_shift
    # lam_abs_top is the eigenvalue of largest magnitude in the complement;
    # recover lambda2 as max over {lam_abs_top, anything smaller}: if
    # lam_abs_top is negative it *is* lambda_min, and lambda2 comes from
    # iterating N + I (spectrum shifted positive) instead.
    if lam_abs_top >= 0:
        lambda2 = lam_abs_top
        lambda_min = min(lambda_min, lam_abs_top)
    else:
        lam_pos = dominant(lambda v: matrix @ v + v) - 1.0
        lambda2 = lam_pos
        lambda_min = min(lambda_min, lam_abs_top)
    return float(lambda2), float(lambda_min)


def transition_spectrum_extremes(
    graph: Graph,
    *,
    method: str = "sparse",
    check_connected: bool = True,
    tol: float = 0.0,
    maxiter=None,
) -> SpectralSummary:
    """Compute ``lambda_2`` and ``lambda_min`` of P and derive the SLEM.

    Parameters
    ----------
    method:
        ``"sparse"`` (default), ``"dense"``, or ``"power"`` — see module
        docstring.
    check_connected:
        When true (default), raise :class:`NotConnectedError` on
        disconnected input instead of returning a meaningless mu = 1.
    """
    if graph.num_nodes < 2:
        raise ConfigurationError("spectral summary needs at least two nodes")
    if check_connected and not is_connected(graph):
        raise NotConnectedError("graph is disconnected; SLEM would trivially be 1")
    with OBS.span(
        "spectral.extremes", method=method, nodes=int(graph.num_nodes)
    ) as span:
        if method == "sparse":
            lambda2, lambda_min = _extremes_sparse(graph, tol=tol, maxiter=maxiter)
        elif method == "dense":
            lambda2, lambda_min = _extremes_dense(graph)
        elif method == "power":
            lambda2, lambda_min = _extremes_power(graph)
        else:
            raise ConfigurationError(f"unknown method {method!r}; expected sparse|dense|power")
        if OBS.enabled:
            OBS.add(f"spectral.calls.{method}")
            span.set(lambda2=float(lambda2), lambda_min=float(lambda_min))
    mu = max(abs(lambda2), abs(lambda_min))
    mu = min(mu, 1.0)
    return SpectralSummary(
        lambda2=lambda2,
        lambda_min=lambda_min,
        slem=mu,
        gap=1.0 - mu,
        method=method,
    )


def non_backtracking_slem(
    graph: Graph,
    *,
    method: str = "sparse",
    check_connected: bool = True,
    tol: float = 0.0,
    maxiter=None,
) -> float:
    """Second largest eigenvalue modulus of the Hashimoto operator ``B``.

    The non-backtracking analogue of :func:`slem`: ``B`` (see
    :class:`~repro.core.nonbacktracking.NonBacktrackingOperator`) is
    doubly stochastic with Perron eigenvalue 1; the next-largest modulus
    governs how fast the edge-space walk forgets its start, just as mu
    does for the simple walk.  On expanders it sits well below the
    simple-walk mu (the walk cannot burn steps backtracking); on a pure
    cycle ``B`` is a rotation — every eigenvalue has modulus 1 and the
    returned value is 1, matching the chain's failure to mix.

    ``B`` is *not* symmetric, so the back-ends differ from the node-space
    path: ``"sparse"`` uses scipy's implicitly-restarted Arnoldi
    (``eigs``), ``"dense"`` exact ``numpy.linalg.eigvals`` (capped at
    the same node budget as the dense node back-end).
    """
    if graph.num_nodes < 2:
        raise ConfigurationError("spectral summary needs at least two nodes")
    if check_connected and not is_connected(graph):
        raise NotConnectedError("graph is disconnected; SLEM would trivially be 1")
    from .nonbacktracking import NonBacktrackingOperator

    matrix = NonBacktrackingOperator(graph)._matrix
    num_slots = matrix.shape[0]
    with OBS.span(
        "spectral.nonbacktracking", method=method, arcs=int(num_slots)
    ) as span:
        if method == "dense" or (method == "sparse" and num_slots <= 32):
            if num_slots > _DENSE_CAP:
                raise ConfigurationError(
                    f"dense spectral back-end capped at {_DENSE_CAP} arcs "
                    f"(got {num_slots}); use method='sparse'"
                )
            moduli = np.sort(np.abs(np.linalg.eigvals(matrix.toarray())))[::-1]
        elif method == "sparse":
            from scipy.sparse.linalg import eigs

            k = min(4, num_slots - 2)
            v0 = np.full(num_slots, 1.0 / np.sqrt(num_slots))
            try:
                with OBS.timer("spectral.nonbacktracking.seconds"):
                    values = eigs(
                        matrix.astype(np.float64),
                        k=k,
                        which="LM",
                        return_eigenvectors=False,
                        tol=tol,
                        maxiter=maxiter,
                        v0=v0,
                    )
            except Exception as exc:  # ArpackNoConvergence and friends
                raise ConvergenceError(
                    f"sparse eigensolver failed on Hashimoto matrix: {exc}"
                ) from exc
            moduli = np.sort(np.abs(values))[::-1]
        else:
            raise ConfigurationError(
                f"unknown method {method!r}; expected sparse|dense"
            )
        mu = float(min(moduli[1], 1.0))
        if OBS.enabled:
            span.set(slem=mu)
    return mu


def slem(graph: Graph, *, method: str = "sparse", **kwargs) -> float:
    """The second largest eigenvalue modulus mu (Table 1 column)."""
    return transition_spectrum_extremes(graph, method=method, **kwargs).slem


def spectral_gap(graph: Graph, *, method: str = "sparse", **kwargs) -> float:
    """``1 - mu`` — the relaxation-rate of the chain."""
    return transition_spectrum_extremes(graph, method=method, **kwargs).gap


def conductance_lower_bound(mu: float) -> float:
    """Spectral lower bound on conductance: ``Phi >= (1 - mu) / 2``.

    Section 3.2 states the relation informally as "Phi ≳ 1 - mu"; the
    rigorous direction of Cheeger's inequality is
    ``Phi >= (1 - lambda_2) / 2 >= (1 - mu) / 2`` (since
    ``lambda_2 <= mu``), which is what this returns — the unhalved form
    is falsified by real graphs whose sweep cut lands between the two.
    """
    if not 0.0 <= mu <= 1.0:
        raise ConfigurationError("mu must lie in [0, 1]")
    return (1.0 - mu) / 2.0


def cheeger_bounds(lambda2: float) -> Tuple[float, float]:
    """Cheeger's inequality: ``(1 - lambda2)/2 <= Phi <= sqrt(2(1 - lambda2))``.

    Stated on the signed lambda_2 (not the modulus).  Returns
    ``(lower, upper)``.
    """
    if lambda2 > 1.0 or lambda2 < -1.0:
        raise ConfigurationError("lambda2 must lie in [-1, 1]")
    gap = 1.0 - lambda2
    return gap / 2.0, float(np.sqrt(2.0 * gap))
