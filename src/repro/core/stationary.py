"""The stationary distribution of the simple random walk.

Theorem 1 of the paper: on an undirected, unweighted graph the stationary
distribution is degree-proportional, ``pi_v = deg(v) / 2m``.  This module
provides that vector plus verification helpers used in tests and in the
ergodicity checks.
"""

from __future__ import annotations

import numpy as np

from ..errors import NotConnectedError
from ..graph import Graph

__all__ = [
    "stationary_distribution",
    "weighted_stationary_distribution",
    "is_stationary",
    "stationary_residual",
    "uniform_distribution",
    "edge_stationary_distribution",
]


def stationary_distribution(graph: Graph) -> np.ndarray:
    """``pi`` with ``pi_v = deg(v) / 2m`` (equation (3)).

    Requires at least one edge; isolated nodes would receive zero mass and
    break ergodicity, so their presence raises.
    """
    if graph.num_edges == 0:
        raise NotConnectedError("stationary distribution undefined: graph has no edges")
    deg = graph.degrees.astype(np.float64)
    if np.any(deg == 0):
        raise NotConnectedError("stationary distribution undefined: graph has isolated nodes")
    return deg / (2.0 * graph.num_edges)


def weighted_stationary_distribution(strength: np.ndarray) -> np.ndarray:
    """``pi`` of a reversible weighted walk: ``pi_v = strength(v) / total``.

    The weighted analogue of Theorem 1 — with symmetric positive edge
    weights the chain ``P = D_s^{-1} W`` is reversible and its stationary
    mass is strength-proportional.  Used by
    :class:`~repro.core.trust.WeightedTransitionOperator`.
    """
    s = np.asarray(strength, dtype=np.float64)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("strength must be a non-empty 1-D array")
    if np.any(s <= 0):
        raise NotConnectedError(
            "weighted stationary distribution undefined: node with zero strength"
        )
    return s / s.sum()


def uniform_distribution(n: int) -> np.ndarray:
    """The uniform distribution over ``n`` states.

    For a d-regular graph this equals the stationary distribution (the
    remark after Theorem 1).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    return np.full(n, 1.0 / n, dtype=np.float64)


def edge_stationary_distribution(graph: Graph) -> np.ndarray:
    """Uniform distribution over *directed* edge slots (length ``2m``).

    Whānau's experiments measured walk tails against ``1/m`` per
    undirected edge; expressed over directed slots this is the uniform
    vector ``1/2m``, which is the stationary distribution of the walk
    lifted to edges.
    """
    if graph.num_edges == 0:
        raise NotConnectedError("no edges")
    return np.full(2 * graph.num_edges, 1.0 / (2.0 * graph.num_edges), dtype=np.float64)


def stationary_residual(graph: Graph, pi: np.ndarray) -> float:
    """``|| pi P - pi ||_1`` — how far ``pi`` is from being invariant.

    Computed without building P: ``(pi P)_v = sum_{u ~ v} pi_u / deg(u)``.
    """
    pi = np.asarray(pi, dtype=np.float64)
    if pi.shape != (graph.num_nodes,):
        raise ValueError("pi has the wrong length")
    contrib = pi / np.maximum(graph.degrees, 1)
    out = np.zeros_like(pi)
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    np.add.at(out, graph.indices, contrib[src])
    return float(np.abs(out - pi).sum())


def is_stationary(graph: Graph, pi: np.ndarray, *, atol: float = 1e-10) -> bool:
    """Whether ``pi P == pi`` within ``atol`` (L1)."""
    return stationary_residual(graph, pi) <= atol
