"""Trust-aware random walks — the paper's second future-work direction.

Section 5/6: "This calls for considering the trust model resulting from
the underlying social network as a parameter, along with the mixing
time... Our work in [16, 15] is a preliminarily result in this
direction."  Those follow-ups modify the walk to *account for trust*,
which deliberately slows mixing on weak-trust graphs.  Two designs are
implemented:

* **Similarity-biased walk** — transition probability proportional to a
  per-edge weight (default: smoothed Jaccard similarity of the
  endpoints' neighbourhoods).  Strong ties are favoured; random weak
  ties (the edges that make OSNs fast mixing) are discounted.
* **Originator-biased walk** — at every step the walk returns to its
  originator with probability ``beta``, otherwise steps normally.  The
  walk stays anchored near its source, bounding how much an adversary
  far from the verifier can be reached.

Both are measured with the same total-variation machinery as the plain
walk; the headline (reproduced by ``benchmarks/bench_trust_models.py``)
is that each trust knob monotonically *increases* the effective mixing
time.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import NotConnectedError
from ..graph import Graph, is_connected
from .._util import check_node_index
from .distances import total_variation_to_reference
from .operators import MarkovOperator, resolve_block_size
from .runtime import ExecutionPolicy, as_policy
from .stationary import stationary_distribution, weighted_stationary_distribution

__all__ = [
    "jaccard_arc_weights",
    "WeightedTransitionOperator",
    "originator_biased_curve",
    "originator_biased_curves",
    "weighted_slem",
]


def jaccard_arc_weights(graph: Graph, *, smoothing: float = 0.1) -> np.ndarray:
    """Per-arc weights ``smoothing + jaccard(u, v)`` aligned with CSR slots.

    ``jaccard(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|`` over neighbour
    sets.  ``smoothing > 0`` keeps every existing edge usable (a pure
    similarity weight would disconnect edges with no common neighbour,
    breaking ergodicity).
    """
    if smoothing <= 0:
        raise ValueError("smoothing must be positive (weights must stay > 0)")
    indptr, indices = graph.indptr, graph.indices
    weights = np.empty(indices.size, dtype=np.float64)
    degrees = graph.degrees
    for u in range(graph.num_nodes):
        row_u = indices[indptr[u]:indptr[u + 1]]
        for pos in range(indptr[u], indptr[u + 1]):
            v = indices[pos]
            row_v = indices[indptr[v]:indptr[v + 1]]
            inter = np.intersect1d(row_u, row_v, assume_unique=True).size
            union = degrees[u] + degrees[v] - inter
            weights[pos] = smoothing + (inter / union if union else 0.0)
    return weights


class WeightedTransitionOperator(MarkovOperator):
    """Random walk with symmetric positive edge weights.

    ``P_{uv} = w_{uv} / strength(u)`` where ``strength(u) = sum_v w_{uv}``.
    With symmetric weights the chain is reversible and its stationary
    distribution is strength-proportional — the weighted analogue of
    Theorem 1 (``pi_v = strength(v) / total``).
    """

    def __init__(self, graph: Graph, arc_weights: np.ndarray, *, check_connected: bool = True):
        arc_weights = np.asarray(arc_weights, dtype=np.float64)
        if arc_weights.shape != (graph.indices.size,):
            raise ValueError("arc_weights must align with the CSR indices array")
        if np.any(arc_weights <= 0):
            raise ValueError("arc weights must be strictly positive")
        self._check_symmetry(graph, arc_weights)
        if check_connected and not is_connected(graph):
            raise NotConnectedError("graph is disconnected")
        self._graph = graph
        self._weights = arc_weights
        self._init_operator(graph.num_nodes)
        strength = np.zeros(graph.num_nodes, dtype=np.float64)
        src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
        np.add.at(strength, src, arc_weights)
        self._strength = strength
        from scipy.sparse import csr_matrix

        data = arc_weights / strength[src]
        n = graph.num_nodes
        self._matrix = csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))

    @staticmethod
    def _check_symmetry(graph: Graph, weights: np.ndarray, *, atol: float = 1e-9) -> None:
        from ..sybil.routes import reverse_slots  # arc pairing utility

        rev = reverse_slots(graph)
        if not np.allclose(weights, weights[rev], atol=atol):
            raise ValueError("arc weights must be symmetric (w_uv == w_vu)")

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    def strength(self) -> np.ndarray:
        """Weighted degree of every node."""
        return self._strength

    def _compute_stationary(self) -> np.ndarray:
        """Strength-proportional stationary distribution (weighted
        Theorem 1: ``pi_v = strength(v) / total``)."""
        return weighted_stationary_distribution(self._strength)


def _originator_curves_chunks(
    plain,
    pi: np.ndarray,
    src: np.ndarray,
    beta: float,
    lengths: np.ndarray,
    chunk_rows: int,
) -> np.ndarray:
    """Chunked kernel of the originator-biased sweep.

    One function, two execution contexts: the serial path below calls it
    with the full source list, and the shared-memory pool workers of
    :mod:`repro.core.parallel` call it on their shard with CSR/``pi``
    views attached straight to the published segment.  Rows are
    independent (each row's bias targets its *own* originator), so the
    split is bit-for-bit neutral.
    """
    n = plain.shape[0]
    max_len = int(lengths[-1])
    out = np.empty((src.size, lengths.size), dtype=np.float64)
    for lo in range(0, src.size, chunk_rows):
        chunk = src[lo:lo + chunk_rows]
        rows = np.arange(chunk.size)
        x = np.zeros((chunk.size, n), dtype=np.float64)
        x[rows, chunk] = 1.0
        col = 0
        for t in range(max_len + 1):
            if col < lengths.size and lengths[col] == t:
                out[lo:lo + chunk.size, col] = total_variation_to_reference(
                    x, pi, validate=False
                )
                col += 1
            if t < max_len:
                moved = np.asarray(x @ plain)
                x = (1.0 - beta) * moved
                x[rows, chunk] += beta
    return out


def originator_biased_curves(
    graph: Graph,
    sources: Sequence[int],
    beta: float,
    walk_lengths: Sequence[int],
    *,
    block_size: Optional[int] = None,
    workers: Optional[int] = None,
    policy: Optional["ExecutionPolicy"] = None,
) -> np.ndarray:
    """Batched originator-biased measurement: ``(s, w)`` distances.

    ``out[i, j]`` is the TVD between the *plain* stationary distribution
    and the biased walk of length ``walk_lengths[j]`` whose originator is
    ``sources[i]``.  Unlike the other chains, every source defines its
    own operator (``P'_i = beta * (jump to sources[i]) + (1 - beta) P``),
    so the per-row bias injection happens inside the block step — one
    SpMM per step still advances all sources at once.  ``workers > 1``
    shards the sources across the shared-memory process pool
    (:mod:`repro.core.parallel`) with identical results.
    """
    if not 0.0 <= beta < 1.0:
        raise ValueError("beta must be in [0, 1)")
    policy = as_policy(policy, workers=workers, block_size=block_size)
    lengths = np.asarray(walk_lengths, dtype=np.int64).ravel()
    if lengths.size == 0:
        raise ValueError("walk_lengths must be non-empty")
    if np.any(lengths < 0) or np.any(np.diff(lengths) <= 0):
        raise ValueError("walk_lengths must be strictly increasing and nonnegative")
    src = np.asarray(
        [check_node_index(s, graph.num_nodes, name="source") for s in np.asarray(sources).ravel()],
        dtype=np.int64,
    )
    if src.size == 0:
        raise ValueError("sources must be non-empty")
    pi = stationary_distribution(graph)
    from scipy.sparse import csr_matrix

    inv_deg = 1.0 / graph.degrees.astype(np.float64)
    data = np.repeat(inv_deg, graph.degrees)
    n = graph.num_nodes
    plain = csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))

    if policy.workers is not None or policy.checkpoint_dir is not None:
        from .parallel import maybe_parallel_originator_curves

        out = maybe_parallel_originator_curves(
            plain, pi, src, beta, lengths, policy=policy
        )
        if out is not None:
            return out
    chunk_rows = resolve_block_size(n, policy.block_size)
    return _originator_curves_chunks(plain, pi, src, beta, lengths, chunk_rows)


def originator_biased_curve(
    graph: Graph,
    source: int,
    beta: float,
    max_steps: int,
) -> np.ndarray:
    """Variation distance of the originator-biased walk to the *plain*
    stationary distribution.

    The modified chain ``P' = beta * (jump to source) + (1 - beta) * P``
    has its own stationary distribution concentrated around the source;
    measuring against the unbiased ``pi`` quantifies how much of the
    graph the biased walk can actually cover — the utility/security
    trade-off of the trust design.  ``beta = 0`` recovers the plain
    curve.  (Single-source convenience wrapper over
    :func:`originator_biased_curves`.)
    """
    if max_steps < 0:
        raise ValueError("max_steps must be nonnegative")
    return originator_biased_curves(graph, [source], beta, np.arange(max_steps + 1))[0]


def weighted_slem(graph: Graph, arc_weights: np.ndarray) -> float:
    """SLEM of the weighted random walk (Theorem 2 for weighted chains).

    The weighted chain ``P_w = D_s^{-1} W`` (s = strengths) is similar to
    the symmetric ``D_s^{-1/2} W D_s^{-1/2}``, so the whole spectral
    machinery carries over; this returns ``max(|lambda_2|, |lambda_n|)``,
    from which :func:`~repro.core.bounds.mixing_time_lower_bound` gives
    trust-model mixing bounds directly.
    """
    operator = WeightedTransitionOperator(graph, arc_weights)  # validates
    from scipy.sparse import csr_matrix
    from scipy.sparse.linalg import eigsh

    strength = operator.strength()
    inv_sqrt = 1.0 / np.sqrt(strength)
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    data = np.asarray(arc_weights, dtype=np.float64) * inv_sqrt[src] * inv_sqrt[graph.indices]
    n = graph.num_nodes
    matrix = csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))
    if n <= 16:
        values = np.linalg.eigvalsh(matrix.toarray())
        return float(min(max(abs(values[-2]), abs(values[0])), 1.0))
    v0 = np.sqrt(strength)
    v0 /= np.linalg.norm(v0)
    top = eigsh(matrix, k=min(3, n - 1), which="LA", return_eigenvectors=False, v0=v0)
    bottom = eigsh(matrix, k=1, which="SA", return_eigenvectors=False, v0=v0)
    lambda2 = float(np.sort(top)[::-1][1])
    lambda_min = float(bottom[0])
    return float(min(max(abs(lambda2), abs(lambda_min)), 1.0))
