"""Random walks on graphs: the transition operator and walk simulation.

The central object is :class:`TransitionOperator` — the row-stochastic
matrix ``P = D^{-1} A`` of Section 3.1, equation (1), wrapped so that
distribution evolution (``x P^t``) runs as sparse matrix–vector products
without ever materialising ``P^t``.  All evolution machinery (point
masses, stepping, block evolution, batched measurement) lives on the
shared :class:`~repro.core.operators.MarkovOperator` base.

A *lazy* variant ``P' = alpha I + (1-alpha) P`` is offered because the
plain walk is periodic on bipartite graphs (the chain is then not
ergodic); laziness is the standard fix and does not change the stationary
distribution.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, NotConnectedError, NotErgodicError
from ..graph import Graph, is_connected
from .._util import as_rng, check_node_index
from .operators import MarkovOperator
from .stationary import stationary_distribution

__all__ = ["TransitionOperator", "simulate_walk", "simulate_walk_endpoints", "is_bipartite"]


def _is_bipartite_reference(graph: Graph) -> bool:
    """Two-colourability by node-at-a-time BFS (the original, pure-Python
    implementation).  Kept as the oracle for the vectorised layering in
    :func:`is_bipartite`; O(n + m) but with Python-loop constants."""
    n = graph.num_nodes
    colour = np.full(n, -1, dtype=np.int8)
    indptr, indices = graph.indptr, graph.indices
    for start in range(n):
        if colour[start] != -1:
            continue
        colour[start] = 0
        frontier = [start]
        while frontier:
            nxt = []
            for u in frontier:
                cu = colour[u]
                for v in indices[indptr[u]:indptr[u + 1]]:
                    if colour[v] == -1:
                        colour[v] = 1 - cu
                        nxt.append(int(v))
                    elif colour[v] == cu:
                        return False
            frontier = nxt
    return True


def _frontier_neighbours(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """Concatenated adjacency lists of all frontier nodes, in order.

    Vectorised multi-slice gather: with ``counts`` the frontier degrees,
    the flat CSR positions are ``arange(total) + repeat(starts - shifted
    cumulative counts)`` — one gather instead of a Python loop."""
    counts = indptr[frontier + 1] - indptr[frontier]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    starts = indptr[frontier]
    shifted = np.concatenate(([0], np.cumsum(counts)[:-1]))
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - shifted, counts)
    return indices[pos]


def is_bipartite(graph: Graph) -> bool:
    """Two-colourability check by frontier-at-a-time BFS layering.

    In a BFS from a single start node every frontier shares one colour
    (the level parity), so each level is a single vectorised step: gather
    all frontier adjacency lists at once, reject if any neighbour already
    carries the frontier's colour (an odd cycle), colour the uncoloured
    neighbours with the opposite parity, and advance.  Agrees with the
    node-at-a-time oracle :func:`_is_bipartite_reference` on all graphs.
    """
    n = graph.num_nodes
    colour = np.full(n, -1, dtype=np.int8)
    indptr, indices = graph.indptr, graph.indices
    cursor = 0
    while True:
        while cursor < n and colour[cursor] != -1:
            cursor += 1
        if cursor == n:
            return True
        colour[cursor] = 0
        frontier = np.asarray([cursor], dtype=np.int64)
        parity = 0
        while frontier.size:
            neigh = _frontier_neighbours(indptr, indices, frontier)
            seen = colour[neigh]
            if np.any(seen == parity):
                return False
            parity = 1 - parity
            frontier = np.unique(neigh[seen == -1])
            colour[frontier] = parity


class TransitionOperator(MarkovOperator):
    """The simple-random-walk transition matrix of an undirected graph.

    Parameters
    ----------
    graph:
        Connected undirected graph (checked unless ``check_connected``
        is false — disable only when the caller already verified it).
    laziness:
        Self-loop probability ``alpha`` in ``P' = alpha I + (1-alpha) P``.
        ``0.0`` (default) is the plain walk used throughout the paper.
    check_connected, check_aperiodic:
        Ergodicity validation.  A reducible or periodic chain has no
        unique limiting distribution, making the mixing time undefined;
        by default construction fails loudly in those cases.
    """

    def __init__(
        self,
        graph: Graph,
        *,
        laziness: float = 0.0,
        check_connected: bool = True,
        check_aperiodic: bool = True,
    ):
        if not 0.0 <= laziness < 1.0:
            raise ConfigurationError("laziness must be in [0, 1)")
        if graph.num_nodes == 0:
            raise NotConnectedError("transition operator of an empty graph is undefined")
        if np.any(graph.degrees == 0):
            raise NotConnectedError("graph has isolated nodes; random walk is undefined there")
        if check_connected and not is_connected(graph):
            raise NotConnectedError("graph is disconnected; the chain is reducible")
        if check_aperiodic and laziness == 0.0 and is_bipartite(graph):
            raise NotErgodicError(
                "graph is bipartite, so the non-lazy walk is periodic; "
                "construct with laziness > 0 for an ergodic chain"
            )
        self._graph = graph
        self._laziness = float(laziness)
        self._init_operator(graph.num_nodes)
        if graph.is_memmap:
            # Out-of-core path: never materialise the O(2m) float64 CSR.
            # The striped matrix synthesises CSC column stripes from the
            # mapped arrays on demand and multiplies bit-for-bit like the
            # scipy construction below (tests/core/test_outofcore.py pins
            # the identity).
            from .outofcore import StripedTransitionMatrix

            self._matrix = StripedTransitionMatrix(graph, laziness=self._laziness)
            return
        # Sparse row-stochastic matrix, stored CSR for fast x @ P.
        from scipy.sparse import csr_matrix

        inv_deg = 1.0 / graph.degrees.astype(np.float64)
        data = np.repeat(inv_deg, graph.degrees)
        n = graph.num_nodes
        plain = csr_matrix((data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n))
        if laziness > 0.0:
            from scipy.sparse import identity

            self._matrix = (laziness * identity(n, format="csr")) + (1.0 - laziness) * plain
            self._matrix = self._matrix.tocsr()
        else:
            self._matrix = plain

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """The underlying graph."""
        return self._graph

    @property
    def laziness(self) -> float:
        """Self-loop probability alpha."""
        return self._laziness

    def matrix(self):
        """The transition matrix (copy-safe view).

        A ``scipy.sparse.csr_matrix`` for in-memory graphs; for
        memory-mapped graphs a
        :class:`~repro.core.outofcore.StripedTransitionMatrix`, which
        multiplies identically (and offers ``tocsr()`` when a scipy
        matrix is genuinely needed).
        """
        return self._matrix

    def _compute_stationary(self) -> np.ndarray:
        """Theorem 1: pi_v = deg(v)/2m.  Laziness does not change it."""
        return stationary_distribution(self._graph)

    def transition_probability(self, u: int, v: int) -> float:
        """The single entry ``p_{uv}`` of equation (1)."""
        u = check_node_index(u, self.num_states, name="u")
        v = check_node_index(v, self.num_states, name="v")
        base = 0.0
        if self._graph.has_edge(u, v):
            base = (1.0 - self._laziness) / self._graph.degree(u)
        if u == v:
            base += self._laziness
        return base


def simulate_walk(
    graph: Graph,
    source: int,
    length: int,
    *,
    seed=None,
    laziness: float = 0.0,
) -> np.ndarray:
    """Simulate one random walk; returns the visited node sequence
    (``length + 1`` entries, starting at ``source``).

    This is trajectory-level Monte Carlo — the measurement pipeline itself
    uses exact distribution evolution, but simulated walks drive the Sybil
    defenses and a cross-validation test (empirical endpoint frequencies
    must converge to the evolved distribution).
    """
    if length < 0:
        raise ConfigurationError("length must be nonnegative")
    n = graph.num_nodes
    source = check_node_index(source, n, name="source")
    if graph.degree(source) == 0 and length > 0:
        raise NotConnectedError(f"walk started at isolated node {source}")
    rng = as_rng(seed)
    path = np.empty(length + 1, dtype=np.int64)
    path[0] = source
    indptr, indices = graph.indptr, graph.indices
    current = source
    for t in range(1, length + 1):
        if laziness > 0.0 and rng.random() < laziness:
            path[t] = current
            continue
        lo, hi = indptr[current], indptr[current + 1]
        current = int(indices[lo + rng.integers(hi - lo)])
        path[t] = current
    return path


def simulate_walk_endpoints(
    graph: Graph,
    source: int,
    length: int,
    walks: int,
    *,
    seed=None,
    laziness: float = 0.0,
) -> np.ndarray:
    """Terminal nodes of ``walks`` independent walks from ``source``."""
    rng = as_rng(seed)
    ends = np.empty(walks, dtype=np.int64)
    for i in range(walks):
        ends[i] = simulate_walk(graph, source, length, seed=rng, laziness=laziness)[-1]
    return ends
