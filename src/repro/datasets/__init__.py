"""Dataset registry and synthetic stand-in generation (paper Table 1)."""

from .registry import (
    REGISTRY,
    DatasetSpec,
    dataset_names,
    figure7_dataset_names,
    get_spec,
    huge_dataset_names,
    large_dataset_names,
    physics_dataset_names,
    small_dataset_names,
)
from .synthetic import generate, generate_huge, generate_raw, load_dataset
from .cache import (
    clear_memory_cache,
    default_cache_dir,
    load_cached,
    loaded_dataset_names,
    reset_load_log,
)
from .temporal import (
    TEMPORAL_REGISTRY,
    TemporalDatasetSpec,
    clear_temporal_cache,
    generate_temporal,
    get_temporal_spec,
    load_temporal_cached,
    temporal_dataset_names,
)

__all__ = [
    "REGISTRY",
    "DatasetSpec",
    "dataset_names",
    "figure7_dataset_names",
    "get_spec",
    "huge_dataset_names",
    "large_dataset_names",
    "physics_dataset_names",
    "small_dataset_names",
    "generate",
    "generate_huge",
    "generate_raw",
    "load_dataset",
    "clear_memory_cache",
    "default_cache_dir",
    "load_cached",
    "loaded_dataset_names",
    "reset_load_log",
    "TEMPORAL_REGISTRY",
    "TemporalDatasetSpec",
    "clear_temporal_cache",
    "generate_temporal",
    "get_temporal_spec",
    "load_temporal_cached",
    "temporal_dataset_names",
]
