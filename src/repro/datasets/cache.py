"""Caching for generated dataset stand-ins.

Generating the larger stand-ins takes seconds; the benchmark suite
touches each dataset many times, so a two-level cache pays for itself:

* an in-process dict keyed by ``(name, seed)``;
* an optional on-disk ``.npz`` cache (default ``~/.cache/repro-mixing``;
  override with the ``REPRO_CACHE_DIR`` environment variable or the
  ``cache_dir`` argument).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import DatasetError
from ..graph import Graph, load_npz, save_npz
from ..obs import OBS
from .registry import get_spec
from .synthetic import generate, generate_huge

__all__ = [
    "load_cached",
    "clear_memory_cache",
    "default_cache_dir",
    "loaded_dataset_names",
    "reset_load_log",
]

_MEMORY: Dict[Tuple[str, Optional[int]], Graph] = {}

#: Insertion-ordered log of every dataset name served by
#: :func:`load_cached` in this process (cache hits included — a runner
#: that *uses* a cached graph still depends on it).  Run-manifests diff
#: this log around a runner to record the datasets the run touched.
_LOAD_LOG: Dict[str, None] = {}


def loaded_dataset_names() -> Tuple[str, ...]:
    """Dataset names served so far, in first-load order."""
    return tuple(_LOAD_LOG)


def reset_load_log() -> None:
    """Forget the load log (mainly for tests)."""
    _LOAD_LOG.clear()


def default_cache_dir() -> Path:
    """Resolve the on-disk cache directory (created lazily)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-mixing"


def clear_memory_cache() -> None:
    """Drop every in-process cached graph (mainly for tests)."""
    _MEMORY.clear()


def load_cached(
    name: str,
    *,
    seed: Optional[int] = None,
    use_disk: bool = True,
    cache_dir: Optional[Path] = None,
) -> Graph:
    """Load a dataset stand-in through the cache hierarchy.

    Memory hit → returned directly.  Disk hit → loaded, memoised,
    returned.  Miss → generated, persisted (when ``use_disk``), memoised.
    """
    key = (name, seed)
    _LOAD_LOG[name] = None
    if key in _MEMORY:
        if OBS.enabled:
            OBS.add("datasets.load.memory_hits")
        return _MEMORY[key]
    spec = get_spec(name)  # validates the name before any disk I/O
    if spec.scale == "huge":
        # Paper-scale tier: the graph only ever exists as an on-disk
        # container opened as a memory-mapped view — the in-memory
        # .npz route below would defeat the point (and the RAM).
        if not use_disk:
            raise DatasetError(
                f"dataset {name!r} is paper-scale and streams to disk; "
                "it cannot be loaded with use_disk=False"
            )
        directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        suffix = "default" if seed is None else str(seed)
        path = directory / f"{name}-{suffix}.csr"
        if path.exists():
            from ..graph import open_csr

            graph = open_csr(path)
            if OBS.enabled:
                OBS.add("datasets.load.disk_hits")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            if OBS.enabled:
                OBS.add("datasets.load.generated")
            graph = generate_huge(spec, path, seed=seed)
        _MEMORY[key] = graph
        return graph
    path = None
    if use_disk:
        directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        suffix = "default" if seed is None else str(seed)
        path = directory / f"{name}-{suffix}.npz"
        if path.exists():
            graph = load_npz(path)
            _MEMORY[key] = graph
            if OBS.enabled:
                OBS.add("datasets.load.disk_hits")
            return graph
    if OBS.enabled:
        OBS.add("datasets.load.generated")
    graph = generate(spec, seed=seed)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(graph, path)
    _MEMORY[key] = graph
    return graph
