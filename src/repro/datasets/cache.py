"""Caching for generated dataset stand-ins.

Generating the larger stand-ins takes seconds; the benchmark suite
touches each dataset many times, so a two-level cache pays for itself:

* an in-process dict keyed by ``(name, seed)``;
* an optional on-disk ``.npz`` cache (default ``~/.cache/repro-mixing``;
  override with the ``REPRO_CACHE_DIR`` environment variable or the
  ``cache_dir`` argument).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..graph import Graph, load_npz, save_npz
from .registry import get_spec
from .synthetic import generate

__all__ = ["load_cached", "clear_memory_cache", "default_cache_dir"]

_MEMORY: Dict[Tuple[str, Optional[int]], Graph] = {}


def default_cache_dir() -> Path:
    """Resolve the on-disk cache directory (created lazily)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-mixing"


def clear_memory_cache() -> None:
    """Drop every in-process cached graph (mainly for tests)."""
    _MEMORY.clear()


def load_cached(
    name: str,
    *,
    seed: Optional[int] = None,
    use_disk: bool = True,
    cache_dir: Optional[Path] = None,
) -> Graph:
    """Load a dataset stand-in through the cache hierarchy.

    Memory hit → returned directly.  Disk hit → loaded, memoised,
    returned.  Miss → generated, persisted (when ``use_disk``), memoised.
    """
    key = (name, seed)
    if key in _MEMORY:
        return _MEMORY[key]
    spec = get_spec(name)  # validates the name before any disk I/O
    path = None
    if use_disk:
        directory = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        suffix = "default" if seed is None else str(seed)
        path = directory / f"{name}-{suffix}.npz"
        if path.exists():
            graph = load_npz(path)
            _MEMORY[key] = graph
            return graph
    graph = generate(spec, seed=seed)
    if path is not None:
        path.parent.mkdir(parents=True, exist_ok=True)
        save_npz(graph, path)
    _MEMORY[key] = graph
    return graph
