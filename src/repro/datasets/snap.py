"""Acquisition of real SNAP edge lists (checksum-pinned, opt-in).

The paper measured real SNAP graphs; this repo's default pipeline uses
synthetic stand-ins because the edge lists are not redistributable and
CI has no network access.  For users who *do* have network access,
``repro-mixing fetch-dataset`` downloads a known source, verifies its
checksum, and ingests it straight into the out-of-core ``.csr``
container via the same chunked builder the huge synthetic tier uses —
so a fetched million-node graph never materialises an in-memory edge
list either.

Security posture: downloads are refused unless a SHA-256 pin is
available — either recorded in :data:`SNAP_SOURCES` or passed
explicitly by the caller (``--sha256``).  This module performs no
network I/O at import time and nothing in the test suite or CI invokes
it with a remote URL.
"""

from __future__ import annotations

import gzip
import hashlib
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..errors import DatasetError
from ..obs import OBS

__all__ = ["SnapSource", "SNAP_SOURCES", "fetch_dataset", "ingest_edge_list"]

#: Edge-list lines parsed per ingestion chunk (~16 MB of text).
_CHUNK_LINES = 1 << 20


@dataclass(frozen=True)
class SnapSource:
    """One acquirable dataset.

    ``sha256`` pins the *downloaded archive* bytes.  ``None`` means no
    pin has been recorded here (this registry was authored offline);
    fetching such a source requires the caller to supply the expected
    digest explicitly — unpinned downloads are never ingested.
    """

    name: str
    url: str
    sha256: Optional[str] = None
    description: str = ""


SNAP_SOURCES: Dict[str, SnapSource] = {
    source.name: source
    for source in [
        SnapSource(
            name="soc-livejournal1",
            url="https://snap.stanford.edu/data/soc-LiveJournal1.txt.gz",
            sha256=None,  # record after first verified download
            description="LiveJournal friendship graph (the paper's largest).",
        ),
        SnapSource(
            name="com-youtube",
            url="https://snap.stanford.edu/data/com-youtube.ungraph.txt.gz",
            sha256=None,
            description="Youtube friendship graph.",
        ),
        SnapSource(
            name="ca-grqc",
            url="https://snap.stanford.edu/data/ca-GrQc.txt.gz",
            sha256=None,
            description="arXiv gr-qc co-authorship (the paper's Physics 1).",
        ),
    ]
}


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _edge_chunks(text_path: Path) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Stream ``(u, v)`` chunks out of a SNAP edge-list text file.

    Reuses the vectorised tokenizer of :func:`repro.graph.io.parse_edge_list`
    on bounded line batches, so parsing is fast without ever holding the
    whole file's edges.
    """
    from ..graph.io import parse_edge_list

    with open(text_path, "r", encoding="utf-8", errors="strict") as handle:
        while True:
            lines = []
            for line in handle:
                lines.append(line)
                if len(lines) >= _CHUNK_LINES:
                    break
            if not lines:
                return
            edges = parse_edge_list("".join(lines))
            if edges.size:
                yield edges[:, 0], edges[:, 1]


def ingest_edge_list(text_path, dest_path, *, keep_largest_component: bool = True):
    """Turn a SNAP edge-list text file into a ``.csr`` container.

    Node ids are compacted to ``[0, n)`` (SNAP files skip ids); directed
    listings symmetrise naturally because the chunked builder inserts
    every edge in both directions and deduplicates.  With
    ``keep_largest_component`` (the paper's preprocessing) the largest
    component is extracted out-of-core afterwards.
    Returns the opened :class:`~repro.graph.storage.MemmapGraph`.
    """
    from ..generators.chunked import build_csr_from_edge_chunks, extract_nodes_to_csr
    from ..graph import is_connected

    text_path = Path(text_path)
    dest_path = Path(dest_path)

    # Pass 0: discover the id universe (O(distinct ids) memory).
    max_id = -1
    seen_any = False
    ids = set()
    for u, v in _edge_chunks(text_path):
        seen_any = True
        ids.update(np.unique(u).tolist())
        ids.update(np.unique(v).tolist())
    if not seen_any or not ids:
        raise DatasetError(f"{text_path} contains no edges")
    id_list = np.array(sorted(ids), dtype=np.int64)
    remap = {int(old): new for new, old in enumerate(id_list)}
    n = id_list.size

    def relabeled():
        for u, v in _edge_chunks(text_path):
            yield (
                np.searchsorted(id_list, u),
                np.searchsorted(id_list, v),
            )

    del remap  # searchsorted over the sorted id list is the actual map
    if keep_largest_component:
        scratch = dest_path.with_suffix(dest_path.suffix + ".full")
        graph = build_csr_from_edge_chunks(scratch, n, relabeled)
        try:
            if is_connected(graph):
                os.replace(scratch, dest_path)
                from ..graph import open_csr

                return open_csr(dest_path)
            mask = _largest_component_mask(graph)
            return extract_nodes_to_csr(graph, mask, dest_path)
        finally:
            if scratch.exists():
                scratch.unlink()
    return build_csr_from_edge_chunks(dest_path, n, relabeled)


def _largest_component_mask(graph) -> np.ndarray:
    """Membership mask of the largest connected component (O(n) memory,
    frontier-at-a-time BFS over the possibly-mapped CSR arrays)."""
    n = graph.num_nodes
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    indices = graph.indices
    label = np.full(n, -1, dtype=np.int64)
    best_label, best_size = -1, 0
    current = 0
    for start in range(n):
        if label[start] != -1:
            continue
        label[start] = current
        frontier = np.array([start], dtype=np.int64)
        size = 1
        while frontier.size:
            counts = indptr[frontier + 1] - indptr[frontier]
            total = int(counts.sum())
            if total == 0:
                break
            starts = indptr[frontier]
            shifted = np.concatenate(([0], np.cumsum(counts)[:-1]))
            pos = np.arange(total, dtype=np.int64) + np.repeat(starts - shifted, counts)
            neigh = np.unique(np.asarray(indices[pos]))
            neigh = neigh[label[neigh] == -1]
            label[neigh] = current
            size += neigh.size
            frontier = neigh
        if size > best_size:
            best_label, best_size = current, size
        current += 1
    return label == best_label


def fetch_dataset(
    name: str,
    dest_dir,
    *,
    sha256: Optional[str] = None,
    url: Optional[str] = None,
    keep_largest_component: bool = True,
):
    """Download, verify, decompress and ingest one SNAP dataset.

    ``sha256`` overrides (or supplies, for unpinned registry entries)
    the expected archive digest; a missing pin is an error, a mismatch
    aborts before any parsing happens.  ``url`` overrides the registry
    URL — ``file://`` URLs work, which is how the offline test suite
    exercises this path end-to-end.  Returns the path of the written
    ``.csr`` container.
    """
    source = SNAP_SOURCES.get(name)
    if source is None and url is None:
        raise DatasetError(
            f"unknown SNAP source {name!r}; known: {', '.join(SNAP_SOURCES)}"
        )
    resolved_url = url or source.url
    pin = sha256 or (source.sha256 if source is not None else None)
    if pin is None:
        raise DatasetError(
            f"no SHA-256 pin recorded for {name!r}; refusing an unverified "
            "download — pass sha256=<expected digest> explicitly"
        )
    dest_dir = Path(dest_dir)
    dest_dir.mkdir(parents=True, exist_ok=True)
    dest_path = dest_dir / f"{name}.csr"

    from urllib.request import urlopen

    with tempfile.TemporaryDirectory(dir=dest_dir) as staging:
        archive = Path(staging) / "archive"
        with urlopen(resolved_url) as response, open(archive, "wb") as out:
            shutil.copyfileobj(response, out)
        actual = _sha256_file(archive)
        if actual != pin.lower():
            raise DatasetError(
                f"checksum mismatch for {name!r}: expected {pin}, got {actual}; "
                "the source may have changed — refusing to ingest"
            )
        if OBS.enabled:
            OBS.add("datasets.snap.fetches")
            OBS.add("datasets.snap.bytes_fetched", archive.stat().st_size)
        text = Path(staging) / "edges.txt"
        try:
            with gzip.open(archive, "rb") as zipped, open(text, "wb") as out:
                shutil.copyfileobj(zipped, out)
        except gzip.BadGzipFile:
            # Plain-text source (file:// pins in tests, mirrors).
            shutil.copyfile(archive, text)
        ingest_edge_list(
            text, dest_path, keep_largest_component=keep_largest_component
        )
    return dest_path
