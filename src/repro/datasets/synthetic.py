"""Materialise dataset stand-ins from registry recipes."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import DatasetError
from ..graph import Graph, largest_connected_component
from ..generators import (
    barabasi_albert,
    community_powerlaw,
    erdos_renyi_gnm,
    holme_kim,
    powerlaw_configuration_model,
    watts_strogatz,
)
from .registry import DatasetSpec, get_spec

__all__ = ["generate", "generate_raw", "generate_huge", "load_dataset"]


def generate_huge(spec: DatasetSpec, path, *, seed=None):
    """Stream a ``huge``-tier spec straight into an on-disk container.

    Unlike :func:`generate`, the graph never exists in memory — the
    chunked generator writes the ``.csr`` container at ``path`` and the
    returned graph is a :class:`~repro.graph.storage.MemmapGraph` view
    of it.  No LCC pass is needed: the chunked recipe's ring backbone
    guarantees connectivity by construction.
    """
    if spec.recipe != "chunked_community":
        raise DatasetError(
            f"dataset {spec.name!r} has recipe {spec.recipe!r}; "
            "generate_huge only understands 'chunked_community'"
        )
    from ..generators.chunked import chunked_community_csr

    seed = spec.seed if seed is None else seed
    return chunked_community_csr(path, spec.nodes, seed=seed, **dict(spec.params))


def generate_raw(spec: DatasetSpec, *, seed=None) -> Graph:
    """Run the spec's recipe and return the raw graph (before LCC).

    ``seed`` overrides the spec's deterministic seed (useful for
    generating independent replicas of the same stand-in).
    """
    seed = spec.seed if seed is None else seed
    recipe = spec.recipe
    params = dict(spec.params)
    if recipe == "community_powerlaw":
        graph, _labels = community_powerlaw(
            spec.nodes,
            params.pop("gamma"),
            params.pop("mu_frac"),
            target_edges=spec.edges,
            seed=seed,
            **params,
        )
        return graph
    if recipe == "affiliation":
        from ..generators import affiliation_coauthorship

        graph, _labels = affiliation_coauthorship(
            spec.nodes, spec.edges, seed=seed, **params
        )
        return graph
    if recipe == "powerlaw_configuration":
        return powerlaw_configuration_model(
            spec.nodes, params.pop("gamma"), target_edges=spec.edges, seed=seed, **params
        )
    if recipe == "holme_kim":
        return holme_kim(spec.nodes, params.pop("m_per_node"), params.pop("triad_prob"), seed=seed)
    if recipe == "barabasi_albert":
        return barabasi_albert(spec.nodes, params.pop("m_per_node"), seed=seed)
    if recipe == "erdos_renyi":
        return erdos_renyi_gnm(spec.nodes, spec.edges, seed=seed)
    if recipe == "watts_strogatz":
        return watts_strogatz(spec.nodes, params.pop("k"), params.pop("p"), seed=seed)
    if recipe == "chunked_community":
        raise DatasetError(
            f"dataset {spec.name!r} is a huge-tier spec that streams straight "
            "to disk; load it via repro.datasets.load_cached or generate_huge"
        )
    raise DatasetError(f"dataset {spec.name!r} has unknown recipe {recipe!r}")


def generate(spec: DatasetSpec, *, seed=None) -> Graph:
    """The stand-in graph: recipe output restricted to its largest
    connected component (the paper's preprocessing, Section 4)."""
    raw = generate_raw(spec, seed=seed)
    lcc, _node_map = largest_connected_component(raw)
    return lcc


def load_dataset(name: str, *, seed=None) -> Graph:
    """Registry lookup + generation in one call (cached variant lives in
    :func:`repro.datasets.cache.load_cached`)."""
    return generate(get_spec(name), seed=seed)
