"""Temporal dataset stand-ins: timestamped edge streams over the registry.

The static registry (:mod:`repro.datasets.registry`) mirrors the paper's
Table 1 with synthetic stand-ins; this module adds a *temporal* tier
shaped after the public timestamped graphs the follow-on literature
measures churn on (Enron email with timestamps, the SNAP
``sx-mathoverflow`` / ``sx-superuser`` temporal exchanges).  Real edge
streams are not redistributable here, so each temporal stand-in is
generated the same way the static ones are — a structure-matched
community graph — and then *scheduled*: a spanning backbone plus an
initial fraction of the edges form the base snapshot, and the remaining
edges arrive in timestamped :class:`~repro.graph.temporal.EdgeDelta`
batches, each batch also retiring a few earlier non-backbone edges
(churn).  The backbone never churns, so **every snapshot is connected**
and spectral/mixing measurement is well defined on every window.

Determinism mirrors the static tier: each spec derives its seed from its
name via ``stable_hash_u64``, so streams are identical across processes
and worker counts.  Loads are memoised and recorded in the shared
dataset load-log, so experiment manifests list temporal inputs alongside
static ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

import numpy as np

from .._util import stable_hash_u64
from ..errors import DatasetError
from ..obs import OBS

__all__ = [
    "TemporalDatasetSpec",
    "TEMPORAL_REGISTRY",
    "temporal_dataset_names",
    "get_temporal_spec",
    "generate_temporal",
    "load_temporal_cached",
    "clear_temporal_cache",
]


@dataclass(frozen=True)
class TemporalDatasetSpec:
    """One temporal stand-in: a static recipe plus an arrival schedule.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"temporal_enron"``.
    label:
        The real timestamped graph this stream is shaped after.
    nodes, edges:
        Target size of the *final* snapshot (before LCC extraction).
    recipe_params:
        Keyword arguments for the ``community_powerlaw`` recipe.
    base_fraction:
        Fraction of non-backbone edges present in the base snapshot.
    num_deltas:
        Number of timestamped arrival batches after the base.
    churn_per_delta:
        Non-backbone edges retired per batch (0 disables deletion).
    time_step:
        Timestamp spacing between consecutive batches (base is t=0).
    """

    name: str
    label: str
    nodes: int
    edges: int
    recipe_params: Mapping
    base_fraction: float = 0.6
    num_deltas: int = 60
    churn_per_delta: int = 2
    time_step: int = 10
    description: str = ""

    @property
    def seed(self) -> int:
        """Deterministic per-dataset seed (stable across processes)."""
        return stable_hash_u64("repro-temporal-dataset", self.name) % (2**31)


def _tspec(**kwargs) -> TemporalDatasetSpec:
    return TemporalDatasetSpec(**kwargs)


#: The temporal tier.  Community counts are kept moderate (the real
#: streams are organisation- or topic-structured, not shattered into
#: dozens of micro-communities), which also keeps the leading eigenvalue
#: cluster narrow enough for the warm spectral path to shine.
TEMPORAL_REGISTRY: Dict[str, TemporalDatasetSpec] = {
    spec.name: spec
    for spec in [
        _tspec(
            name="temporal_enron",
            label="Enron email (timestamped)",
            nodes=1_800,
            edges=9_000,
            recipe_params={"gamma": 2.3, "mu_frac": 0.06, "k_min": 2, "num_communities": 12},
            base_fraction=0.6,
            num_deltas=60,
            churn_per_delta=3,
            description="Organisational email stream; departments churn slowly.",
        ),
        _tspec(
            name="temporal_mathoverflow",
            label="sx-mathoverflow (comments/answers)",
            nodes=1_500,
            edges=6_000,
            recipe_params={"gamma": 2.4, "mu_frac": 0.10, "k_min": 2, "num_communities": 8},
            base_fraction=0.55,
            num_deltas=60,
            churn_per_delta=2,
            description="Topic-structured Q&A interactions; bursty arrivals.",
        ),
        _tspec(
            name="temporal_superuser",
            label="sx-superuser (comments/answers)",
            nodes=2_400,
            edges=10_500,
            recipe_params={"gamma": 2.3, "mu_frac": 0.08, "k_min": 2, "num_communities": 10},
            base_fraction=0.65,
            num_deltas=60,
            churn_per_delta=3,
            description="Larger Q&A exchange; fast-arriving periphery.",
        ),
    ]
}


def temporal_dataset_names() -> List[str]:
    """All temporal stand-in names, registry order."""
    return list(TEMPORAL_REGISTRY)


def get_temporal_spec(name: str) -> TemporalDatasetSpec:
    """Look up a temporal spec; raises :class:`DatasetError` if unknown."""
    try:
        return TEMPORAL_REGISTRY[name]
    except KeyError:
        raise DatasetError(
            f"unknown temporal dataset {name!r}; known: {', '.join(TEMPORAL_REGISTRY)}"
        ) from None


def generate_temporal(spec: TemporalDatasetSpec):
    """Materialise one temporal stand-in as a :class:`TemporalGraph`.

    Pipeline: generate the final static graph, extract its LCC, lift a
    BFS spanning backbone (never churned → every snapshot connected),
    then schedule the remaining edges — ``base_fraction`` of them into
    the base snapshot, the rest across ``num_deltas`` timestamped
    batches, each batch retiring ``churn_per_delta`` of the oldest
    still-active scheduled edges.
    """
    from ..generators.community import community_powerlaw
    from ..graph.components import largest_connected_component
    from ..graph.temporal import EdgeDelta, TemporalGraph
    from ..graph.traversal import bfs_tree
    from ..graph import Graph

    rng = np.random.default_rng(spec.seed)
    full, _ = community_powerlaw(
        spec.nodes,
        spec.recipe_params["gamma"],
        spec.recipe_params["mu_frac"],
        k_min=spec.recipe_params.get("k_min", 1),
        num_communities=spec.recipe_params.get("num_communities"),
        target_edges=spec.edges,
        seed=spec.seed,
    )
    full, _ = largest_connected_component(full)
    n = full.num_nodes

    _, parents = bfs_tree(full, 0)
    children = np.flatnonzero(parents >= 0)
    backbone = {
        (min(int(c), int(p)), max(int(c), int(p))) for c, p in zip(children, parents[children])
    }
    extras = [tuple(e) for e in full.edges().tolist() if tuple(e) not in backbone]
    order = rng.permutation(len(extras))
    extras = [extras[i] for i in order]

    base_count = int(round(spec.base_fraction * len(extras)))
    base_edges = sorted(backbone) + extras[:base_count]
    base = Graph.from_edges(base_edges, num_nodes=n)
    temporal = TemporalGraph(base)

    pending = extras[base_count:]
    active = list(extras[:base_count])  # churn-eligible, arrival order
    per_batch = int(np.ceil(len(pending) / spec.num_deltas)) if pending else 0
    t = 0
    for i in range(spec.num_deltas):
        arriving = pending[i * per_batch : (i + 1) * per_batch]
        retire_count = min(spec.churn_per_delta, max(len(active) - 1, 0))
        retiring = active[:retire_count]
        active = active[retire_count:] + arriving
        if not arriving and not retiring:
            break
        t += spec.time_step
        temporal.append(EdgeDelta(t, insert=arriving, delete=retiring))
    if OBS.enabled:
        OBS.add("datasets.temporal.generated")
    return temporal


_MEMORY: Dict[str, object] = {}


def load_temporal_cached(name: str):
    """Load a temporal stand-in, memoising per process.

    The returned :class:`TemporalGraph` is shared and *mutable* (it can
    be advanced with ``append``); callers that need pristine history
    should re-derive via ``clear_temporal_cache`` or build from
    :func:`generate_temporal` directly.  Loads are recorded in the
    shared dataset load-log so experiment manifests see temporal inputs.
    """
    from .cache import _LOAD_LOG

    spec = get_temporal_spec(name)
    if name in _MEMORY:
        if OBS.enabled:
            OBS.add("datasets.temporal.memory_hits")
        _LOAD_LOG[name] = None
        return _MEMORY[name]
    temporal = generate_temporal(spec)
    _MEMORY[name] = temporal
    _LOAD_LOG[name] = None
    return temporal


def clear_temporal_cache() -> None:
    """Drop all memoised temporal graphs (tests and mutation isolation)."""
    _MEMORY.clear()
