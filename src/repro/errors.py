"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class at API
boundaries while still being able to distinguish failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An experiment/CLI configuration value is invalid.

    Raised at *parse time* (CLI argument handling,
    :class:`~repro.experiments.config.ExperimentConfig` construction) so
    a bad knob — e.g. ``workers=0`` or a non-integer worker count —
    fails loudly up front instead of silently degrading to a serial run
    hours into a sweep.
    """


class GraphFormatError(ReproError, ValueError):
    """An edge list, adjacency input, or serialized graph is malformed."""


class NotConnectedError(ReproError, ValueError):
    """An operation that requires a connected graph received a disconnected one.

    The mixing time of a random walk is undefined on a disconnected graph
    (the chain is reducible), so :mod:`repro.core` raises this rather than
    silently returning a meaningless value.
    """


class NotErgodicError(ReproError, ValueError):
    """The random walk on the given graph is not ergodic.

    Raised when a chain is reducible (disconnected graph) or periodic
    (bipartite graph with a non-lazy walk), and the requested computation
    needs a unique stationary distribution.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical procedure failed to converge.

    Carries the partially-converged state where practical, via the
    ``partial`` attribute.
    """

    def __init__(self, message: str, partial=None):
        super().__init__(message)
        self.partial = partial


class DatasetError(ReproError, KeyError):
    """An unknown dataset name was requested from the registry."""


class ScenarioError(ReproError, ValueError):
    """A Sybil attack scenario is inconsistent (e.g. more attack edges
    than the regions can support, or an empty region)."""


class SamplingError(ReproError, ValueError):
    """A sampling request cannot be satisfied (e.g. target size larger
    than the reachable component)."""


class RouteError(ReproError, ValueError):
    """A random-route request is invalid.

    Raised by the route engine (:mod:`repro.sybil.routes`) for
    structurally impossible requests — an isolated start node, a route
    through an edgeless graph — rather than letting an index error
    surface from deep inside a kernel.
    """


class RuntimeFailure(ReproError, RuntimeError):
    """The fault-tolerant execution runtime gave up on a sweep.

    Raised only after every recovery avenue (shard retries with backoff,
    pool rebuilds, in-process serial degradation) has been exhausted, or
    when the runtime detects a state it must not paper over.  Partial
    results are never returned: a sweep either completes bit-identical
    to the serial path or raises.
    """


class CheckpointCorruption(RuntimeFailure):
    """A sweep checkpoint failed validation.

    Raised when a checkpoint shard is truncated, fails its content
    digest, overlaps another shard, or does not match the sweep's
    fingerprint — never silently wrong numbers.  Delete the offending
    checkpoint directory (or pass a fresh ``checkpoint_dir``) to rerun
    from scratch.
    """
