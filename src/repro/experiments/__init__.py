"""Experiment runners: one per paper table/figure plus ablations."""

from .config import FAST, FULL, ExperimentConfig, validate_workers
from .harness import (
    FigureResult,
    Series,
    TableResult,
    figure_to_csv,
    render_figure,
    render_table,
    run_with_manifest,
    table_to_csv,
)
from .table1 import Table1Row, collect_slems, run_table1, table1_result
from .lower_bounds import lower_bound_figure, run_figure1, run_figure2
from .cdfs import cdf_figure, measure_physics, run_figure3, run_figure4
from .temporal import run_fig3_over_time, trend_measurements
from .bound_vs_sampling import bound_vs_sampling_figure, run_figure5
from .trimming import TrimLevel, run_figure6, trim_levels, trim_summary_table
from .scaling import run_figure7
from .admission import FIGURE8_DATASETS, admission_curve, run_figure8
from .adversarial import (
    ADVERSARIAL_DEFENSES,
    AdversarialKnobs,
    AdversarialSweepResult,
    adversarial_sweep,
    default_adversarial_knobs,
    run_adversarial_sweep,
    run_defense_admission,
)
from .whanau_tails import (
    run_whanau_tails,
    tail_arc_distribution,
    tail_arc_distributions,
)
from .whanau_lookup import run_whanau_lookup
from .sybilguard_admission import run_sybilguard_admission
from .sybilrank_iterations import run_sybilrank_iterations
from .replication import ReplicaStats, replication_table, run_replication
from .average_case import AverageCaseRow, average_case_table, run_average_case
from .trust_models import run_trust_models
from .directed_conversion import make_directed_standin, run_directed_conversion
from .ablations import (
    run_conductance_ablation,
    run_sampling_bias_ablation,
    run_sybil_bound_ablation,
)

__all__ = [
    "FAST",
    "FULL",
    "ExperimentConfig",
    "validate_workers",
    "FigureResult",
    "Series",
    "TableResult",
    "render_figure",
    "render_table",
    "run_with_manifest",
    "figure_to_csv",
    "table_to_csv",
    "Table1Row",
    "collect_slems",
    "run_table1",
    "table1_result",
    "lower_bound_figure",
    "run_figure1",
    "run_figure2",
    "cdf_figure",
    "measure_physics",
    "run_figure3",
    "run_figure4",
    "run_fig3_over_time",
    "trend_measurements",
    "bound_vs_sampling_figure",
    "run_figure5",
    "TrimLevel",
    "run_figure6",
    "trim_levels",
    "trim_summary_table",
    "run_figure7",
    "FIGURE8_DATASETS",
    "admission_curve",
    "run_figure8",
    "ADVERSARIAL_DEFENSES",
    "AdversarialKnobs",
    "AdversarialSweepResult",
    "adversarial_sweep",
    "default_adversarial_knobs",
    "run_adversarial_sweep",
    "run_defense_admission",
    "run_whanau_tails",
    "run_whanau_lookup",
    "run_sybilguard_admission",
    "run_sybilrank_iterations",
    "ReplicaStats",
    "replication_table",
    "run_replication",
    "tail_arc_distribution",
    "tail_arc_distributions",
    "AverageCaseRow",
    "average_case_table",
    "run_average_case",
    "run_trust_models",
    "make_directed_standin",
    "run_directed_conversion",
    "run_conductance_ablation",
    "run_sampling_bias_ablation",
    "run_sybil_bound_ablation",
]
