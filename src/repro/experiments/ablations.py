"""Ablation experiments backing the paper's discussion claims.

Not figures of the paper, but quantitative checks of claims it argues in
prose:

* **Conductance vs spectral gap** (Section 3.2): ``Phi >= (1 - mu)/2``
  (the rigorous form of the paper's informal "Phi ≳ 1 - mu") and
  Cheeger's upper bound; the sweep cut should land between them and
  expose the community bottleneck on slow-mixing graphs.
* **Sybils per attack edge** (Section 5): with an attacker attached, the
  number of sybil identities SybilLimit accepts grows ~linearly in both
  g and w ("it is then easy to compute the number of accepted Sybil
  identities which is t * g").
* **BFS sampling bias** (footnote 3): BFS samples mix *faster* than the
  graphs they come from, so the paper's Figure 7 numbers are optimistic.
* **Defense comparison** (Section 2 / Viswanath et al.): all four
  defenses keyed on the same structural signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..community import spectral_sweep_cut
from ..core import cheeger_bounds, conductance_lower_bound, transition_spectrum_extremes, slem
from ..datasets import load_cached
from ..graph import Graph
from ..sampling import bfs_sample, metropolis_hastings_sample
from ..sybil import (
    SybilLimit,
    SybilLimitParams,
    attach_sybil_region,
    escape_probability,
    evaluate_admission,
    random_sybil_region,
)
from .config import ExperimentConfig, FAST
from .harness import TableResult

__all__ = [
    "run_conductance_ablation",
    "run_sybil_bound_ablation",
    "run_sampling_bias_ablation",
]


def run_conductance_ablation(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "wiki_vote", "livejournal_a", "facebook"),
) -> TableResult:
    """Sweep-cut conductance against the spectral bounds per dataset."""
    rows: List[List[str]] = []
    for name in datasets:
        graph = load_cached(name)
        spectrum = transition_spectrum_extremes(graph)
        lower = conductance_lower_bound(spectrum.slem)
        cheeger_lo, cheeger_hi = cheeger_bounds(spectrum.lambda2)
        cut = spectral_sweep_cut(graph)
        rows.append(
            [
                name,
                f"{spectrum.slem:.4f}",
                f"{lower:.4f}",
                f"{cut.conductance:.4f}",
                f"{cheeger_hi:.4f}",
                f"{cut.size:,}",
            ]
        )
    return TableResult(
        title="Conductance ablation: Phi bounds vs the sweep cut "
        "((1 - mu)/2 <= Phi(sweep) <= sqrt(2(1 - lambda2)))",
        headers=["Dataset", "mu", "(1 - mu)/2", "sweep Phi", "Cheeger upper", "cut size"],
        rows=rows,
    )


@dataclass
class SybilBoundPoint:
    """One (g, w) cell of the sybil-acceptance grid."""

    attack_edges: int
    route_length: int
    sybils_accepted: int
    honest_admission: float


def run_sybil_bound_ablation(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "physics1",
    attack_edges: Sequence[int] = (2, 5, 10),
    route_lengths: Sequence[int] = (20, 60, 180),
    sybil_size: int = 300,
) -> TableResult:
    """Accepted sybils as a function of g and w (the t*g claim)."""
    honest = load_cached(dataset)
    rows: List[List[str]] = []
    for g in attack_edges:
        sybil = random_sybil_region(sybil_size, seed=config.seed + g)
        scenario = attach_sybil_region(honest, sybil, g, seed=config.seed + 13 * g)
        protocol = SybilLimit(
            scenario, SybilLimitParams(route_length=max(route_lengths)), seed=config.seed
        )
        rng = np.random.default_rng(config.seed + g)
        honest_pool = np.arange(1, scenario.num_honest, dtype=np.int64)
        honest_sample = rng.choice(
            honest_pool, size=min(200, honest_pool.size), replace=False
        )
        suspects = np.sort(np.concatenate([honest_sample, scenario.sybil_nodes()]))
        outcomes = protocol.admission_sweep(
            0,
            list(route_lengths),
            suspects=suspects,
            seed=config.seed,
            policy=config.execution_policy,
        )
        escapes = escape_probability(scenario, sorted(route_lengths))
        escape_by_w = dict(zip(sorted(route_lengths), escapes))
        for outcome in outcomes:
            metrics = evaluate_admission(scenario, outcome.suspects, outcome.accepted)
            rows.append(
                [
                    str(g),
                    str(outcome.route_length),
                    str(metrics.sybil_accepted),
                    f"{metrics.sybil_accepted / g:.1f}",
                    f"{metrics.honest_admission_rate:.2f}",
                    f"{escape_by_w[outcome.route_length]:.4f}",
                ]
            )
    return TableResult(
        title="Sybil acceptance vs attack edges and route length "
        "(accepted sybils scale with g and w; bound is g * w)",
        headers=["g", "w", "sybils accepted", "per attack edge", "honest admission", "exact escape prob"],
        rows=rows,
    )


def run_sampling_bias_ablation(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "dblp",
    sample_size: int = 1500,
    trials: int = 3,
) -> TableResult:
    """BFS vs MHRW sample SLEM (footnote 3: BFS biases toward fast mixing)."""
    graph = load_cached(dataset)
    rows: List[List[str]] = []
    full_mu = slem(graph)
    rows.append(["full graph", f"{graph.num_nodes:,}", f"{full_mu:.4f}", "-"])
    rng = np.random.default_rng(config.seed)
    for method, sampler in (("BFS", bfs_sample), ("MHRW", metropolis_hastings_sample)):
        mus = []
        for _ in range(trials):
            sub, _node_map = sampler(graph, sample_size, seed=rng)
            mus.append(slem(sub))
        rows.append(
            [
                f"{method} sample",
                f"{sample_size:,}",
                f"{np.mean(mus):.4f}",
                f"{np.std(mus):.4f}",
            ]
        )
    return TableResult(
        title=f"Sampling bias on {dataset}: BFS samples mix faster (lower mu) than the full graph",
        headers=["Graph", "Nodes", "mean mu", "std mu"],
        rows=rows,
    )
