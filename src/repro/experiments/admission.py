"""Figure 8 — SybilLimit admission rate vs random-route length.

The paper implements SybilLimit, sets ``r = r0 * sqrt(m)`` (birthday
paradox), considers the no-attacker case, and "increase[s] t until the
number of accepted nodes by a trusted node (the verifier) reaches almost
all honest nodes".  Figure 8 plots the admission rate against the walk
length for Physics 1-3, Facebook A and Slashdot 1 (the latter two as
10,000-node samples in the paper; our stand-ins are already at that
scale).

Claim preserved: on slow-mixing graphs the walk length needed to admit
~all honest nodes is "much longer than assumed previously" (10-15).

This runner is deliberately the **no-attacker baseline**: every suspect
is honest, so the only quantity measured is the honest-rejection cost of
short routes — it corresponds exactly to the ``g=0`` column of the
adversarial sweep.  The attacker-on half of the threat model (planted
sybil regions, false-admit/honest-reject frontiers, security-bound
checks) lives in :mod:`repro.experiments.adversarial`
(CLI: ``repro-mixing adversarial-sweep``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..datasets import load_cached
from ..sampling import bfs_sample
from ..sybil import SybilLimit, SybilLimitParams, no_attack_scenario
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_figure8", "admission_curve", "FIGURE8_DATASETS"]

#: Datasets in the paper's Figure 8, with the sample size it used.
FIGURE8_DATASETS: Dict[str, Optional[int]] = {
    "physics1": None,
    "physics2": None,
    "physics3": None,
    "facebook_a": 10_000,
    "slashdot1": 10_000,
}


@dataclass
class AdmissionCurve:
    """Honest admission rate per route length for one dataset."""

    dataset: str
    walk_lengths: np.ndarray
    admission_rates: np.ndarray
    num_instances: int

    def walk_length_for(self, target_rate: float) -> Optional[int]:
        """Smallest measured w whose admission rate reaches the target."""
        hits = np.flatnonzero(self.admission_rates >= target_rate)
        if hits.size == 0:
            return None
        return int(self.walk_lengths[hits[0]])


def admission_curve(
    dataset: str,
    config: ExperimentConfig = FAST,
    *,
    sample_size: Optional[int] = None,
    verifier: int = 0,
    max_suspects: Optional[int] = None,
) -> AdmissionCurve:
    """Run the Figure 8 sweep on one dataset.

    ``max_suspects`` caps the suspect set (fast mode uses a sample; the
    admission *rate* is unbiased either way).
    """
    graph = load_cached(dataset)
    if sample_size is not None and sample_size < graph.num_nodes:
        graph, _node_map = bfs_sample(graph, sample_size, seed=config.seed)
    scenario = no_attack_scenario(graph)
    walks = [w for w in config.figure8_walks]
    protocol = SybilLimit(
        scenario,
        SybilLimitParams(route_length=walks[-1]),
        seed=config.seed,
    )
    if max_suspects is None:
        max_suspects = 400 if config.is_fast else graph.num_nodes
    all_suspects = np.setdiff1d(np.arange(graph.num_nodes, dtype=np.int64), [verifier])
    if all_suspects.size > max_suspects:
        rng = np.random.default_rng(config.seed)
        suspects = np.sort(rng.choice(all_suspects, size=max_suspects, replace=False))
    else:
        suspects = all_suspects
    outcomes = protocol.admission_sweep(
        verifier, walks, suspects=suspects, seed=config.seed, policy=config.execution_policy
    )
    return AdmissionCurve(
        dataset=dataset,
        walk_lengths=np.asarray([o.route_length for o in outcomes], dtype=np.int64),
        admission_rates=np.asarray([o.admission_rate for o in outcomes]),
        num_instances=protocol.num_instances,
    )


def run_figure8(
    config: ExperimentConfig = FAST,
    *,
    datasets: Optional[Dict[str, Optional[int]]] = None,
) -> FigureResult:
    """Figure 8: admission rate of SybilLimit vs walk length."""
    datasets = datasets if datasets is not None else dict(FIGURE8_DATASETS)
    # Fast mode: shrink the sampled OSN graphs so the sweep stays cheap.
    figure = FigureResult(
        title="Figure 8: Admission rate of SybilLimit at different route lengths (no attacker)",
        xlabel="random walk (route) length w",
        ylabel="accepted honest nodes (%)",
    )
    series: List[Series] = []
    for name, sample in datasets.items():
        if config.is_fast and sample is not None:
            sample = min(sample, 3000)
        curve = admission_curve(name, config, sample_size=sample)
        series.append(
            Series(
                label=f"{name} (r={curve.num_instances})",
                x=curve.walk_lengths,
                y=100.0 * curve.admission_rates,
            )
        )
    figure.panels["main"] = series
    figure.notes = (
        "No-attacker baseline: all suspects are honest, so these curves "
        "measure only the honest-rejection cost of short routes (the g=0 "
        "column of the adversarial sweep).\n"
        "Attacker-on frontiers: repro-mixing adversarial-sweep."
    )
    return figure
