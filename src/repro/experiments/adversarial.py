"""Figure 8 with attackers: adversarial admission sweeps over six defenses.

The historical Figure 8 path (:mod:`repro.experiments.admission`) is the
paper's *no-attacker baseline* — it measures only the honest-rejection
cost of long routes.  This module adds the other half of the Section 5
threat model: planted sybil regions (:mod:`repro.sybil.attacks`) swept
over attack-edge budget ``g`` x sybil-region size x attacker strategy x
defense, reporting both sides of the trade-off —

* **false-admit** — fraction of sybil identities a verifier admits,
* **honest-reject** — fraction of honest suspects it turns away,

plus the security-bound comparison: admitted sybils against the
``g * w`` (O(log n) per attack edge) guarantee SybilGuard/SybilLimit
advertise.

Every cell of the sweep is an independent deterministic computation, so
the sweep runs through :func:`repro.core.runtime.run_sharded` with
per-cell checkpoint shards: a killed sweep resumes mid-grid, results
are bit-identical at any worker count, and the checkpoint fingerprint
covers every input that affects the numbers (honest graph, strategy
definitions, budgets, sizes, defense knobs, seed) but no execution knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.parallel import resolve_workers
from ..core.runtime import ExecutionPolicy, run_sharded, sweep_fingerprint
from ..datasets import load_cached
from ..errors import ConfigurationError
from ..obs import OBS
from ..sampling import bfs_sample
from ..sybil import (
    AdmissionMetrics,
    SumUpParams,
    SybilGuard,
    SybilInfer,
    SybilInferParams,
    SybilLimit,
    SybilLimitParams,
    build_whanau,
    evaluate_admission,
    recommended_route_length,
    sybil_bound_per_attack_edge,
    sybilrank,
)
from ..sybil.attacks import AttackStrategy, build_attack_scenario, get_attack_strategy
from ..sybil.scenario import SybilScenario
from ..sybil.sumup import sumup_admission
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = [
    "ADVERSARIAL_DEFENSES",
    "AdversarialKnobs",
    "AdversarialSweepResult",
    "adversarial_sweep",
    "default_adversarial_knobs",
    "run_adversarial_sweep",
    "run_defense_admission",
]

#: The six implemented defenses, in sweep (and display) order.
ADVERSARIAL_DEFENSES: Tuple[str, ...] = (
    "sybilguard",
    "sybillimit",
    "sybilinfer",
    "sumup",
    "whanau",
    "sybilrank",
)

#: Columns of one sweep cell: honest total/accepted, sybil total/accepted.
_CELL_COLUMNS = 4


@dataclass(frozen=True)
class AdversarialKnobs:
    """Per-defense protocol knobs shared by every cell of one sweep.

    One knob set for the whole grid keeps cells comparable: the only
    things varying across a frontier are the attacker parameters.
    """

    route_length: int
    sybillimit_instances: Optional[int] = None
    infer_samples: int = 80
    infer_burn_in: int = 40
    infer_steps: int = 2
    sumup_c_max: int = 10
    whanau_walk_length: int = 8

    def __post_init__(self):
        if self.route_length < 1:
            raise ConfigurationError("route_length must be >= 1")
        if self.sybillimit_instances is not None and self.sybillimit_instances < 1:
            raise ConfigurationError("sybillimit_instances must be >= 1")
        for name in ("infer_samples", "infer_burn_in", "infer_steps",
                     "sumup_c_max", "whanau_walk_length"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")

    def fingerprint_parts(self) -> Tuple:
        return (
            int(self.route_length),
            -1 if self.sybillimit_instances is None else int(self.sybillimit_instances),
            int(self.infer_samples),
            int(self.infer_burn_in),
            int(self.infer_steps),
            int(self.sumup_c_max),
            int(self.whanau_walk_length),
        )


def default_adversarial_knobs(num_honest: int, *, fast: bool = True) -> AdversarialKnobs:
    """Scale-aware defaults: route lengths from the SybilGuard analysis,
    clamped so fast-mode grids stay interactive."""
    w = recommended_route_length(num_honest)
    if fast:
        return AdversarialKnobs(
            route_length=int(np.clip(w, 4, 20)),
            sybillimit_instances=32,
            infer_samples=80,
            infer_burn_in=40,
            infer_steps=2,
            sumup_c_max=max(2, num_honest // 10),
            whanau_walk_length=8,
        )
    return AdversarialKnobs(
        route_length=int(np.clip(w, 4, 64)),
        sybillimit_instances=None,
        infer_samples=300,
        infer_burn_in=150,
        infer_steps=5,
        sumup_c_max=max(2, num_honest // 10),
        whanau_walk_length=12,
    )


def _derive_seed(*parts) -> int:
    """An order-independent 63-bit seed from sweep coordinates.

    Cells draw their randomness from their *coordinates*, never from a
    shared stream, so results are independent of execution order,
    sharding and worker count."""
    return int(sweep_fingerprint("adversarial-seed", *parts)[:15], 16)


def run_defense_admission(
    defense: str,
    scenario: SybilScenario,
    suspects: np.ndarray,
    *,
    seed: int,
    knobs: AdversarialKnobs,
    policy: Optional[ExecutionPolicy] = None,
    verifier: int = 0,
) -> np.ndarray:
    """One verifier's boolean verdict per suspect under one defense.

    The admission rule per defense:

    * ``sybilguard`` / ``sybillimit`` — the protocols' own verdicts.
    * ``sybilinfer`` — membership in the sampled honest set.
    * ``sumup`` — the suspect's vote is fully collected.
    * ``whanau`` — the verifier can resolve the suspect's record key.
    * ``sybilrank`` — ranked within the top ``num_honest`` trust scores.
    """
    suspects = np.asarray(suspects, dtype=np.int64)
    if defense == "sybilguard":
        protocol = SybilGuard(scenario, knobs.route_length, seed=seed)
        return protocol.run(verifier, suspects, policy=policy).accepted
    if defense == "sybillimit":
        params = SybilLimitParams(
            route_length=knobs.route_length,
            num_instances=knobs.sybillimit_instances,
        )
        protocol = SybilLimit(scenario, params, seed=seed)
        return protocol.run(verifier, suspects, seed=seed, policy=policy).accepted
    if defense == "sybilinfer":
        params = SybilInferParams(
            num_samples=knobs.infer_samples,
            burn_in=knobs.infer_burn_in,
            steps_per_sample=knobs.infer_steps,
        )
        result = SybilInfer(scenario, params, seed=seed).run(verifier)
        return result.honest_mask()[suspects]
    if defense == "sumup":
        params = SumUpParams(c_max=knobs.sumup_c_max)
        return sumup_admission(scenario, verifier, suspects, params)
    if defense == "whanau":
        tables = build_whanau(scenario.graph, knobs.whanau_walk_length, seed=seed)
        return np.array(
            [tables.lookup(verifier, float(tables.keys[s])) for s in suspects],
            dtype=bool,
        )
    if defense == "sybilrank":
        result = sybilrank(scenario, [verifier], policy=policy)
        top = result.accept_top(scenario.num_honest)
        return np.isin(suspects, top)
    raise ConfigurationError(
        f"unknown defense {defense!r}; available: {', '.join(ADVERSARIAL_DEFENSES)}"
    )


@dataclass
class AdversarialSweepResult:
    """The full sweep grid plus frontier/bound accessors.

    ``counts[s, z, g, d]`` holds ``(honest_total, honest_accepted,
    sybil_total, sybil_accepted)`` for strategy ``s``, sybil size ``z``,
    budget ``g``, defense ``d``.
    """

    strategies: Tuple[str, ...]
    sybil_sizes: Tuple[int, ...]
    attack_budgets: Tuple[int, ...]
    defenses: Tuple[str, ...]
    route_length: int
    num_honest: int
    counts: np.ndarray

    def metrics(
        self, strategy: str, size: int, budget: int, defense: str
    ) -> AdmissionMetrics:
        """The admission statistics of one cell."""
        cell = self.counts[
            self.strategies.index(strategy),
            self.sybil_sizes.index(size),
            self.attack_budgets.index(budget),
            self.defenses.index(defense),
        ]
        return AdmissionMetrics(
            honest_total=int(cell[0]),
            honest_accepted=int(cell[1]),
            sybil_total=int(cell[2]),
            sybil_accepted=int(cell[3]),
        )

    def frontier(
        self, defense: str, strategy: str, size: Optional[int] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(budgets, sybil_admit_rate, honest_reject_rate)`` along g."""
        size = self.sybil_sizes[0] if size is None else size
        admit, reject = [], []
        for g in self.attack_budgets:
            m = self.metrics(strategy, size, g, defense)
            admit.append(m.sybil_acceptance_rate)
            reject.append(m.honest_rejection_rate)
        return (
            np.asarray(self.attack_budgets, dtype=np.int64),
            np.asarray(admit, dtype=np.float64),
            np.asarray(reject, dtype=np.float64),
        )

    def bound_comparison(self) -> List[Dict[str, float]]:
        """Admitted sybils vs the ``g * w`` security bound, per cell.

        Rows cover every positive-budget cell; ``within_bound`` says
        whether the defense kept its advertised O(w)-per-attack-edge
        guarantee on that attack.
        """
        per_edge = sybil_bound_per_attack_edge(self.route_length)
        rows: List[Dict[str, float]] = []
        for strategy in self.strategies:
            for size in self.sybil_sizes:
                for g in self.attack_budgets:
                    if g <= 0:
                        continue
                    for defense in self.defenses:
                        m = self.metrics(strategy, size, g, defense)
                        bound = per_edge * g
                        rows.append(
                            {
                                "strategy": strategy,
                                "size": int(size),
                                "budget": int(g),
                                "defense": defense,
                                "sybil_accepted": int(m.sybil_accepted),
                                "bound": float(bound),
                                "within_bound": bool(m.sybil_accepted <= bound),
                            }
                        )
        return rows


def _honest_suspects(
    num_honest: int, verifier: int, max_suspects: Optional[int], seed: int
) -> np.ndarray:
    """The fixed honest suspect sample shared by every cell."""
    pool = np.setdiff1d(np.arange(num_honest, dtype=np.int64), [int(verifier)])
    if max_suspects is not None and pool.size > max_suspects:
        rng = np.random.default_rng(_derive_seed(seed, "honest-suspects"))
        pool = np.sort(rng.choice(pool, size=max_suspects, replace=False))
    return pool


def adversarial_sweep(
    honest,
    *,
    strategies: Sequence[Union[str, AttackStrategy]],
    sybil_sizes: Sequence[int],
    attack_budgets: Sequence[int],
    defenses: Sequence[str] = ADVERSARIAL_DEFENSES,
    seed: int = 0,
    knobs: Optional[AdversarialKnobs] = None,
    policy: Optional[ExecutionPolicy] = None,
    max_suspects: Optional[int] = 400,
    verifier: int = 0,
) -> AdversarialSweepResult:
    """Sweep attacker strategy x sybil size x budget x defense.

    Each grid cell rebuilds its scenario from coordinates (one seed per
    (strategy, size), so budgets nest along g and every defense sees the
    identical attack), runs one defense, and reduces to four admission
    counts.  Cells are the sharding unit of
    :func:`~repro.core.runtime.run_sharded`: with
    ``policy.checkpoint_dir`` set, each finished cell persists and an
    interrupted sweep resumes without recomputation; worker count and
    execution mode never change the numbers.
    """
    policy = policy if policy is not None else ExecutionPolicy()
    resolved: List[AttackStrategy] = [
        get_attack_strategy(s) if isinstance(s, str) else s for s in strategies
    ]
    if not resolved:
        raise ConfigurationError("need at least one attack strategy")
    sybil_sizes = tuple(int(z) for z in sybil_sizes)
    attack_budgets = tuple(int(g) for g in attack_budgets)
    defenses = tuple(defenses)
    if not sybil_sizes or not attack_budgets or not defenses:
        raise ConfigurationError("need at least one size, budget and defense")
    unknown = [d for d in defenses if d not in ADVERSARIAL_DEFENSES]
    if unknown:
        raise ConfigurationError(
            f"unknown defenses {unknown!r}; available: {', '.join(ADVERSARIAL_DEFENSES)}"
        )
    if verifier != 0:
        # The verifier must be an honest node whose id survives the
        # honest-region embedding; 0 always does.
        raise ConfigurationError("the adversarial sweep verifies from node 0")
    if knobs is None:
        knobs = default_adversarial_knobs(honest.num_nodes)

    suspects_honest = _honest_suspects(honest.num_nodes, verifier, max_suspects, seed)
    cells = [
        (si, zi, gi, di)
        for si in range(len(resolved))
        for zi in range(len(sybil_sizes))
        for gi in range(len(attack_budgets))
        for di in range(len(defenses))
    ]

    def _run_cell(index: int) -> np.ndarray:
        si, zi, gi, di = cells[index]
        strategy = resolved[si]
        size = sybil_sizes[zi]
        g = attack_budgets[gi]
        defense = defenses[di]
        scenario = build_attack_scenario(
            honest,
            strategy,
            num_sybil=size,
            num_attack_edges=g,
            seed=_derive_seed(seed, "scenario", strategy.name, size),
        )
        suspects = np.concatenate([suspects_honest, scenario.sybil_nodes()])
        # g=0 cells all see the identical no-attack scenario; deriving
        # their defense seed without the attacker coordinates makes the
        # baseline column strategy-independent, not just statistically so.
        defense_coords = (
            ("baseline", g, defense) if g == 0 else (strategy.name, size, g, defense)
        )
        accepted = run_defense_admission(
            defense,
            scenario,
            suspects,
            seed=_derive_seed(seed, "defense", *defense_coords),
            knobs=knobs,
            policy=policy,
            verifier=verifier,
        )
        m = evaluate_admission(scenario, suspects, accepted)
        if OBS.enabled:
            OBS.add("sybil.attack.cells")
            OBS.add("sybil.attack.suspects_judged", int(suspects.size))
        return np.array(
            [m.honest_total, m.honest_accepted, m.sybil_total, m.sybil_accepted],
            dtype=np.float64,
        )

    def _serial_run(lo: int, hi: int) -> np.ndarray:
        return np.stack([_run_cell(i) for i in range(lo, hi)], axis=0)

    fingerprint = sweep_fingerprint(
        "adversarial",
        honest.indptr,
        honest.indices,
        [
            (s.name, s.attachment, s.region,
             -1 if s.branching is None else int(s.branching),
             int(s.degree), int(s.cluster_size))
            for s in resolved
        ],
        sybil_sizes,
        attack_budgets,
        defenses,
        int(seed),
        -1 if max_suspects is None else int(max_suspects),
        knobs.fingerprint_parts(),
    )
    with OBS.span(
        "sybil.attack.sweep",
        cells=len(cells),
        strategies=len(resolved),
        defenses=len(defenses),
    ):
        shards = run_sharded(
            kind="adversarial",
            total=len(cells),
            policy=policy,
            workers=resolve_workers(policy.workers),
            make_task=None,
            serial_run=_serial_run,
            fingerprint=fingerprint,
            use_pool=(policy.execution == "threads"),
            overshard=len(cells),
        )
    flat = np.concatenate(shards, axis=0)
    counts = flat.reshape(
        len(resolved), len(sybil_sizes), len(attack_budgets), len(defenses),
        _CELL_COLUMNS,
    )
    return AdversarialSweepResult(
        strategies=tuple(s.name for s in resolved),
        sybil_sizes=sybil_sizes,
        attack_budgets=attack_budgets,
        defenses=defenses,
        route_length=knobs.route_length,
        num_honest=int(honest.num_nodes),
        counts=counts,
    )


def run_adversarial_sweep(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "physics1",
    strategies: Optional[Sequence[str]] = None,
    sybil_sizes: Optional[Sequence[int]] = None,
    attack_budgets: Optional[Sequence[int]] = None,
    defenses: Sequence[str] = ADVERSARIAL_DEFENSES,
    sample_size: Optional[int] = None,
    max_suspects: Optional[int] = None,
) -> FigureResult:
    """The fig8-with-attackers experiment (CLI: ``adversarial-sweep``).

    One panel per defense; per attacker strategy, two series over the
    attack-edge budget g — admitted sybils (%) and rejected honest
    suspects (%).  g=0 is the no-attacker baseline of the historical
    Figure 8.  The notes carry the ``g * w`` security-bound verdicts.
    """
    graph = load_cached(dataset)
    if sample_size is None:
        sample_size = config.adversarial_sample_size
    if sample_size is not None and sample_size < graph.num_nodes:
        graph, _node_map = bfs_sample(graph, sample_size, seed=config.seed)
    if strategies is None:
        strategies = config.adversarial_strategies
    if sybil_sizes is None:
        sybil_sizes = config.adversarial_sybil_sizes
    if attack_budgets is None:
        attack_budgets = config.adversarial_budgets
    if max_suspects is None:
        max_suspects = 200 if config.is_fast else 1000
    knobs = default_adversarial_knobs(graph.num_nodes, fast=config.is_fast)
    result = adversarial_sweep(
        graph,
        strategies=strategies,
        sybil_sizes=list(sybil_sizes),
        attack_budgets=list(attack_budgets),
        defenses=defenses,
        seed=config.seed,
        knobs=knobs,
        policy=config.execution_policy,
        max_suspects=max_suspects,
    )

    size = result.sybil_sizes[0]
    figure = FigureResult(
        title=(
            f"Adversarial sweep: admission under attack on {dataset} "
            f"(n={result.num_honest}, sybil region {size}, w={result.route_length})"
        ),
        xlabel="attack-edge budget g (g=0 is the no-attacker baseline)",
        ylabel="rate (%)",
    )
    for defense in result.defenses:
        series: List[Series] = []
        for strategy in result.strategies:
            budgets, admit, reject = result.frontier(defense, strategy, size)
            # There are no sybils to admit at g=0; only the honest-reject
            # series carries the no-attacker baseline point.
            attacked = budgets > 0
            series.append(
                Series(
                    label=f"{strategy} sybil-admit",
                    x=budgets[attacked],
                    y=100.0 * admit[attacked],
                )
            )
            series.append(
                Series(label=f"{strategy} honest-reject", x=budgets, y=100.0 * reject)
            )
        figure.panels[defense] = series

    rows = result.bound_comparison()
    breaches = [r for r in rows if not r["within_bound"]]
    note_lines = [
        "Security bound: accepted sybils <= g * w "
        f"(w={result.route_length}; SybilLimit's t*g guarantee).",
        f"Cells with g>0: {len(rows)}; bound breaches: {len(breaches)}.",
    ]
    for row in breaches[:6]:
        note_lines.append(
            "  breach: {defense} vs {strategy} (size {size}, g={budget}): "
            "{sybil_accepted} sybils > bound {bound:.0f}".format(**row)
        )
    figure.notes = "\n".join(note_lines)
    return figure
