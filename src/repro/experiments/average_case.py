"""Average-case mixing time — the paper's Section 6 future work.

"In the near future, we will investigate building theoretical models
that consider the average case of the mixing time."  This experiment
builds the measurement side of that model: per-source hitting times
``T_i(eps) = min { t : || pi - pi^(i) P^t || < eps }`` summarised as

* the worst case (the classical mixing time, what SLEM bounds),
* the mean and median over sources (the "average case" the paper argues
  the defenses actually depend on), and
* the fraction of sources within the literature's 10-15-step budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core import TransitionOperator, sample_sources
from ..errors import ConvergenceError
from ..datasets import load_cached
from .config import ExperimentConfig, FAST
from .harness import TableResult

__all__ = ["AverageCaseRow", "run_average_case"]


@dataclass(frozen=True)
class AverageCaseRow:
    """Hitting-time summary for one dataset at one epsilon."""

    dataset: str
    epsilon: float
    sources_measured: int
    worst: int
    mean: float
    median: float
    within_15_steps: float  # fraction of sources with T_i <= 15
    unconverged: int  # sources that never reached eps within the budget


def run_average_case(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "enron", "wiki_vote", "facebook"),
    epsilon: float = 0.1,
    max_steps: Optional[int] = None,
) -> List[AverageCaseRow]:
    """Per-source hitting-time statistics for each dataset.

    All sampled sources are evolved as one chunked block with early-exit
    masking (:meth:`~repro.core.operators.MarkovOperator.hitting_times`):
    rows that reach the epsilon ball are retired from the block, so the
    per-step SpMM shrinks as sources converge.
    """
    budget = max_steps if max_steps is not None else 4 * config.max_walk
    rows: List[AverageCaseRow] = []
    for name in datasets:
        graph = load_cached(name)
        sources = sample_sources(graph, config.sampled_sources, seed=config.seed)
        operator = TransitionOperator(graph)
        times = operator.hitting_times(
            sources, epsilon, max_steps=budget, policy=config.execution_policy
        ).times
        converged = times[times >= 0]
        if converged.size == 0:
            raise ConvergenceError(f"no source of {name} converged within {budget} steps")
        rows.append(
            AverageCaseRow(
                dataset=name,
                epsilon=epsilon,
                sources_measured=int(sources.size),
                worst=int(converged.max()),
                mean=float(converged.mean()),
                median=float(np.median(converged)),
                within_15_steps=float((converged <= 15).mean()),
                unconverged=int((times < 0).sum()),
            )
        )
    return rows


def average_case_table(rows: List[AverageCaseRow]) -> TableResult:
    """Render the Section 6 average-vs-worst comparison."""
    return TableResult(
        title="Average-case vs worst-case mixing time "
        f"(per-source hitting times of eps={rows[0].epsilon if rows else '?'})",
        headers=[
            "Dataset",
            "sources",
            "worst T",
            "mean T",
            "median T",
            "share <= 15 steps",
            "unconverged",
        ],
        rows=[
            [
                row.dataset,
                str(row.sources_measured),
                str(row.worst),
                f"{row.mean:.1f}",
                f"{row.median:.1f}",
                f"{row.within_15_steps:.1%}",
                str(row.unconverged),
            ]
            for row in rows
        ],
    )
