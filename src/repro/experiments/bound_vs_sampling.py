"""Figure 5 — SLEM lower bound vs sampled per-source mixing (physics).

The paper aggregates the brute-force measurements of Figures 3-4 "by
sorting eps at each t and averaging values in various intervals as
percentiles" and overlays the SLEM lower bound.  The observation: most
sources beat the SLEM bound (the bound tracks the *worst* source), yet
even the majority is far slower than the walk lengths SybilLimit used
(10-15).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import (
    PAPER_BANDS,
    PerSourceMixing,
    epsilon_for_walk_length,
    percentile_bands,
    slem,
)
from ..datasets import load_cached
from .cdfs import measure_physics
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_figure5", "bound_vs_sampling_figure"]

#: Band labels in plot order, mapped to display names echoing the figure
#: legend ("Top 99.9%" marks the slowest-converging tail).
_BAND_LABELS = {
    "best10": "best 10% of sources",
    "median20": "median 20% of sources",
    "worst10": "worst 10% of sources (top 99.9%)",
}


def bound_vs_sampling_figure(
    measurements: Dict[str, PerSourceMixing],
    mus: Dict[str, float],
    *,
    title: str,
) -> FigureResult:
    """Panels per dataset: percentile bands of eps(t) + the SLEM bound.

    All series share the x axis (walk length) and plot the variation
    distance reached, so the SLEM bound is inverted into eps-at-t via
    :func:`~repro.core.epsilon_for_walk_length`.
    """
    figure = FigureResult(
        title=title,
        xlabel="walk length t",
        ylabel="variation distance eps reached at t",
    )
    for name, measurement in measurements.items():
        bands = percentile_bands(measurement, PAPER_BANDS)
        series: List[Series] = []
        for key, label in _BAND_LABELS.items():
            series.append(Series(label=label, x=bands.walk_lengths, y=bands.band(key)))
        bound = np.asarray(
            [epsilon_for_walk_length(mus[name], int(t)) for t in bands.walk_lengths]
        )
        series.append(Series(label="SLEM lower bound", x=bands.walk_lengths, y=bound))
        figure.panels[name] = series
    return figure


def run_figure5(config: ExperimentConfig = FAST) -> FigureResult:
    """Figure 5: lower bound vs brute-force sampling on physics graphs.

    The per-source measurement rides the batched Markov-operator layer
    (via :func:`~repro.experiments.cdfs.measure_physics`); the SLEM is
    the only per-dataset spectral solve.
    """
    walks = sorted(set(config.short_walks) | {w for w in config.long_walks if w <= config.max_walk})
    measurements = measure_physics(walks, config)
    graphs = {name: load_cached(name) for name in measurements}
    mus = {name: slem(graphs[name]) for name in measurements}
    return bound_vs_sampling_figure(
        measurements,
        mus,
        title="Figure 5: Lower bound of the mixing time vs sampled measurement (physics datasets)",
    )
