"""Figures 3 and 4 — CDFs of the variation distance across sources.

For the three physics co-authorship graphs the paper computes, "for
every possible node in the graph, brute-forcefully", the total variation
distance after walks of length w, and plots the CDF across sources:

* Figure 3: short walks w ∈ {1, 5, 10, 20, 40};
* Figure 4: long walks w ∈ {80, 100, 200, 300, 400, 500}.

The claims: at w = 40 most sources are still far from stationarity
(distances ≫ 0.1), and even at w = 500 a tail of sources has not
converged — the per-source heterogeneity behind the average-vs-worst-case
discussion in Section 5.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..core import cdf_at_walk_length, measure_mixing, PerSourceMixing
from ..datasets import load_cached, physics_dataset_names
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["measure_physics", "run_figure3", "run_figure4", "cdf_figure"]


def measure_physics(
    walks: Sequence[int],
    config: ExperimentConfig = FAST,
    *,
    names: Sequence[str] = (),
) -> Dict[str, PerSourceMixing]:
    """Per-source distance measurements on the physics datasets.

    ``config.brute_force_sources`` selects all-sources (full mode) or a
    subsample (fast mode).
    """
    names = list(names) or physics_dataset_names()
    out: Dict[str, PerSourceMixing] = {}
    for name in names:
        graph = load_cached(name)
        out[name] = measure_mixing(
            graph,
            sorted(walks),
            sources=config.brute_force_sources,
            seed=config.seed,
            policy=config.execution_policy,
        )
    return out


def cdf_figure(
    measurements: Dict[str, PerSourceMixing],
    walks: Sequence[int],
    *,
    title: str,
) -> FigureResult:
    """CDF panels, one per dataset, one series per walk length."""
    figure = FigureResult(
        title=title,
        xlabel="total variation distance to pi",
        ylabel="CDF over sources",
    )
    for name, measurement in measurements.items():
        series: List[Series] = []
        for w in walks:
            values, cdf = cdf_at_walk_length(measurement, w)
            series.append(Series(label=f"w={w}", x=values, y=cdf))
        figure.panels[name] = series
    return figure


def run_figure3(config: ExperimentConfig = FAST) -> FigureResult:
    """Figure 3: CDF of variation distance, short walks, physics graphs."""
    measurements = measure_physics(config.short_walks, config)
    return cdf_figure(
        measurements,
        config.short_walks,
        title="Figure 3: CDF of mixing (short walks) for the physics datasets",
    )


def run_figure4(config: ExperimentConfig = FAST) -> FigureResult:
    """Figure 4: CDF of variation distance, long walks, physics graphs."""
    walks = [w for w in config.long_walks if w <= config.max_walk]
    measurements = measure_physics(walks, config)
    return cdf_figure(
        measurements,
        walks,
        title="Figure 4: CDF of mixing (long walks) for the physics datasets",
    )
