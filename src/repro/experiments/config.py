"""Experiment configuration: one switch between *fast* and *full* runs.

Every experiment runner takes an :class:`ExperimentConfig`.  ``fast``
(the default, used by the pytest-benchmark suite) shrinks source samples
and walk-length grids so the whole suite finishes in minutes; ``full``
matches the paper's parameters (1000 sampled sources, brute force over
all sources on the physics graphs, walk lengths to 500).  The *series
shapes* are the same in both modes — fast mode only adds sampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.runtime import ExecutionPolicy
from ..errors import ConfigurationError

__all__ = ["ExperimentConfig", "FAST", "FULL", "validate_workers"]


def validate_workers(workers: Optional[int]) -> Optional[int]:
    """Parse-time validation of a ``workers`` knob; returns it unchanged.

    Accepts ``None`` (serial), ``-1`` (all cores) and positive integers.
    Rejects ``0``, other negatives, booleans and non-integers with
    :class:`~repro.errors.ConfigurationError` — *before* any sweep runs,
    so a typo'd ``--workers`` fails in milliseconds instead of silently
    degrading a multi-hour run.  (The runtime-level
    :func:`repro.core.parallel.resolve_workers` keeps its lenient
    ``0 -> serial`` contract for programmatic callers; this gate is the
    strict front door for configuration surfaces.)
    """
    if workers is None:
        return None
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an integer, got {workers!r} ({type(workers).__name__})"
        )
    if workers == 0:
        raise ConfigurationError(
            "workers=0 is ambiguous; use workers=None (or omit the flag) for serial"
        )
    if workers < -1:
        raise ConfigurationError(f"workers must be >= -1, got {workers}")
    return workers


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by all experiment runners.

    Attributes
    ----------
    mode:
        ``"fast"`` or ``"full"`` (affects the derived properties below).
    seed:
        Master seed; every runner derives independent streams from it.
    epsilon_grid:
        The ε values at which bound curves are reported (Figures 1-2).
    short_walks / long_walks:
        Figure 3 / Figure 4 walk-length checkpoints (paper values).
    evolution_block_size:
        Sources per chunk in the batched Markov-operator evolution
        (``None`` → sized automatically from the operator layer's memory
        budget; see :func:`repro.core.operators.resolve_block_size`).
        Exposed as a knob so scaling studies can trade memory for fewer,
        larger SpMM calls.
    workers:
        Process count for the shared-memory sweep runtime
        (:mod:`repro.core.parallel`); forwarded by every runner to its
        multi-source measurements.  ``None``/``1`` stays serial, ``-1``
        uses every core, and any value is bit-for-bit neutral — parallel
        sweeps reproduce the serial numbers exactly, so results never
        depend on this knob.  Set via the ``--workers`` CLI flag.
        Validated at construction time by :func:`validate_workers`.
    telemetry:
        When true, the process-wide :data:`repro.obs.OBS` registry is
        enabled before the runner executes (via
        :func:`repro.experiments.harness.run_with_manifest` or the CLI),
        so hot paths record metrics and spans.  Telemetry is provably
        inert — flipping this never changes any numeric output.
    policy:
        Optional :class:`~repro.core.runtime.ExecutionPolicy` bundling
        *all* execution knobs (workers, block size, retries, shard
        timeout, checkpoint directory).  Mutually exclusive with the
        legacy ``workers``/``evolution_block_size`` fields; runners read
        the merged view via :attr:`execution_policy` either way.  Set
        via the ``--checkpoint-dir``/``--max-retries``/``--shard-timeout``
        CLI flags.
    """

    mode: str = "fast"
    seed: int = 20101103  # IMC'10 started November 1-3, 2010
    #: Restrict dataset-driven runners (table1, figures) to these
    #: registry names; ``None`` = each runner's default roster.  The only
    #: way the paper-scale ``huge`` tier ever enters a run — default
    #: rosters exclude it.  Set via the ``--datasets`` CLI flag.
    datasets: Optional[Tuple[str, ...]] = None
    epsilon_grid: Tuple[float, ...] = (0.25, 0.1, 0.05, 0.01, 1e-3, 1e-4)
    short_walks: Tuple[int, ...] = (1, 5, 10, 20, 40)
    long_walks: Tuple[int, ...] = (80, 100, 200, 300, 400, 500)
    evolution_block_size: Optional[int] = None
    workers: Optional[int] = None
    telemetry: bool = False
    policy: Optional[ExecutionPolicy] = None

    def __post_init__(self):
        if self.mode not in ("fast", "full"):
            raise ConfigurationError("mode must be 'fast' or 'full'")
        if self.datasets is not None:
            names = tuple(self.datasets)
            if not names or not all(isinstance(n, str) for n in names):
                raise ConfigurationError(
                    "datasets must be a non-empty sequence of registry names"
                )
            object.__setattr__(self, "datasets", names)
        validate_workers(self.workers)
        if self.policy is not None:
            if not isinstance(self.policy, ExecutionPolicy):
                raise ConfigurationError(
                    f"policy must be an ExecutionPolicy, got {type(self.policy).__name__}"
                )
            if self.workers is not None or self.evolution_block_size is not None:
                raise ConfigurationError(
                    "pass either policy= or the legacy workers=/evolution_block_size= "
                    "knobs, not both"
                )
            validate_workers(self.policy.workers)

    @property
    def execution_policy(self) -> ExecutionPolicy:
        """The :class:`~repro.core.runtime.ExecutionPolicy` runners forward.

        An explicit ``policy=`` wins (with ``telemetry`` folded in);
        otherwise the legacy ``workers`` / ``evolution_block_size``
        knobs are packaged into a policy, so every runner goes through
        one execution surface regardless of how the config was built.
        """
        if self.policy is not None:
            if self.policy.telemetry != self.telemetry:
                from dataclasses import replace

                return replace(self.policy, telemetry=self.telemetry)
            return self.policy
        return ExecutionPolicy(
            workers=self.workers,
            block_size=self.evolution_block_size,
            telemetry=self.telemetry,
        )

    @property
    def is_fast(self) -> bool:
        return self.mode == "fast"

    @property
    def sampled_sources(self) -> int:
        """Sources for the sampling measurement (paper: 1000)."""
        return 120 if self.is_fast else 1000

    @property
    def brute_force_sources(self):
        """Sources for the "every possible source" experiments
        (Figures 3-5); ``None`` means all nodes."""
        return 250 if self.is_fast else None

    @property
    def max_walk(self) -> int:
        """Longest walk evolved in sampling measurements."""
        return 300 if self.is_fast else 800

    @property
    def figure7_sizes(self) -> Tuple[int, ...]:
        """BFS sample sizes standing in for the paper's 10K/100K/1000K."""
        return (800, 2500, 8000) if self.is_fast else (1000, 3200, 10000)

    @property
    def figure8_walks(self) -> Tuple[int, ...]:
        """Route lengths swept in the SybilLimit admission experiment."""
        if self.is_fast:
            return (5, 10, 20, 40, 80, 160, 320)
        return (5, 10, 15, 20, 30, 40, 60, 80, 120, 160, 240, 320, 480)

    @property
    def adversarial_sample_size(self) -> Optional[int]:
        """Honest-region BFS sample for the adversarial sweep
        (``None`` would use the full stand-in graph)."""
        return 400 if self.is_fast else 2500

    @property
    def adversarial_strategies(self) -> Tuple[str, ...]:
        """Attacker strategies swept by ``adversarial-sweep``.

        Fast mode picks one representative per attachment policy plus
        the cluster-bomb topology; full mode sweeps the whole registry.
        """
        if self.is_fast:
            return ("random", "targeted", "seam", "cluster-bomb")
        from ..sybil.attacks import available_attack_strategies

        return available_attack_strategies()

    @property
    def adversarial_sybil_sizes(self) -> Tuple[int, ...]:
        """Sybil-region sizes swept by ``adversarial-sweep``."""
        return (60,) if self.is_fast else (200, 500)

    @property
    def adversarial_budgets(self) -> Tuple[int, ...]:
        """Attack-edge budgets g (0 = the no-attacker baseline)."""
        return (0, 2, 6, 12, 24) if self.is_fast else (0, 4, 8, 16, 32, 64)

    @property
    def trend_windows(self) -> int:
        """Windows sampled per temporal dataset in fig3-over-time."""
        return 6 if self.is_fast else 12

    @property
    def trend_sources(self) -> int:
        """Fixed sources measured on every window of a trend sweep."""
        return 40 if self.is_fast else 200

    @property
    def trim_walks(self) -> Tuple[int, ...]:
        """Walk checkpoints for the Figure 6 average-mixing panel
        (the paper's w = 80..500 grid, truncated in fast mode)."""
        return (80, 100, 200, 300) if self.is_fast else (80, 100, 200, 300, 400, 500)


FAST = ExperimentConfig(mode="fast")
FULL = ExperimentConfig(mode="full")
