"""Directed-to-undirected conversion ablation (Section 4's caveat).

The paper converts its directed datasets to undirected before measuring,
"similar to what is performed in other work" — a methodological step
that itself changes the mixing time.  This ablation quantifies the step:
starting from a directed stand-in (each undirected community edge kept
in one or both directions), it measures

* the directed walk's convergence (teleporting operator, since pure
  directed chains on social graphs are rarely ergodic), and
* the converted undirected walk's convergence,

on the same node set, exposing how much the standard conversion flatters
the mixing estimate.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core import TransitionOperator
from ..core.directed import DirectedTransitionOperator
from ..datasets import load_cached
from ..graph import Graph
from ..graph.digraph import DiGraph, largest_strongly_connected_component
from .._util import as_rng
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["make_directed_standin", "run_directed_conversion"]


def make_directed_standin(
    graph: Graph,
    *,
    reciprocity: float = 0.5,
    seed=None,
) -> DiGraph:
    """Orient an undirected graph into a digraph with given reciprocity.

    Each undirected edge becomes a mutual arc pair with probability
    ``reciprocity`` and a single uniformly-oriented arc otherwise —
    matching how directed OSN datasets (wiki-vote, LiveJournal) look:
    a mix of mutual and one-way links.
    """
    if not 0.0 <= reciprocity <= 1.0:
        raise ValueError("reciprocity must be in [0, 1]")
    rng = as_rng(seed)
    edges = graph.edges()
    arcs: List[Tuple[int, int]] = []
    mutual = rng.random(edges.shape[0]) < reciprocity
    flip = rng.random(edges.shape[0]) < 0.5
    for i, (u, v) in enumerate(edges):
        if mutual[i]:
            arcs.append((int(u), int(v)))
            arcs.append((int(v), int(u)))
        elif flip[i]:
            arcs.append((int(v), int(u)))
        else:
            arcs.append((int(u), int(v)))
    return DiGraph.from_edges(arcs, num_nodes=graph.num_nodes)


def run_directed_conversion(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "physics1",
    reciprocity: float = 0.5,
    damping: float = 0.99,
    num_sources: int = 25,
    walk_lengths: Sequence[int] = (5, 10, 20, 40, 80, 160),
) -> FigureResult:
    """Directed vs converted-undirected convergence on one dataset."""
    base = load_cached(dataset)
    digraph = make_directed_standin(base, reciprocity=reciprocity, seed=config.seed)
    scc, node_map = largest_strongly_connected_component(digraph)
    undirected = scc.to_undirected()

    walks = sorted(w for w in walk_lengths if w <= config.max_walk)
    rng = as_rng(config.seed)
    sources = rng.choice(scc.num_nodes, size=min(num_sources, scc.num_nodes), replace=False)

    # Both chains route through the shared Markov-operator block API: one
    # operator per chain (the directed stationary power iteration runs
    # once, not per source), all sources evolved as one chunked block.
    directed_op = DirectedTransitionOperator(scc, damping=damping)
    directed_mean = directed_op.variation_curves(
        sources, walks, policy=config.execution_policy
    ).mean(axis=0)
    undirected_op = TransitionOperator(undirected, check_aperiodic=False)
    undirected_mean = undirected_op.variation_curves(
        sources, walks, policy=config.execution_policy
    ).mean(axis=0)

    figure = FigureResult(
        title=f"Directed vs undirected-converted mixing on {dataset} "
        f"(reciprocity={reciprocity}, SCC n={scc.num_nodes})",
        xlabel="walk length",
        ylabel="mean variation distance to stationary",
        notes="the conversion step of Section 4 changes the measured chain",
    )
    figure.panels["main"] = [
        Series(
            label=f"directed walk (damping={damping})",
            x=np.asarray(walks, float),
            y=directed_mean,
        ),
        Series(label="undirected conversion", x=np.asarray(walks, float), y=undirected_mean),
    ]
    return figure
