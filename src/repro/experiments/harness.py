"""Result containers and text renderers for the experiment suite.

Every experiment runner returns one of these structures; the benchmark
harness and the CLI print them with the render functions, producing the
same rows/series the paper's tables and figures report.

:func:`run_with_manifest` is the instrumented front door: it runs any
runner under a telemetry span and assembles the JSON run-manifest
(:mod:`repro.obs.manifest`) recording seed, config, datasets touched,
environment and a metric snapshot — written next to the results when an
output directory is given.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..obs import OBS, build_run_manifest, validate_run_manifest, write_run_manifest

__all__ = [
    "TableResult",
    "Series",
    "FigureResult",
    "render_table",
    "render_figure",
    "run_with_manifest",
    "table_to_csv",
    "figure_to_csv",
]


@dataclass
class TableResult:
    """A printable table (Table 1 and summary tables)."""

    title: str
    headers: List[str]
    rows: List[List[str]]

    def column(self, name: str) -> List[str]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


@dataclass
class Series:
    """One plotted line: y(x) plus a label."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise ValueError(f"series {self.label!r}: x and y must align")


@dataclass
class FigureResult:
    """A figure reproduced as its constituent series.

    ``panels`` maps panel name (e.g. dataset) to its series list; figures
    with a single panel use the key ``"main"``.
    """

    title: str
    xlabel: str
    ylabel: str
    panels: Dict[str, List[Series]] = field(default_factory=dict)
    notes: str = ""

    def panel(self, name: str) -> List[Series]:
        return self.panels[name]

    def series(self, panel: str, label: str) -> Series:
        for s in self.panels[panel]:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in panel {panel!r}")


def run_with_manifest(
    name: str,
    runner: Callable,
    config,
    *,
    out_dir=None,
) -> Tuple[object, dict, Optional[Path]]:
    """Run ``runner(config)`` under a telemetry span and build its manifest.

    Returns ``(result, manifest, manifest_path)``; ``manifest_path`` is
    ``None`` unless ``out_dir`` was given, in which case the validated
    manifest is written to ``out_dir/<name>.manifest.json``.

    * ``config.telemetry`` (when present and true) enables the
      process-wide :data:`repro.obs.OBS` registry before the run.
    * Datasets are recorded by diffing the dataset load log
      (:func:`repro.datasets.loaded_dataset_names`) around the run.
    * The manifest embeds a registry snapshot either way — an empty one
      documents that telemetry was off, keeping the run auditable.
    """
    from ..datasets import loaded_dataset_names

    if getattr(config, "telemetry", False) and not OBS.enabled:
        OBS.enable()
    before = set(loaded_dataset_names())
    start = time.perf_counter()
    with OBS.span(
        f"experiment.{name}",
        mode=getattr(config, "mode", None),
        seed=getattr(config, "seed", None),
    ):
        result = runner(config)
    elapsed = time.perf_counter() - start
    datasets = [n for n in loaded_dataset_names() if n not in before]
    kwargs = dict(
        config=config,
        seed=getattr(config, "seed", None),
        datasets=datasets,
        extra={"elapsed_seconds": elapsed},
    )
    if out_dir is not None:
        path = Path(out_dir) / f"{name}.manifest.json"
        manifest = write_run_manifest(path, name, **kwargs)
        return result, manifest, path
    manifest = validate_run_manifest(build_run_manifest(name, **kwargs))
    return result, manifest, None


def _format_value(value: float) -> str:
    if not np.isfinite(value):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.4g}"


def render_table(table: TableResult) -> str:
    """Fixed-width text rendering of a :class:`TableResult`."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title, ""]
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(table.headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in table.rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_figure(figure: FigureResult, *, max_points: int = 12) -> str:
    """Text rendering of a figure: per panel, per series, aligned x/y rows.

    Long series are thinned to ``max_points`` evenly spaced samples so
    terminal output stays readable; the underlying data is untouched.
    """
    lines = [figure.title, f"x = {figure.xlabel}, y = {figure.ylabel}", ""]
    if figure.notes:
        lines.insert(1, figure.notes)
    for panel_name, series_list in figure.panels.items():
        if len(figure.panels) > 1:
            lines.append(f"[{panel_name}]")
        for series in series_list:
            idx = np.arange(series.x.size)
            if idx.size > max_points:
                idx = np.unique(np.linspace(0, idx.size - 1, max_points).astype(int))
            xs = "  ".join(_format_value(v).rjust(8) for v in series.x[idx])
            ys = "  ".join(_format_value(v).rjust(8) for v in series.y[idx])
            lines.append(f"  {series.label}")
            lines.append(f"    x: {xs}")
            lines.append(f"    y: {ys}")
        lines.append("")
    return "\n".join(lines)


def table_to_csv(table: TableResult) -> str:
    """CSV rendering of a :class:`TableResult` (header row + data rows).

    Cells containing commas or quotes are quoted per RFC 4180 so the
    output loads directly into pandas/R/spreadsheets.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    writer.writerows(table.rows)
    return buffer.getvalue()


def figure_to_csv(figure: FigureResult) -> str:
    """Long-format CSV of a figure: panel, series, x, y — one row per point."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["panel", "series", "x", "y"])
    for panel, series_list in figure.panels.items():
        for series in series_list:
            for x, y in zip(series.x, series.y):
                writer.writerow([panel, series.label, repr(float(x)), repr(float(y))])
    return buffer.getvalue()
