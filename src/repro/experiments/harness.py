"""Result containers and text renderers for the experiment suite.

Every experiment runner returns one of these structures; the benchmark
harness and the CLI print them with the render functions, producing the
same rows/series the paper's tables and figures report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

__all__ = [
    "TableResult",
    "Series",
    "FigureResult",
    "render_table",
    "render_figure",
    "table_to_csv",
    "figure_to_csv",
]


@dataclass
class TableResult:
    """A printable table (Table 1 and summary tables)."""

    title: str
    headers: List[str]
    rows: List[List[str]]

    def column(self, name: str) -> List[str]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]


@dataclass
class Series:
    """One plotted line: y(x) plus a label."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.x.shape != self.y.shape:
            raise ValueError(f"series {self.label!r}: x and y must align")


@dataclass
class FigureResult:
    """A figure reproduced as its constituent series.

    ``panels`` maps panel name (e.g. dataset) to its series list; figures
    with a single panel use the key ``"main"``.
    """

    title: str
    xlabel: str
    ylabel: str
    panels: Dict[str, List[Series]] = field(default_factory=dict)
    notes: str = ""

    def panel(self, name: str) -> List[Series]:
        return self.panels[name]

    def series(self, panel: str, label: str) -> Series:
        for s in self.panels[panel]:
            if s.label == label:
                return s
        raise KeyError(f"no series {label!r} in panel {panel!r}")


def _format_value(value: float) -> str:
    if not np.isfinite(value):
        return "inf" if value > 0 else "-inf"
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.3g}"
    return f"{value:.4g}"


def render_table(table: TableResult) -> str:
    """Fixed-width text rendering of a :class:`TableResult`."""
    widths = [len(h) for h in table.headers]
    for row in table.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [table.title, ""]
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(table.headers))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in table.rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_figure(figure: FigureResult, *, max_points: int = 12) -> str:
    """Text rendering of a figure: per panel, per series, aligned x/y rows.

    Long series are thinned to ``max_points`` evenly spaced samples so
    terminal output stays readable; the underlying data is untouched.
    """
    lines = [figure.title, f"x = {figure.xlabel}, y = {figure.ylabel}", ""]
    if figure.notes:
        lines.insert(1, figure.notes)
    for panel_name, series_list in figure.panels.items():
        if len(figure.panels) > 1:
            lines.append(f"[{panel_name}]")
        for series in series_list:
            idx = np.arange(series.x.size)
            if idx.size > max_points:
                idx = np.unique(np.linspace(0, idx.size - 1, max_points).astype(int))
            xs = "  ".join(_format_value(v).rjust(8) for v in series.x[idx])
            ys = "  ".join(_format_value(v).rjust(8) for v in series.y[idx])
            lines.append(f"  {series.label}")
            lines.append(f"    x: {xs}")
            lines.append(f"    y: {ys}")
        lines.append("")
    return "\n".join(lines)


def table_to_csv(table: TableResult) -> str:
    """CSV rendering of a :class:`TableResult` (header row + data rows).

    Cells containing commas or quotes are quoted per RFC 4180 so the
    output loads directly into pandas/R/spreadsheets.
    """
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    writer.writerows(table.rows)
    return buffer.getvalue()


def figure_to_csv(figure: FigureResult) -> str:
    """Long-format CSV of a figure: panel, series, x, y — one row per point."""
    import csv
    import io

    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["panel", "series", "x", "y"])
    for panel, series_list in figure.panels.items():
        for series in series_list:
            for x, y in zip(series.x, series.y):
                writer.writerow([panel, series.label, repr(float(x)), repr(float(y))])
    return buffer.getvalue()
