"""Figures 1 and 2 — SLEM lower bound of the mixing time vs epsilon.

For each dataset the paper plots equation (4)'s lower bound
``T(eps) >= mu / (2(1-mu)) * ln(1/2eps)`` over a range of epsilon.  The
figures' claims:

* Figure 1 (small datasets): acquaintance graphs (physics, Enron,
  Epinion) need walks of 200-400 for eps = 0.1; wiki-vote/Slashdot are
  much faster.
* Figure 2 (large datasets): LiveJournal needs 1500-2500; DBLP, Youtube
  and Facebook sit around 100-400.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import lower_bound_curve
from ..datasets import get_spec, large_dataset_names, small_dataset_names
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series
from .table1 import collect_slems

__all__ = ["run_figure1", "run_figure2", "lower_bound_figure"]


def lower_bound_figure(
    names: List[str],
    config: ExperimentConfig = FAST,
    *,
    title: str,
    mus: Optional[Dict[str, float]] = None,
) -> FigureResult:
    """Build the bound-vs-epsilon figure for the given datasets."""
    mus = mus if mus is not None else collect_slems(config, names=names)
    figure = FigureResult(
        title=title,
        xlabel="epsilon (total variation distance)",
        ylabel="lower bound on mixing time (walk length)",
    )
    series: List[Series] = []
    for name in names:
        curve = lower_bound_curve(mus[name], eps_min=1e-4, eps_max=0.45, points=48, label=name)
        series.append(Series(label=get_spec(name).table1_label, x=curve.epsilons, y=curve.lengths))
    figure.panels["main"] = series
    return figure


def run_figure1(config: ExperimentConfig = FAST, *, mus: Optional[Dict[str, float]] = None) -> FigureResult:
    """Figure 1: lower bound of the mixing time, small datasets."""
    return lower_bound_figure(
        small_dataset_names(),
        config,
        title="Figure 1: Lower bound of the mixing time (small data sets)",
        mus=mus,
    )


def run_figure2(config: ExperimentConfig = FAST, *, mus: Optional[Dict[str, float]] = None) -> FigureResult:
    """Figure 2: lower bound of the mixing time, large datasets."""
    return lower_bound_figure(
        large_dataset_names(),
        config,
        title="Figure 2: Lower bound of the mixing time (large data sets)",
        mus=mus,
    )
