"""Replica stability of the synthetic stand-ins.

The registry's default seeds are deterministic, which raises a fair
question: are the reproduced mixing times a property of the *recipes* or
of lucky seeds?  This runner regenerates each dataset with independent
seeds and reports the spread of the SLEM-derived T(0.1) across replicas.
The benches assert the relative spread is small and that the paper's
orderings (acquaintance slower than OSN, LiveJournal slowest) hold for
*every* replica, not just the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core import mixing_time_lower_bound, slem
from ..datasets import generate, get_spec
from .config import ExperimentConfig, FAST
from .harness import TableResult

__all__ = ["ReplicaStats", "run_replication", "replication_table"]


@dataclass(frozen=True)
class ReplicaStats:
    """SLEM / T(0.1) spread across replicas of one dataset."""

    dataset: str
    replicas: int
    mus: np.ndarray
    t01: np.ndarray

    @property
    def t01_mean(self) -> float:
        return float(self.t01.mean())

    @property
    def t01_rel_spread(self) -> float:
        """Coefficient of variation of T(0.1) across replicas."""
        mean = self.t01.mean()
        return float(self.t01.std() / mean) if mean else float("nan")


def run_replication(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "enron", "wiki_vote", "facebook"),
    replicas: int = 4,
    epsilon: float = 0.1,
) -> List[ReplicaStats]:
    """Generate ``replicas`` independent copies of each dataset and
    measure each one's SLEM."""
    if replicas < 2:
        raise ValueError("need at least 2 replicas for a spread")
    out: List[ReplicaStats] = []
    for name in datasets:
        spec = get_spec(name)
        mus = []
        for r in range(replicas):
            graph = generate(spec, seed=config.seed + 1000 * r + 1)
            mus.append(slem(graph))
        mus = np.asarray(mus)
        t01 = np.asarray([mixing_time_lower_bound(mu, epsilon) for mu in mus])
        out.append(ReplicaStats(dataset=name, replicas=replicas, mus=mus, t01=t01))
    return out


def replication_table(stats: List[ReplicaStats]) -> TableResult:
    """Render replica spreads."""
    return TableResult(
        title="Replica stability: SLEM-derived T(0.1) across independently "
        "seeded stand-in generations",
        headers=["Dataset", "replicas", "mean mu", "mean T(0.1)", "min T", "max T", "rel spread"],
        rows=[
            [
                s.dataset,
                str(s.replicas),
                f"{s.mus.mean():.4f}",
                f"{s.t01_mean:.0f}",
                f"{s.t01.min():.0f}",
                f"{s.t01.max():.0f}",
                f"{s.t01_rel_spread:.1%}",
            ]
            for s in stats
        ],
    )
