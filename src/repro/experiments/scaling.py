"""Figure 7 — sampling vs lower bound across BFS sample sizes.

The paper BFS-samples 10K/100K/1000K-node subgraphs of the four large
datasets (Facebook A/B, LiveJournal A/B) and, per sample, overlays the
SLEM lower bound with percentile bands of the 1000-source sampled
measurement — 12 panels.  Stand-ins are ~100x smaller, so the sample
grid is scaled accordingly (``config.figure7_sizes``).

The claims preserved: per-source percentiles beat the SLEM bound by
orders of magnitude in eps; LiveJournal panels mix far slower than
Facebook panels; larger samples of the same graph mix slower.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core import (
    PAPER_BANDS,
    epsilon_for_walk_length,
    measure_mixing,
    percentile_bands,
    slem,
)
from ..datasets import figure7_dataset_names, load_cached
from ..sampling import bfs_sample
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_figure7"]

_BAND_LABELS = {
    "best10": "best 10% of sources",
    "median20": "median 20% of sources",
    "worst10": "worst 10% of sources",
}


def _walk_checkpoints(config: ExperimentConfig) -> List[int]:
    grid = [5, 10, 20, 40, 80, 160, 240, 320, 480, 640, 800]
    return [w for w in grid if w <= config.max_walk]


def run_figure7(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = (),
    sizes: Sequence[int] = (),
) -> FigureResult:
    """All panels of Figure 7 (dataset x sample size)."""
    datasets = list(datasets) or figure7_dataset_names()
    sizes = list(sizes) or list(config.figure7_sizes)
    walks = _walk_checkpoints(config)
    figure = FigureResult(
        title="Figure 7: Sampling vs lower-bound measurements across BFS sample sizes",
        xlabel="walk length t",
        ylabel="variation distance eps reached at t",
        notes=f"sample sizes {sizes} stand in for the paper's 10K/100K/1000K",
    )
    for name in datasets:
        full = load_cached(name)
        for size in sizes:
            target = min(size, full.num_nodes)
            if target == full.num_nodes:
                graph = full
            else:
                graph, _node_map = bfs_sample(full, target, seed=config.seed)
            measurement = measure_mixing(
                graph,
                walks,
                sources=min(config.sampled_sources, graph.num_nodes),
                seed=config.seed,
                policy=config.execution_policy,
            )
            bands = percentile_bands(measurement, PAPER_BANDS)
            mu = slem(graph)
            series: List[Series] = [
                Series(label=label, x=bands.walk_lengths, y=bands.band(key))
                for key, label in _BAND_LABELS.items()
            ]
            bound = np.asarray([epsilon_for_walk_length(mu, int(t)) for t in bands.walk_lengths])
            series.append(Series(label="SLEM lower bound", x=bands.walk_lengths, y=bound))
            figure.panels[f"{name}_{target}"] = series
    return figure
