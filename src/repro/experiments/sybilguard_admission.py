"""SybilGuard admission vs route length ("Experiments done in the
SybilGuard paper are similar" — Section 2).

The SybilGuard analogue of Figure 8: one random-route instance, routes
out of every edge, node-level intersection with the verifier's routes.
SybilGuard needs Θ(sqrt(n log n))-length routes even on fast-mixing
graphs (its intersection argument is birthday-paradox over *nodes*, not
edges), and slow mixing pushes the requirement higher still.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets import load_cached
from ..sampling import bfs_sample
from ..sybil import SybilGuard, no_attack_scenario, recommended_route_length
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_sybilguard_admission"]


def run_sybilguard_admission(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "wiki_vote"),
    walk_lengths: Sequence[int] = (5, 10, 20, 40, 80, 160),
    sample_size: Optional[int] = 1500,
    verifier: int = 0,
    max_suspects: int = 300,
) -> FigureResult:
    """Honest admission rate of SybilGuard per route length."""
    walks = [w for w in walk_lengths if w <= config.max_walk]
    figure = FigureResult(
        title="SybilGuard admission rate vs route length (no attacker)",
        xlabel="random route length w",
        ylabel="accepted honest nodes (%)",
        notes="theta(sqrt(n log n)) reference length is marked per dataset",
    )
    series: List[Series] = []
    for name in datasets:
        graph = load_cached(name)
        if sample_size is not None and sample_size < graph.num_nodes:
            graph, _node_map = bfs_sample(graph, sample_size, seed=config.seed)
        scenario = no_attack_scenario(graph)
        rng = np.random.default_rng(config.seed)
        pool = np.setdiff1d(np.arange(graph.num_nodes, dtype=np.int64), [verifier])
        suspects = (
            np.sort(rng.choice(pool, size=max_suspects, replace=False))
            if pool.size > max_suspects
            else pool
        )
        rates = []
        for w in walks:
            guard = SybilGuard(scenario, w, seed=config.seed)
            outcome = guard.run(verifier, suspects=suspects, policy=config.execution_policy)
            rates.append(100.0 * outcome.admission_rate)
        reference = recommended_route_length(graph.num_nodes, constant=1.0)
        series.append(
            Series(
                label=f"{name} (sqrt(n log n) ~ {reference})",
                x=np.asarray(walks, float),
                y=np.asarray(rates),
            )
        )
    figure.panels["main"] = series
    return figure
