"""SybilRank's iteration budget vs the mixing time (extension).

SybilRank terminates its trust power-iteration after O(log n) rounds,
arguing that honest trust has mixed within the honest region by then.
The paper's finding — honest regions mix far slower than O(log n) —
breaks that argument's premise on acquaintance graphs.  This runner
sweeps the iteration count and reports the honest-vs-sybil ranking AUC
for a fast-mixing and a slow-mixing honest region under identical
attacks, locating where each curve saturates relative to log2(n) and
the measured mixing time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..datasets import load_cached
from ..sybil import (
    attach_sybil_region,
    random_sybil_region,
    ranking_quality,
    recommended_iterations,
    sybilrank,
)
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_sybilrank_iterations"]


def run_sybilrank_iterations(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "wiki_vote"),
    iteration_grid: Sequence[int] = (2, 5, 10, 20, 50, 100, 200, 400),
    sybil_size: int = 300,
    attack_edges: int = 5,
) -> FigureResult:
    """Ranking AUC per dataset per iteration count."""
    figure = FigureResult(
        title="SybilRank ranking AUC vs trust-propagation iterations",
        xlabel="power-iteration count",
        ylabel="honest-vs-sybil ranking AUC",
        notes="O(log n) is SybilRank's termination rule; slow-mixing honest "
        "regions saturate only near their measured mixing time",
    )
    series: List[Series] = []
    for name in datasets:
        honest = load_cached(name)
        scenario = attach_sybil_region(
            honest,
            random_sybil_region(sybil_size, seed=config.seed),
            attack_edges,
            seed=config.seed + 1,
        )
        seeds = [0] + [int(v) for v in honest.neighbors(0)]
        aucs = []
        for iters in iteration_grid:
            result = sybilrank(
                scenario, seeds, iterations=int(iters), policy=config.execution_policy
            )
            aucs.append(ranking_quality(result, scenario))
        log_n = recommended_iterations(scenario.graph.num_nodes)
        series.append(
            Series(
                label=f"{name} (log2 n = {log_n})",
                x=np.asarray(iteration_grid, float),
                y=np.asarray(aucs),
            )
        )
    figure.panels["main"] = series
    return figure
