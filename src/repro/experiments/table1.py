"""Table 1 — datasets, their sizes, and their SLEMs.

The paper's Table 1 lists every dataset with its node count, edge count,
and the second largest eigenvalue mu of the transition matrix.  The
reproduction reports both the stand-in's realised size and the paper's
original size, so the scale substitution is visible in the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core import slem
from ..datasets import dataset_names, get_spec, load_cached
from .config import ExperimentConfig, FAST
from .harness import TableResult

__all__ = ["Table1Row", "run_table1", "table1_result", "collect_slems"]


@dataclass(frozen=True)
class Table1Row:
    """One measured dataset."""

    name: str
    label: str
    category: str
    nodes: int
    edges: int
    mu: float
    paper_nodes: int
    paper_edges: int


def run_table1(config: ExperimentConfig = FAST, *, names: Optional[List[str]] = None) -> List[Table1Row]:
    """Measure every (requested) dataset; returns structured rows.

    ``names`` wins, then ``config.datasets`` (the ``--datasets`` CLI
    flag), then the default roster — which excludes the paper-scale
    ``huge`` tier, so those graphs only run when named explicitly.
    """
    rows: List[Table1Row] = []
    for name in names or config.datasets or dataset_names():
        spec = get_spec(name)
        graph = load_cached(name)
        mu = slem(graph)
        rows.append(
            Table1Row(
                name=name,
                label=spec.table1_label,
                category=spec.category,
                nodes=graph.num_nodes,
                edges=graph.num_edges,
                mu=mu,
                paper_nodes=spec.paper_nodes,
                paper_edges=spec.paper_edges,
            )
        )
    return rows


def collect_slems(config: ExperimentConfig = FAST, *, names: Optional[List[str]] = None) -> Dict[str, float]:
    """Just the mu column, keyed by dataset name (reused by Figures 1-2)."""
    return {row.name: row.mu for row in run_table1(config, names=names)}


def table1_result(rows: List[Table1Row]) -> TableResult:
    """Render rows into the printable Table 1."""
    return TableResult(
        title="Table 1: Datasets, their properties and their second largest "
        "eigenvalues of the transition matrix (synthetic stand-ins; paper sizes in parentheses)",
        headers=["Dataset", "Category", "Nodes", "Edges", "mu", "Paper nodes", "Paper edges"],
        rows=[
            [
                row.label,
                row.category,
                f"{row.nodes:,}",
                f"{row.edges:,}",
                f"{row.mu:.4f}",
                f"{row.paper_nodes:,}",
                f"{row.paper_edges:,}",
            ]
            for row in rows
        ],
    )
