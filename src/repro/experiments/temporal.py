"""Figure 3 over time — TVD-curve drift as the graph churns.

The paper's Figure 3 freezes each graph and plots the CDF of variation
distance across sources.  Social graphs are not frozen; "The Evolution
of the Mixing Rate" and the static-vs-dynamic mixing literature
(PAPERS.md) motivate tracking the same quantity as the graph evolves.
This runner sweeps the temporal stand-ins window by window and reports:

* one panel per temporal dataset with the **worst-case TVD** after each
  of the short walk lengths, as a function of window time — the
  temporal analogue of reading Figure 3 vertically;
* a ``slem`` series per panel from the warm incremental spectral path,
  so curve drift can be eyeballed against the spectral trend that
  bounds it.

Sources are sampled once per dataset (seeded by the experiment config)
and reused on every window, so drift is attributable to the graph.
Everything downstream of the temporal datasets is deterministic at any
worker count — the tier-1 smoke diffs workers 1 vs 2 bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core import sample_sources
from ..core.incremental import mixing_trend, slem_trend
from ..datasets import load_temporal_cached, temporal_dataset_names
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_fig3_over_time", "trend_measurements"]


def _window_times(temporal, count: int) -> List[int]:
    """``count`` boundaries spread evenly across the stream (ends kept)."""
    times = temporal.times()
    if count >= len(times):
        return list(times)
    picks = np.linspace(0, len(times) - 1, count).round().astype(int)
    return [times[i] for i in sorted(set(picks.tolist()))]


def trend_measurements(
    config: ExperimentConfig = FAST,
    *,
    names=(),
) -> Dict[str, Dict[str, object]]:
    """Per-dataset trend data: TVD curves plus the warm SLEM trend."""
    names = list(names) or temporal_dataset_names()
    out: Dict[str, Dict[str, object]] = {}
    for name in names:
        temporal = load_temporal_cached(name)
        times = _window_times(temporal, config.trend_windows)
        sources = sample_sources(
            temporal.at(times[0]),
            min(config.trend_sources, temporal.num_nodes),
            seed=config.seed,
        )
        mixing = mixing_trend(
            temporal,
            config.short_walks,
            sources=sources,
            times=times,
            policy=config.execution_policy,
        )
        spectra = slem_trend(temporal, times=times, warm=True, policy=config.execution_policy)
        out[name] = {"mixing": mixing, "slem": spectra}
    return out


def run_fig3_over_time(config: ExperimentConfig = FAST) -> FigureResult:
    """Figure 3 over time: worst-case TVD per walk length, per window."""
    measurements = trend_measurements(config)
    figure = FigureResult(
        title="Figure 3 over time: TVD drift across temporal windows",
        xlabel="window time",
        ylabel="worst-case variation distance / SLEM",
    )
    for name, data in measurements.items():
        mixing = data["mixing"]
        spectra = data["slem"]
        worst = mixing.worst_case()
        series: List[Series] = [
            Series(
                label=f"w={w}",
                x=np.asarray(mixing.times, dtype=np.float64),
                y=worst[:, i],
            )
            for i, w in enumerate(mixing.walk_lengths)
        ]
        series.append(
            Series(
                label="slem",
                x=np.asarray(spectra.times, dtype=np.float64),
                y=spectra.slem,
            )
        )
        figure.panels[name] = series
    return figure
