"""Figure 6 — the DBLP trimming study.

SybilGuard/SybilLimit improved mixing by "trimming lower degree nodes".
The paper replays that: iteratively remove nodes of degree < k for
k = 1..5 from DBLP ("DBLP x means the minimum degree in that data set is
x"), then measure (a) the SLEM lower bound and (b) the average sampled
mixing, per trim level.  The claims:

* trimming monotonically improves the mixing time (for a fixed walk
  length 100, variation distance drops from ~0.2 to ~0.03), but
* at a huge cost in membership: DBLP 1 has 614,981 nodes, DBLP 5 only
  145,497 — "about 75% of nodes are denied joining the service outright
  in order to boost the mixing time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..core import lower_bound_curve, measure_mixing, slem
from ..datasets import load_cached
from ..graph import Graph, trim_min_degree
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series, TableResult

__all__ = ["TrimLevel", "run_figure6", "trim_levels", "trim_summary_table"]


@dataclass
class TrimLevel:
    """One trim level's graph and measurements."""

    min_degree: int
    graph: Graph
    mu: float
    avg_distance: np.ndarray  # mean eps over sources at each walk checkpoint
    walk_lengths: np.ndarray


def trim_levels(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "dblp",
    degrees: Sequence[int] = (1, 2, 3, 4, 5),
) -> List[TrimLevel]:
    """Trim the dataset at each minimum degree and measure each level."""
    base = load_cached(dataset)
    walks = [w for w in config.trim_walks if w <= config.max_walk]
    out: List[TrimLevel] = []
    for k in degrees:
        graph, _node_map = trim_min_degree(base, k)
        measurement = measure_mixing(
            graph,
            walks,
            sources=min(config.sampled_sources, graph.num_nodes),
            seed=config.seed + k,
            policy=config.execution_policy,
        )
        out.append(
            TrimLevel(
                min_degree=int(k),
                graph=graph,
                mu=slem(graph),
                avg_distance=measurement.average_case(),
                walk_lengths=measurement.walk_lengths,
            )
        )
    return out


def run_figure6(config: ExperimentConfig = FAST, *, dataset: str = "dblp") -> FigureResult:
    """Figure 6: lower bound (a) and average mixing (b) per trim level."""
    levels = trim_levels(config, dataset=dataset)
    figure = FigureResult(
        title="Figure 6: Lower-bound vs average mixing time under low-degree trimming (DBLP)",
        xlabel="(a) epsilon / (b) walk length",
        ylabel="(a) walk length / (b) average variation distance",
        notes="; ".join(
            f"DBLP {lvl.min_degree}: n={lvl.graph.num_nodes}, mu={lvl.mu:.4f}" for lvl in levels
        ),
    )
    bound_series: List[Series] = []
    avg_series: List[Series] = []
    for lvl in levels:
        curve = lower_bound_curve(lvl.mu, eps_min=1e-4, eps_max=0.45, points=32)
        bound_series.append(Series(label=f"DBLP {lvl.min_degree}", x=curve.epsilons, y=curve.lengths))
        avg_series.append(
            Series(label=f"DBLP {lvl.min_degree}", x=lvl.walk_lengths, y=lvl.avg_distance)
        )
    figure.panels["a_lower_bound"] = bound_series
    figure.panels["b_average_mixing"] = avg_series
    return figure


def trim_summary_table(levels: List[TrimLevel]) -> TableResult:
    """Size-vs-mixing trade-off per trim level (the 75% exclusion claim)."""
    base_n = levels[0].graph.num_nodes if levels else 0
    rows = []
    for lvl in levels:
        kept = lvl.graph.num_nodes / base_n if base_n else float("nan")
        rows.append(
            [
                f"DBLP {lvl.min_degree}",
                f"{lvl.graph.num_nodes:,}",
                f"{lvl.graph.num_edges:,}",
                f"{kept:.1%}",
                f"{lvl.mu:.4f}",
            ]
        )
    return TableResult(
        title="Trimming trade-off: graph size vs mixing",
        headers=["Level", "Nodes", "Edges", "Nodes kept", "mu"],
        rows=rows,
    )
