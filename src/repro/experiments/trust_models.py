"""Trust-model ablation — the paper's Section 5/6 future-work direction.

Compares three walk designs on one graph:

* the plain simple random walk (the paper's baseline),
* the similarity-weighted walk (strong ties favoured),
* originator-biased walks at increasing return probability beta.

Reproduced finding (the authors' follow-up work): incorporating trust
*slows* effective mixing — the originator bias keeps a constant floor of
probability mass at home, so the walk provably never reaches the plain
stationary distribution, trading utility for containment of sybils.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..core import TransitionOperator, total_variation_distance
from ..core.trust import (
    WeightedTransitionOperator,
    jaccard_arc_weights,
    originator_biased_curve,
)
from ..datasets import load_cached
from .._util import as_rng
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_trust_models"]


def run_trust_models(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "physics1",
    betas: Sequence[float] = (0.05, 0.2),
    num_sources: int = 40,
    walk_lengths: Sequence[int] = (5, 10, 20, 40, 80, 160),
) -> FigureResult:
    """Average variation distance per walk design and walk length."""
    graph = load_cached(dataset)
    walks = [w for w in walk_lengths if w <= config.max_walk]
    rng = as_rng(config.seed)
    sources = rng.choice(graph.num_nodes, size=min(num_sources, graph.num_nodes), replace=False)

    figure = FigureResult(
        title=f"Trust-aware walks on {dataset}: variation distance vs walk length",
        xlabel="walk length",
        ylabel="mean variation distance to the plain stationary distribution",
        notes="originator-biased walks floor at ~beta: they never fully mix",
    )

    # Plain walk.
    plain_op = TransitionOperator(graph)
    pi = plain_op.stationary()

    def mean_curve(curve_fn) -> np.ndarray:
        acc = np.zeros(len(walks))
        for src in sources:
            curve = curve_fn(int(src))
            acc += np.asarray([curve[w] for w in walks])
        return acc / sources.size

    def plain_curve(src: int) -> np.ndarray:
        x = plain_op.point_mass(src)
        out = np.empty(max(walks) + 1)
        out[0] = total_variation_distance(x, pi, validate=False)
        for t in range(1, max(walks) + 1):
            x = plain_op.step(x)
            out[t] = total_variation_distance(x, pi, validate=False)
        return out

    series: List[Series] = [
        Series(label="plain walk", x=np.asarray(walks, float), y=mean_curve(plain_curve))
    ]

    # Similarity-weighted walk (measured against its own stationary dist).
    weights = jaccard_arc_weights(graph)
    weighted_op = WeightedTransitionOperator(graph, weights)
    series.append(
        Series(
            label="similarity-weighted walk",
            x=np.asarray(walks, float),
            y=mean_curve(lambda src: weighted_op.variation_curve(src, max(walks))),
        )
    )

    # Originator-biased walks.
    for beta in betas:
        series.append(
            Series(
                label=f"originator-biased beta={beta}",
                x=np.asarray(walks, float),
                y=mean_curve(
                    lambda src, _b=beta: originator_biased_curve(graph, src, _b, max(walks))
                ),
            )
        )
    figure.panels["main"] = series
    return figure
