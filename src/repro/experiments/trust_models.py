"""Trust-model ablation — the paper's Section 5/6 future-work direction.

Compares three walk designs on one graph:

* the plain simple random walk (the paper's baseline),
* the similarity-weighted walk (strong ties favoured),
* originator-biased walks at increasing return probability beta.

Reproduced finding (the authors' follow-up work): incorporating trust
*slows* effective mixing — the originator bias keeps a constant floor of
probability mass at home, so the walk provably never reaches the plain
stationary distribution, trading utility for containment of sybils.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core import TransitionOperator
from ..core.trust import (
    WeightedTransitionOperator,
    jaccard_arc_weights,
    originator_biased_curves,
)
from ..datasets import load_cached
from .._util import as_rng
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_trust_models"]


def run_trust_models(
    config: ExperimentConfig = FAST,
    *,
    dataset: str = "physics1",
    betas: Sequence[float] = (0.05, 0.2),
    num_sources: int = 40,
    walk_lengths: Sequence[int] = (5, 10, 20, 40, 80, 160),
) -> FigureResult:
    """Average variation distance per walk design and walk length.

    Every design evolves *all* sampled sources as one chunked block
    through the shared Markov-operator layer — one SpMM per step instead
    of a per-source python loop.
    """
    graph = load_cached(dataset)
    walks = sorted(w for w in walk_lengths if w <= config.max_walk)
    rng = as_rng(config.seed)
    sources = rng.choice(graph.num_nodes, size=min(num_sources, graph.num_nodes), replace=False)

    figure = FigureResult(
        title=f"Trust-aware walks on {dataset}: variation distance vs walk length",
        xlabel="walk length",
        ylabel="mean variation distance to the plain stationary distribution",
        notes="originator-biased walks floor at ~beta: they never fully mix",
    )
    x_axis = np.asarray(walks, float)

    # Plain walk: batched curves at the checkpoint walk lengths only.
    plain_op = TransitionOperator(graph)
    series: List[Series] = [
        Series(
            label="plain walk",
            x=x_axis,
            y=plain_op.variation_curves(
                sources, walks, policy=config.execution_policy
            ).mean(axis=0),
        )
    ]

    # Similarity-weighted walk (measured against its own stationary dist).
    weighted_op = WeightedTransitionOperator(graph, jaccard_arc_weights(graph))
    series.append(
        Series(
            label="similarity-weighted walk",
            x=x_axis,
            y=weighted_op.variation_curves(
                sources, walks, policy=config.execution_policy
            ).mean(axis=0),
        )
    )

    # Originator-biased walks (per-row bias injected inside the block step).
    for beta in betas:
        series.append(
            Series(
                label=f"originator-biased beta={beta}",
                x=x_axis,
                y=originator_biased_curves(
                    graph, sources, beta, walks, policy=config.execution_policy
                ).mean(axis=0),
            )
        )
    figure.panels["main"] = series
    return figure
