"""Whānau lookup utility vs walk length (Section 2, system-level).

Beyond re-measuring Whānau's *evidence* (the tail-distribution
experiment), this runner measures the *consequence*: the DHT's lookup
success rate as a function of the random-walk length its routing tables
were built with.  On slow-mixing graphs the success rate climbs slowly
with w — quantifying, in system terms, what an insufficient walk length
costs — while fast OSNs are near-perfect at tiny w.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..datasets import load_cached
from ..sybil import build_whanau, lookup_success_rate
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["run_whanau_lookup"]


def run_whanau_lookup(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "wiki_vote"),
    walk_lengths: Sequence[int] = (2, 5, 10, 20, 40, 80, 160),
    num_lookups: int = 300,
) -> FigureResult:
    """Lookup success rate per dataset per table-construction walk length."""
    walks = [w for w in walk_lengths if w <= config.max_walk]
    figure = FigureResult(
        title="Whānau lookup success rate vs table-construction walk length",
        xlabel="random-walk length w used to build routing tables",
        ylabel="lookup success rate",
        notes="tables: ~3*sqrt(n) fingers and successor samples per node",
    )
    series: List[Series] = []
    for name in datasets:
        graph = load_cached(name)
        rates = []
        for w in walks:
            tables = build_whanau(graph, w, seed=config.seed)
            stats = lookup_success_rate(
                tables, num_lookups=num_lookups, seed=config.seed + w
            )
            rates.append(stats.success_rate)
        series.append(Series(label=name, x=np.asarray(walks, float), y=np.asarray(rates)))
    figure.panels["main"] = series
    return figure
