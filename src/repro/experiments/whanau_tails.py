"""The Whānau tail-distribution methodology, done right (Section 2).

Lesniewski-Laas et al. justified fast mixing by sampling random-walk
*tail edges* and eyeballing their histogram against the uniform edge
distribution.  The paper's critique: "they provided raw measurements but
did not relate the distribution of the sampled tails to the stationary
distribution itself, in terms of the variation distance", and the
separation distance they used "does not require eps to be too small".

This experiment computes the tail-edge distribution *exactly* (no
sampling noise): pooling walks from a uniformly random start node, the
probability that a length-w walk's tail is the arc (u, v) is

    q_w(u -> v) = x_{w-1}(u) / deg(u),   x_0 = uniform over nodes,

so one distribution evolution per graph yields the whole curve.  Both
the total variation distance and Whānau's separation distance to the
uniform arc distribution are reported; the reproduced finding is that
walks that look "converged" to the eye (and to the loose separation
criterion at moderate eps) are still orders of magnitude away from the
eps = Theta(1/n) the security proofs assume.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from typing import Optional

from ..core import (
    TransitionOperator,
    separation_distance,
    total_variation_distance,
    uniform_distribution,
)
from ..core.runtime import ExecutionPolicy, as_policy
from ..datasets import load_cached
from ..graph import Graph
from ..sybil.routes import arc_sources
from .config import ExperimentConfig, FAST
from .harness import FigureResult, Series

__all__ = ["tail_arc_distribution", "tail_arc_distributions", "run_whanau_tails"]


def tail_arc_distributions(
    graph: Graph,
    walk_lengths: "Sequence[int]",
    *,
    workers: Optional[int] = None,
    policy: "Optional[ExecutionPolicy]" = None,
) -> "List[np.ndarray]":
    """Exact pooled tail-edge distributions at several walk lengths.

    Returns one vector over directed arc slots (length ``2m``, summing
    to 1) per requested length.  ``walk_lengths`` must be strictly
    increasing and >= 1: the node distribution is evolved
    *incrementally* between checkpoints, so the whole sweep costs
    ``max(w) - 1`` operator applications instead of ``sum(w - 1)`` —
    and, because the SpMV prefix is shared, each checkpoint equals the
    from-scratch evolution bit-for-bit.  ``workers`` is threaded to the
    operator's block API for parity with the other sweep entry points
    (a single pooled distribution is one row, so it falls back serial).
    """
    policy = as_policy(policy, workers=workers)
    lengths = [int(w) for w in walk_lengths]
    if not lengths or lengths[0] < 1 or any(
        b <= a for a, b in zip(lengths, lengths[1:])
    ):
        raise ValueError("walk_lengths must be strictly increasing and >= 1")
    operator = TransitionOperator(graph, check_aperiodic=False)
    x = uniform_distribution(graph.num_nodes)
    inv_deg = graph.degrees.astype(np.float64)
    src = arc_sources(graph)
    out: "List[np.ndarray]" = []
    reached = 0
    for w in lengths:
        steps = (w - 1) - reached
        if steps > 0:
            x = operator.evolve_block(x[None, :], steps, policy=policy)[0]
        reached = w - 1
        out.append((x / inv_deg)[src])
    return out


def tail_arc_distribution(graph: Graph, walk_length: int) -> np.ndarray:
    """Exact pooled tail-edge distribution of length-``walk_length`` walks.

    Returns a vector over directed arc slots (length ``2m``) summing to 1.
    Walk sources are uniform over nodes (Whānau's pooling).
    """
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    return tail_arc_distributions(graph, [walk_length])[0]


def run_whanau_tails(
    config: ExperimentConfig = FAST,
    *,
    datasets: Sequence[str] = ("physics1", "livejournal_a", "wiki_vote"),
    walk_lengths: Sequence[int] = (10, 20, 40, 80, 160, 320),
) -> FigureResult:
    """Tail-edge convergence curves per dataset.

    One panel per dataset with three series: TVD of the tail distribution
    to uniform-over-arcs, Whānau's separation distance, and the
    security-proof target ``eps = 1/n`` (a horizontal line).
    """
    walks = [w for w in walk_lengths if w <= config.max_walk + 20]
    figure = FigureResult(
        title="Whānau tail-edge distributions vs uniform (Section 2 critique)",
        xlabel="walk length w",
        ylabel="distance of pooled tail-edge distribution to uniform",
        notes="separation distance is the loose criterion Whānau used; "
        "the proofs need TVD ~ 1/n",
    )
    for name in datasets:
        graph = load_cached(name)
        uniform_arcs = np.full(2 * graph.num_edges, 1.0 / (2 * graph.num_edges))
        tvd: List[float] = []
        sep: List[float] = []
        for q in tail_arc_distributions(graph, walks, policy=config.execution_policy):
            tvd.append(total_variation_distance(q, uniform_arcs, validate=False))
            sep.append(separation_distance(q, uniform_arcs, validate=False))
        target = 1.0 / graph.num_nodes
        figure.panels[name] = [
            Series(label="TVD to uniform arcs", x=np.asarray(walks, float), y=np.asarray(tvd)),
            Series(label="separation distance", x=np.asarray(walks, float), y=np.asarray(sep)),
            Series(
                label="target eps = 1/n",
                x=np.asarray(walks, float),
                y=np.full(len(walks), target),
            ),
        ]
    return figure
