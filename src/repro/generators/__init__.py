"""Random-graph generators used to synthesise dataset stand-ins."""

from .random_graphs import erdos_renyi_gnm, erdos_renyi_gnp, random_regular
from .powerlaw import (
    fit_powerlaw_exponent,
    powerlaw_configuration_model,
    powerlaw_degree_sequence,
)
from .preferential import barabasi_albert, holme_kim
from .smallworld import ring_lattice, watts_strogatz
from .affiliation import affiliation_coauthorship
from .community import (
    community_powerlaw,
    planted_partition,
    stochastic_block_model,
    two_community_bridge,
)

__all__ = [
    "affiliation_coauthorship",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "random_regular",
    "fit_powerlaw_exponent",
    "powerlaw_configuration_model",
    "powerlaw_degree_sequence",
    "barabasi_albert",
    "holme_kim",
    "ring_lattice",
    "watts_strogatz",
    "community_powerlaw",
    "planted_partition",
    "stochastic_block_model",
    "two_community_bridge",
]
