"""Affiliation (co-authorship) graphs: unions of paper cliques.

Co-authorship networks like DBLP and the physics graphs are projections
of a bipartite author–paper graph: every paper induces a clique over its
authors.  That clique structure is what a plain configuration model
misses — and it matters for the paper's Figure 6 experiment, because
k-core trimming of a clique-union graph retains the productive core
(DBLP's 5-core keeps ~24% of nodes), whereas a degree-matched
configuration model's 5-core is nearly empty.

The model:

* authors belong to communities (heavy-tailed sizes);
* each author gets a power-law number of *paper slots* (>= 1, so every
  author publishes and the projection stays well covered);
* per community, the slot list is shuffled and chopped into papers of
  2–8 authors; each paper's author set becomes a clique;
* with probability ``mu_frac`` a paper swaps one author for a uniformly
  random author of another community — the cross-community
  collaborations that form the mixing bottleneck.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .._util import as_rng
from ..graph import Graph, GraphBuilder

__all__ = ["affiliation_coauthorship"]


def affiliation_coauthorship(
    n: int,
    target_edges: int,
    *,
    mu_frac: float = 0.05,
    num_communities: Optional[int] = None,
    productivity_gamma: float = 2.5,
    paper_size_min: int = 2,
    paper_size_max: int = 8,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """A community-structured co-authorship graph; returns ``(graph, labels)``.

    ``target_edges`` sets the pre-deduplication edge budget; author slot
    counts are scaled so the budget is met in expectation (realised
    edges land somewhat lower because co-author pairs repeat).
    """
    if n < paper_size_min:
        raise ValueError("need at least paper_size_min authors")
    if not 0.0 <= mu_frac <= 1.0:
        raise ValueError("mu_frac must be in [0, 1]")
    if not 2 <= paper_size_min <= paper_size_max:
        raise ValueError("need 2 <= paper_size_min <= paper_size_max")
    if target_edges < 1:
        raise ValueError("target_edges must be positive")
    rng = as_rng(seed)
    if num_communities is None:
        num_communities = max(2, int(np.sqrt(n) / 2))
    num_communities = max(1, min(int(num_communities), n // paper_size_min))

    # Community assignment with heavy-tailed sizes.
    base = np.arange(1, num_communities + 1, dtype=np.float64) ** (-0.8)
    weights = rng.dirichlet(base * num_communities)
    labels = rng.choice(num_communities, size=n, p=weights).astype(np.int64)

    # Paper sizes: geometric decay over [min, max] (most papers small).
    sizes = np.arange(paper_size_min, paper_size_max + 1)
    size_pmf = 0.5 ** np.arange(sizes.size, dtype=np.float64)
    size_pmf /= size_pmf.sum()
    mean_size = float((sizes * size_pmf).sum())
    mean_clique_edges = float((sizes * (sizes - 1) / 2 * size_pmf).sum())

    # Power-law paper counts per author (>= 1), scaled to the edge budget:
    # total slots S produce ~ S / mean_size papers and hence
    # ~ S * mean_clique_edges / mean_size edges.
    raw = np.floor((1.0 - rng.random(n)) ** (-1.0 / (productivity_gamma - 1.0))).astype(np.int64)
    raw = np.clip(raw, 1, max(2, int(np.sqrt(n))))
    wanted_slots = target_edges * mean_size / mean_clique_edges
    scale = wanted_slots / float(raw.sum())
    scaled = raw * scale
    slots = np.floor(scaled).astype(np.int64)
    slots += (rng.random(n) < (scaled - slots)).astype(np.int64)
    slots = np.maximum(slots, 1)

    builder = GraphBuilder(n)
    all_authors = np.arange(n, dtype=np.int64)
    # Cross-community collaborators are productivity-weighted: prolific
    # authors bridge communities (as in real co-authorship data), which
    # keeps the bridges inside the k-core — the structural fact behind
    # Figure 6's "trimming improves mixing" finding.
    outsider_pmf = slots.astype(np.float64) ** 2
    outsider_pmf /= outsider_pmf.sum()
    for c in range(num_communities):
        members = np.flatnonzero(labels == c)
        if members.size == 0:
            continue
        pool = np.repeat(members, slots[members])
        rng.shuffle(pool)
        pos = 0
        while pos < pool.size:
            k = int(rng.choice(sizes, p=size_pmf))
            chunk = pool[pos:pos + k]
            pos += k
            authors = np.unique(chunk)
            if rng.random() < mu_frac:
                # Swap one author for a productivity-weighted outsider.
                outsider = int(rng.choice(all_authors, p=outsider_pmf))
                if labels[outsider] != c:
                    authors = np.unique(np.concatenate([authors[1:], [outsider]]))
            if authors.size < 2:
                continue
            for i in range(authors.size):
                for j in range(i + 1, authors.size):
                    builder.add_edge(int(authors[i]), int(authors[j]))
    return builder.build(), labels
