"""Chunked generation of paper-scale graphs straight to disk.

The ``huge`` dataset tier targets LiveJournal-class sizes (~1M nodes,
~10M arcs).  Materialising such a graph the way the in-memory generators
do — one big ``(m, 2)`` edge array, then sort, then CSR — needs several
gigabytes of transient memory.  This module builds the on-disk CSR
container (:mod:`repro.graph.storage`) without ever holding more than
O(n + chunk) state:

1. **count** — regenerate the edge stream chunk by chunk and accumulate
   per-node arc counts (self loops dropped, both directions counted);
2. **scatter** — regenerate the *same* stream (chunks are pure functions
   of ``(seed, chunk_index)``) and scatter each arc's endpoint into its
   row's slot range inside a temporary scratch ``memmap``;
3. **sort** — walk the scratch file in bounded stripes, sorting each
   row's slice in place and counting duplicates;
4. **write** — walk it once more, dropping duplicate arcs, streaming the
   final indices into a :class:`~repro.graph.storage.CSRWriter` (which
   fingerprints and atomically publishes the container).

The same four passes back :func:`build_csr_from_edge_chunks`, which any
re-iterable chunk source can drive — the synthetic community generator
below and the SNAP ingestion path (:mod:`repro.datasets.snap`) share it.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, GraphFormatError
from ..graph.storage import CSRWriter, MemmapGraph, open_csr
from ..obs import OBS

__all__ = [
    "build_csr_from_edge_chunks",
    "chunked_community_csr",
    "extract_nodes_to_csr",
]

#: Entries per sort/write stripe (int64 ⇒ 32 MiB of keys at the default).
_STRIPE_ENTRIES = 4 * 1024 * 1024


def _row_stripes(indptr: np.ndarray, max_entries: int) -> Iterator[Tuple[int, int]]:
    """Split rows into ``[lo, hi)`` runs of at most ``max_entries`` arcs
    (always at least one row per stripe, so a single huge row still
    fits — callers size stripes generously above any realistic degree).
    """
    n = indptr.shape[0] - 1
    lo = 0
    while lo < n:
        hi = int(np.searchsorted(indptr, int(indptr[lo]) + max_entries, side="right")) - 1
        hi = min(max(hi, lo + 1), n)
        yield lo, hi
        lo = hi


def build_csr_from_edge_chunks(
    path,
    num_nodes: int,
    chunk_source: Callable[[], Iterable[Tuple[np.ndarray, np.ndarray]]],
    *,
    stripe_entries: int = _STRIPE_ENTRIES,
) -> MemmapGraph:
    """Stream an undirected edge chunk sequence into a ``.csr`` container.

    ``chunk_source()`` must return a *fresh* iterable of ``(u, v)`` int64
    array pairs each time it is called (the stream is consumed twice).
    Self loops are dropped; parallel edges are deduplicated; each kept
    edge lands in both endpoint rows.  Returns the opened
    :class:`~repro.graph.storage.MemmapGraph`.
    """
    n = int(num_nodes)
    if n <= 0:
        raise ConfigurationError("num_nodes must be positive")
    # Pass 1: count arcs per row.
    counts = np.zeros(n, dtype=np.int64)
    for u, v in chunk_source():
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if u.size != v.size:
            raise GraphFormatError("edge chunk endpoint arrays disagree in length")
        if u.size and (
            int(min(u.min(), v.min())) < 0 or int(max(u.max(), v.max())) >= n
        ):
            raise GraphFormatError("edge chunk references node id outside [0, num_nodes)")
        keep = u != v
        u, v = u[keep], v[keep]
        counts += np.bincount(u, minlength=n)
        counts += np.bincount(v, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    total = int(indptr[-1])

    # Pass 2: scatter every arc target into its row's slot range in a
    # scratch file (kept beside the target so both live on one volume).
    directory = os.path.dirname(os.path.abspath(os.fspath(path))) or "."
    fd, scratch_path = tempfile.mkstemp(prefix=".csr-scratch-", dir=directory)
    os.close(fd)
    writer = None
    scratch = None
    try:
        scratch = np.memmap(scratch_path, dtype=np.int64, mode="w+", shape=(max(total, 1),))
        cursor = indptr[:-1].copy()
        for u, v in chunk_source():
            u = np.asarray(u, dtype=np.int64)
            v = np.asarray(v, dtype=np.int64)
            keep = u != v
            u, v = u[keep], v[keep]
            src = np.concatenate((u, v))
            dst = np.concatenate((v, u))
            order = np.argsort(src, kind="stable")
            s, d = src[order], dst[order]
            boundary = np.concatenate(([True], s[1:] != s[:-1]))
            first = np.flatnonzero(boundary)
            runs = np.diff(np.concatenate((first, [s.size])))
            rank = np.arange(s.size, dtype=np.int64) - np.repeat(first, runs)
            scratch[cursor[s] + rank] = d
            cursor += np.bincount(src, minlength=n)

        # Pass 3: sort each row's slice (stripewise) and count the
        # arcs that survive deduplication.
        final_counts = np.zeros(n, dtype=np.int64)
        for lo, hi in _row_stripes(indptr, stripe_entries):
            s0, s1 = int(indptr[lo]), int(indptr[hi])
            seg = np.asarray(scratch[s0:s1])
            row_of = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo:hi + 1])
            )
            order = np.argsort(row_of * n + seg, kind="stable")
            seg = seg[order]
            scratch[s0:s1] = seg
            key = row_of * n + seg  # row_of already sorted ⇒ reuse directly
            keep = np.concatenate(([True], key[1:] != key[:-1])) if key.size else key.astype(bool)
            final_counts[lo:hi] = np.bincount(row_of[keep] - lo, minlength=hi - lo)
        scratch.flush()

        final_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(final_counts, out=final_indptr[1:])

        # Pass 4: drop duplicates and stream into the container.
        writer = CSRWriter(path, final_indptr)
        for lo, hi in _row_stripes(indptr, stripe_entries):
            s0, s1 = int(indptr[lo]), int(indptr[hi])
            seg = np.asarray(scratch[s0:s1])
            row_of = np.repeat(
                np.arange(lo, hi, dtype=np.int64), np.diff(indptr[lo:hi + 1])
            )
            key = row_of * n + seg
            keep = np.concatenate(([True], key[1:] != key[:-1])) if key.size else key.astype(bool)
            writer.write(seg[keep])
        writer.close()
        writer = None
        if OBS.enabled:
            OBS.add("graph.storage.chunked_builds")
            OBS.add("graph.storage.chunked_arcs", int(final_indptr[-1]))
    finally:
        if writer is not None:
            writer.abort()
        del scratch  # release the mapping before unlinking (Windows-safe habit)
        try:
            os.unlink(scratch_path)
        except OSError:  # pragma: no cover - scratch already gone
            pass
    return open_csr(path)


def _community_chunks(
    n: int,
    num_communities: int,
    mu_frac: float,
    mean_extra: float,
    seed: int,
    chunk_nodes: int,
) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Deterministic community edge stream, one node chunk at a time.

    Every chunk is a pure function of ``(seed, chunk_index)`` — pass 1
    and pass 2 of the builder regenerate identical chunks.  Structure:

    * a ring backbone ``(i, i+1)`` + wrap edge (connectivity guaranteed,
      so the huge tier never needs an LCC extraction pass) and one chord
      ``(0, 2)`` closing a triangle (aperiodicity);
    * per node, a heavy-tailed number of extra stubs (capped zipf), each
      wired inside the node's community with probability ``1 - mu_frac``
      and uniformly otherwise — the same community-vs-global split the
      in-memory :func:`~repro.generators.community_powerlaw` uses, which
      is what makes the stand-in mix slowly like LiveJournal.
    """
    comm_size = max(1, n // num_communities)
    for index, lo in enumerate(range(0, n, chunk_nodes)):
        hi = min(lo + chunk_nodes, n)
        rng = np.random.default_rng(np.random.SeedSequence([int(seed), index]))
        nodes = np.arange(lo, hi, dtype=np.int64)
        # Backbone: ring successors (the final node wraps to 0).
        ring_u = nodes
        ring_v = np.where(nodes + 1 < n, nodes + 1, 0)
        # Extra community stubs: zipf-ish tail, capped so a single row
        # can never outgrow a sort stripe.
        extra = np.minimum(rng.zipf(1.9, size=hi - lo), 1000)
        extra = np.maximum((extra * mean_extra / 2.0).astype(np.int64), 1)
        src = np.repeat(nodes, extra)
        within = rng.random(src.size) >= mu_frac
        comm_base = (src // comm_size) * comm_size
        local = comm_base + rng.integers(0, comm_size, size=src.size)
        globl = rng.integers(0, n, size=src.size)
        dst = np.where(within, np.minimum(local, n - 1), globl)
        u = np.concatenate((ring_u, src))
        v = np.concatenate((ring_v, dst))
        if index == 0 and n > 2:
            u = np.concatenate((u, [0]))
            v = np.concatenate((v, [2]))
        yield u, v


def chunked_community_csr(
    path,
    n: int,
    *,
    num_communities: int,
    mu_frac: float,
    mean_extra_degree: float = 8.0,
    seed: int = 0,
    chunk_nodes: int = 1 << 16,
) -> MemmapGraph:
    """Generate a ring-connected community graph straight into ``path``.

    The ``huge`` registry tier's recipe: never materialises the full
    edge list (peak transient memory is O(n + chunk_nodes·degree)), is
    deterministic in ``seed``, and returns the opened memmap graph.
    """
    if not 0.0 <= mu_frac <= 1.0:
        raise ConfigurationError("mu_frac must lie in [0, 1]")
    if n < 3:
        raise ConfigurationError("chunked community graph needs at least 3 nodes")
    if num_communities < 1:
        raise ConfigurationError("num_communities must be positive")

    def source():
        return _community_chunks(
            n, num_communities, mu_frac, mean_extra_degree, seed, chunk_nodes
        )

    return build_csr_from_edge_chunks(path, n, source)


def extract_nodes_to_csr(graph, mask: np.ndarray, path) -> MemmapGraph:
    """Stream the induced subgraph on ``mask`` into a ``.csr`` container.

    The out-of-core analogue of
    :func:`~repro.graph.largest_connected_component`'s extraction step:
    relabelling is monotone, so each surviving row's neighbour list stays
    sorted and the result streams row stripe by row stripe without any
    global sort.  Used by the SNAP ingestion path to keep only the
    largest component of a fetched graph.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.shape[0] != graph.num_nodes:
        raise ConfigurationError("mask length must equal the graph's node count")
    new_id = np.cumsum(mask, dtype=np.int64) - 1
    indptr = np.asarray(graph.indptr, dtype=np.int64)
    kept_rows = np.flatnonzero(mask)

    counts = np.zeros(kept_rows.size, dtype=np.int64)
    for lo, hi in _row_stripes(indptr, _STRIPE_ENTRIES):
        rows = kept_rows[(kept_rows >= lo) & (kept_rows < hi)]
        if rows.size == 0:
            continue
        neigh = np.asarray(graph.indices[int(indptr[lo]):int(indptr[hi])])
        base = int(indptr[lo])
        row_sel = np.searchsorted(kept_rows, rows)
        for offset, row in zip(row_sel, rows):
            span = neigh[int(indptr[row]) - base:int(indptr[row + 1]) - base]
            counts[offset] = int(np.count_nonzero(mask[span]))
    new_indptr = np.zeros(kept_rows.size + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])

    writer = CSRWriter(path, new_indptr)
    try:
        for lo, hi in _row_stripes(indptr, _STRIPE_ENTRIES):
            rows = kept_rows[(kept_rows >= lo) & (kept_rows < hi)]
            if rows.size == 0:
                continue
            neigh = np.asarray(graph.indices[int(indptr[lo]):int(indptr[hi])])
            base = int(indptr[lo])
            parts = []
            for row in rows:
                span = neigh[int(indptr[row]) - base:int(indptr[row + 1]) - base]
                parts.append(new_id[span[mask[span]]])
            if parts:
                writer.write(np.concatenate(parts))
        writer.close()
    except BaseException:
        writer.abort()
        raise
    return open_csr(path)
