"""Community-structured generators.

The paper's central structural explanation for slow mixing is community
structure (Section 2 and 5; conductance Φ ≥ 1 − μ).  These models plant
it explicitly:

* :func:`planted_partition` / :func:`stochastic_block_model` — equal or
  arbitrary-size blocks with dense intra- and sparse inter-community
  edges.  The inter-community edge budget directly controls the
  bottleneck, hence the SLEM.
* :func:`community_powerlaw` — an LFR-flavoured model: power-law degrees,
  power-law community sizes, and a *mixing fraction* ``mu_frac`` of each
  node's stubs wired across communities.  This is the workhorse behind
  the co-authorship ("slow mixing") dataset stand-ins.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .._util import as_rng
from ..graph import Graph, graph_from_degree_sequence_stubs
from .powerlaw import powerlaw_degree_sequence

__all__ = [
    "stochastic_block_model",
    "planted_partition",
    "community_powerlaw",
    "two_community_bridge",
]


def stochastic_block_model(
    block_sizes: Sequence[int],
    edge_prob: np.ndarray,
    *,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """General SBM; returns ``(graph, block_labels)``.

    ``edge_prob[a, b]`` is the Bernoulli probability of an edge between a
    node of block ``a`` and one of block ``b`` (must be symmetric).
    Implemented by sampling a binomial count per block pair then choosing
    that many distinct pairs, so cost is O(edges), not O(n²).
    """
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if sizes.size == 0 or sizes.min() <= 0:
        raise ValueError("block sizes must be positive")
    probs = np.asarray(edge_prob, dtype=np.float64)
    k = sizes.size
    if probs.shape != (k, k):
        raise ValueError(f"edge_prob must be ({k}, {k})")
    if not np.allclose(probs, probs.T):
        raise ValueError("edge_prob must be symmetric")
    if probs.min() < 0 or probs.max() > 1:
        raise ValueError("edge probabilities must lie in [0, 1]")
    rng = as_rng(seed)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    n = int(offsets[-1])
    labels = np.repeat(np.arange(k, dtype=np.int64), sizes)

    chunks: List[np.ndarray] = []
    for a in range(k):
        for b in range(a, k):
            if a == b:
                pairs_total = sizes[a] * (sizes[a] - 1) // 2
            else:
                pairs_total = sizes[a] * sizes[b]
            if pairs_total == 0 or probs[a, b] == 0.0:
                continue
            count = int(rng.binomial(int(pairs_total), probs[a, b]))
            if count == 0:
                continue
            codes = _sample_distinct(rng, int(pairs_total), count)
            if a == b:
                u_loc, v_loc = _decode_triangle(codes, int(sizes[a]))
                u = u_loc + offsets[a]
                v = v_loc + offsets[a]
            else:
                u = codes // sizes[b] + offsets[a]
                v = codes % sizes[b] + offsets[b]
            chunks.append(np.stack([u, v], axis=1))
    edges = np.concatenate(chunks, axis=0) if chunks else np.zeros((0, 2), dtype=np.int64)
    return Graph.from_edges(edges, num_nodes=n), labels


def _sample_distinct(rng: np.random.Generator, universe: int, count: int) -> np.ndarray:
    """``count`` distinct integers from ``[0, universe)``."""
    if count > universe:
        raise ValueError("cannot sample more codes than the universe holds")
    if universe <= 4 * count:
        return rng.choice(universe, size=count, replace=False).astype(np.int64)
    codes = np.unique(rng.integers(0, universe, size=int(count * 1.2) + 8))
    while codes.size < count:
        codes = np.unique(np.concatenate([codes, rng.integers(0, universe, size=count)]))
    return rng.permutation(codes)[:count].astype(np.int64)


def _decode_triangle(codes: np.ndarray, n: int):
    codes_f = codes.astype(np.float64)
    u = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * codes_f)) / 2).astype(np.int64)
    start = u * n - u * (u + 1) // 2
    v = (codes - start) + u + 1
    return u, v


def planted_partition(
    num_blocks: int,
    block_size: int,
    p_in: float,
    p_out: float,
    *,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """Equal-size SBM with uniform intra/inter probabilities."""
    probs = np.full((num_blocks, num_blocks), p_out, dtype=np.float64)
    np.fill_diagonal(probs, p_in)
    return stochastic_block_model([block_size] * num_blocks, probs, seed=seed)


def community_powerlaw(
    n: int,
    gamma: float,
    mu_frac: float,
    *,
    num_communities=None,
    k_min: int = 1,
    k_max=None,
    target_edges=None,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """LFR-flavoured community graph; returns ``(graph, community_labels)``.

    Every node gets a power-law degree; a fraction ``mu_frac`` of each
    node's stubs is wired *across* communities (global configuration
    model) and the rest *within* its community.  ``mu_frac`` close to 0
    gives strong communities → large mixing time; close to 1 degenerates
    to a plain configuration model.

    Community sizes are drawn power-law-ish (square-root-of-n scaled) when
    ``num_communities`` is omitted.
    """
    if not 0.0 <= mu_frac <= 1.0:
        raise ValueError("mu_frac must be in [0, 1]")
    rng = as_rng(seed)
    degrees = powerlaw_degree_sequence(
        n, gamma, k_min=k_min, k_max=k_max, target_edges=target_edges, seed=rng
    )
    if num_communities is None:
        num_communities = max(2, int(np.sqrt(n) / 2))
    num_communities = min(int(num_communities), n)
    # Heavy-tailed community sizes: Dirichlet over a power-law base measure.
    base = (np.arange(1, num_communities + 1, dtype=np.float64)) ** (-0.8)
    weights = rng.dirichlet(base * num_communities)
    labels = rng.choice(num_communities, size=n, p=weights).astype(np.int64)
    # Re-densify empty communities into label 0 to keep labels meaningful.
    used = np.unique(labels)
    remap = {int(c): i for i, c in enumerate(used)}
    labels = np.asarray([remap[int(c)] for c in labels], dtype=np.int64)
    num_communities = used.size

    internal = np.round(degrees * (1.0 - mu_frac)).astype(np.int64)
    external = degrees - internal

    edge_chunks: List[np.ndarray] = []
    # Within-community wiring: one configuration model per community.
    for c in range(num_communities):
        members = np.flatnonzero(labels == c)
        if members.size < 2:
            # Too small for internal edges; push stubs to the global pool.
            external[members] += internal[members]
            internal[members] = 0
            continue
        local_deg = internal[members].copy()
        if int(local_deg.sum()) % 2 != 0:
            bump = int(rng.integers(members.size))
            if local_deg[bump] > 0:
                local_deg[bump] -= 1
                external[members[bump]] += 1
            else:
                local_deg[bump] += 1
        sub = graph_from_degree_sequence_stubs(local_deg, rng)
        sub_edges = sub.edges()
        if sub_edges.size:
            edge_chunks.append(members[sub_edges])
    # Cross-community wiring: global configuration model on external stubs.
    if int(external.sum()) % 2 != 0:
        external[int(rng.integers(n))] += 1
    cross = graph_from_degree_sequence_stubs(external, rng)
    cross_edges = cross.edges()
    if cross_edges.size:
        edge_chunks.append(cross_edges)

    edges = np.concatenate(edge_chunks, axis=0) if edge_chunks else np.zeros((0, 2), dtype=np.int64)
    return Graph.from_edges(edges, num_nodes=n), labels


def two_community_bridge(
    community_size: int,
    internal_degree: int,
    bridge_edges: int,
    *,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """Two dense communities joined by exactly ``bridge_edges`` edges.

    The canonical slow-mixing example: the SLEM (and so the mixing time)
    is controlled directly by ``bridge_edges``, which makes this the
    sharpest test fixture for the whole measurement stack, and a model of
    the honest/sybil two-region world from Section 5.
    """
    if bridge_edges < 1:
        raise ValueError("need at least one bridge edge to stay connected")
    if bridge_edges > community_size:
        raise ValueError("bridge_edges may not exceed community_size")
    rng = as_rng(seed)
    from .random_graphs import random_regular  # local import avoids a cycle

    d = internal_degree
    if (community_size * d) % 2 != 0:
        d += 1
    left = random_regular(community_size, d, seed=rng)
    right = random_regular(community_size, d, seed=rng)
    edges = [left.edges(), right.edges() + community_size]
    lhs = rng.choice(community_size, size=bridge_edges, replace=False)
    rhs = rng.choice(community_size, size=bridge_edges, replace=False) + community_size
    edges.append(np.stack([lhs, rhs], axis=1))
    labels = np.repeat(np.asarray([0, 1], dtype=np.int64), community_size)
    graph = Graph.from_edges(np.concatenate(edges, axis=0), num_nodes=2 * community_size)
    return graph, labels
