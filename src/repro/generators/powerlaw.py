"""Power-law degree sequences and the (erased) configuration model.

Social-network degree distributions are heavy tailed; the dataset
stand-ins use a discrete power law ``P(k) ∝ k^{-gamma}`` truncated to
``[k_min, k_max]``, wired by the configuration model.  A target edge
count can be requested and is met by scaling the sequence.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..graph import Graph, graph_from_degree_sequence_stubs

__all__ = [
    "powerlaw_degree_sequence",
    "powerlaw_configuration_model",
    "fit_powerlaw_exponent",
]


def powerlaw_degree_sequence(
    n: int,
    gamma: float,
    *,
    k_min: int = 1,
    k_max=None,
    target_edges=None,
    seed=None,
) -> np.ndarray:
    """Sample ``n`` degrees from a truncated discrete power law.

    Parameters
    ----------
    gamma:
        Exponent (> 1).  Typical social graphs: 2 — 3.
    k_min, k_max:
        Inclusive degree range; ``k_max`` defaults to ``sqrt(n) * 4``
        (a standard structural cutoff that keeps the configuration model's
        multi-edge erasure negligible).
    target_edges:
        When given, the sampled sequence is rescaled (by probabilistic
        rounding) so its sum is as close as possible to ``2 *
        target_edges``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1")
    if k_min < 1:
        raise ValueError("k_min must be at least 1")
    rng = as_rng(seed)
    if k_max is None:
        k_max = max(k_min, int(4 * np.sqrt(n)))
    k_max = min(int(k_max), n - 1) if n > 1 else k_min
    if k_max < k_min:
        k_max = k_min
    support = np.arange(k_min, k_max + 1, dtype=np.float64)
    pmf = support ** (-gamma)
    pmf /= pmf.sum()
    degrees = rng.choice(support.astype(np.int64), size=n, p=pmf)

    if target_edges is not None:
        want = 2 * int(target_edges)
        have = int(degrees.sum())
        if have > 0 and want > 0:
            scale = want / have
            scaled = degrees * scale
            floor = np.floor(scaled).astype(np.int64)
            frac = scaled - floor
            floor += (rng.random(n) < frac).astype(np.int64)
            degrees = np.clip(floor, 1, max(k_max, 1))
    # Ensure an even stub count by bumping one node.
    if int(degrees.sum()) % 2 != 0:
        degrees[int(rng.integers(n))] += 1
    return degrees.astype(np.int64)


def powerlaw_configuration_model(
    n: int,
    gamma: float,
    *,
    k_min: int = 1,
    k_max=None,
    target_edges=None,
    seed=None,
) -> Graph:
    """An erased-configuration-model graph with power-law degrees.

    See :func:`powerlaw_degree_sequence` for parameters.  The erasure of
    self loops / multi-edges means realised ``m`` lands slightly below the
    stub count; the dataset registry compensates by overdrawing ~2%.
    """
    rng = as_rng(seed)
    degrees = powerlaw_degree_sequence(
        n, gamma, k_min=k_min, k_max=k_max, target_edges=target_edges, seed=rng
    )
    return graph_from_degree_sequence_stubs(degrees, rng)


def fit_powerlaw_exponent(degrees: np.ndarray, *, k_min: int = 1) -> float:
    """Maximum-likelihood estimate of the power-law exponent.

    Uses the continuous-approximation Hill estimator
    ``gamma = 1 + n / sum(ln(k / (k_min - 0.5)))`` over degrees >= k_min.
    Handy for checking that generated stand-ins match their recipes.
    """
    deg = np.asarray(degrees, dtype=np.float64)
    deg = deg[deg >= k_min]
    if deg.size == 0:
        raise ValueError("no degrees at or above k_min")
    return 1.0 + deg.size / float(np.log(deg / (k_min - 0.5)).sum())
