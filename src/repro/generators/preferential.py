"""Preferential-attachment models: Barabási–Albert and Holme–Kim.

BA graphs have power-law degrees but almost no clustering; the Holme–Kim
variant adds triad-closure steps, giving the high clustering typical of
online social networks.  Both grow node-by-node, so they also produce the
dense-core / sparse-periphery shape that makes OSN stand-ins mix fast in
the core while keeping slow-mixing whiskers.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..graph import Graph, GraphBuilder

__all__ = ["barabasi_albert", "holme_kim"]


def barabasi_albert(n: int, m_per_node: int, *, seed=None) -> Graph:
    """Barabási–Albert preferential attachment.

    Starts from a star on ``m_per_node + 1`` nodes; each arriving node
    attaches to ``m_per_node`` distinct existing nodes chosen proportional
    to degree (implemented with the classic repeated-endpoint trick: pick a
    uniform entry of the running edge-endpoint list).
    """
    if m_per_node < 1:
        raise ValueError("m_per_node must be at least 1")
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = as_rng(seed)
    builder = GraphBuilder(n)
    # Seed star keeps the graph connected from the start.
    endpoints = []
    for v in range(1, m_per_node + 1):
        builder.add_edge(0, v)
        endpoints.extend((0, v))
    endpoint_arr = np.asarray(endpoints, dtype=np.int64)

    for new in range(m_per_node + 1, n):
        targets = set()
        while len(targets) < m_per_node:
            pick = int(endpoint_arr[rng.integers(endpoint_arr.size)])
            targets.add(pick)
        fresh = []
        for t in targets:
            builder.add_edge(new, t)
            fresh.extend((new, t))
        endpoint_arr = np.concatenate([endpoint_arr, np.asarray(fresh, dtype=np.int64)])
    return builder.build()


def holme_kim(n: int, m_per_node: int, triad_prob: float, *, seed=None) -> Graph:
    """Holme–Kim growing network with tunable clustering.

    Like BA, but after each preferential attachment step, with probability
    ``triad_prob`` the *next* link of the arriving node goes to a random
    neighbour of the previous target (closing a triangle) instead of a new
    preferential pick.
    """
    if not 0.0 <= triad_prob <= 1.0:
        raise ValueError("triad_prob must be in [0, 1]")
    if m_per_node < 1:
        raise ValueError("m_per_node must be at least 1")
    if n <= m_per_node:
        raise ValueError("n must exceed m_per_node")
    rng = as_rng(seed)
    builder = GraphBuilder(n)
    adjacency = [set() for _ in range(n)]

    def connect(u: int, v: int) -> None:
        builder.add_edge(u, v)
        adjacency[u].add(v)
        adjacency[v].add(u)

    endpoints = []
    for v in range(1, m_per_node + 1):
        connect(0, v)
        endpoints.extend((0, v))
    endpoint_arr = np.asarray(endpoints, dtype=np.int64)

    for new in range(m_per_node + 1, n):
        fresh = []
        last_target = None
        links = 0
        guard = 0
        while links < m_per_node and guard < 64 * m_per_node:
            guard += 1
            candidate = None
            if last_target is not None and rng.random() < triad_prob:
                nbrs = [w for w in adjacency[last_target] if w != new and w not in adjacency[new]]
                if nbrs:
                    candidate = int(nbrs[int(rng.integers(len(nbrs)))])
            if candidate is None:
                pick = int(endpoint_arr[rng.integers(endpoint_arr.size)])
                if pick != new and pick not in adjacency[new]:
                    candidate = pick
            if candidate is None:
                continue
            connect(new, candidate)
            fresh.extend((new, candidate))
            last_target = candidate
            links += 1
        endpoint_arr = np.concatenate([endpoint_arr, np.asarray(fresh, dtype=np.int64)])
    return builder.build()
