"""Classical random-graph models: Erdős–Rényi and random regular graphs.

Erdős–Rényi graphs are near-optimal expanders (SLEM ≈ 2/√d for G(n, m)),
so they serve as the "fast mixing" control in tests and ablations: a
measurement pipeline that reports slow mixing on G(n, m) is broken.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..graph import Graph, graph_from_degree_sequence_stubs

__all__ = ["erdos_renyi_gnm", "erdos_renyi_gnp", "random_regular"]


def erdos_renyi_gnm(n: int, m: int, *, seed=None) -> Graph:
    """Uniform random graph with exactly ``n`` nodes and ``m`` edges.

    Sampling is rejection-free for the sparse regime used here: pick ``m``
    distinct unordered pairs by sampling linear codes of the upper
    triangle without replacement.
    """
    if n < 0:
        raise ValueError("n must be nonnegative")
    max_edges = n * (n - 1) // 2
    if not 0 <= m <= max_edges:
        raise ValueError(f"m={m} out of range [0, {max_edges}] for n={n}")
    rng = as_rng(seed)
    if m == 0:
        return Graph.empty(n)
    if max_edges <= 4 * m:
        # Dense-ish: enumerate all pairs and choose without replacement.
        codes = rng.choice(max_edges, size=m, replace=False)
    else:
        # Sparse: sample with replacement then top up until m distinct codes.
        codes = np.unique(rng.integers(0, max_edges, size=int(m * 1.2) + 8))
        while codes.size < m:
            extra = rng.integers(0, max_edges, size=m)
            codes = np.unique(np.concatenate([codes, extra]))
        codes = rng.permutation(codes)[:m]
    u, v = _decode_pairs(codes, n)
    return Graph.from_edges(np.stack([u, v], axis=1), num_nodes=n)


def _decode_pairs(codes: np.ndarray, n: int):
    """Decode linear upper-triangle codes into (u, v) with u < v.

    Code layout: pair (u, v), u < v, has code u*n + v minus the triangle
    offset; we use the simpler row-major walk solved with a vectorised
    quadratic formula.
    """
    codes = codes.astype(np.float64)
    # Row r starts at offset r*n - r*(r+1)/2; invert with the quadratic formula.
    u = np.floor((2 * n - 1 - np.sqrt((2 * n - 1) ** 2 - 8 * codes)) / 2).astype(np.int64)
    start = u * n - u * (u + 1) // 2
    v = (codes.astype(np.int64) - start) + u + 1
    return u, v


def erdos_renyi_gnp(n: int, p: float, *, seed=None) -> Graph:
    """Bernoulli random graph G(n, p) — each pair is an edge independently.

    Implemented by sampling the binomial edge count then delegating to
    :func:`erdos_renyi_gnm`, which is exact because conditioned on its
    size, a G(n, p) edge set is uniform.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = as_rng(seed)
    max_edges = n * (n - 1) // 2
    m = int(rng.binomial(max_edges, p)) if max_edges else 0
    return erdos_renyi_gnm(n, m, seed=rng)


def random_regular(n: int, d: int, *, seed=None, max_repair_rounds: int = 200) -> Graph:
    """A random ``d``-regular graph: stub pairing plus edge-swap repair.

    Whole-pairing rejection has success probability ≈ exp(-(d²-1)/4) per
    try — hopeless beyond d ≈ 3 — so instead defective pairs (self loops
    and duplicates) are repaired by degree-preserving 2-swaps against
    randomly chosen clean pairs, which converges in a handful of rounds.
    """
    if d < 0 or d >= max(n, 1):
        raise ValueError(f"need 0 <= d < n, got d={d}, n={n}")
    if (n * d) % 2 != 0:
        raise ValueError("n * d must be even for a d-regular graph")
    rng = as_rng(seed)
    if d == 0:
        return Graph.empty(n)
    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    rng.shuffle(stubs)
    pairs = [(int(u), int(v)) for u, v in zip(stubs[0::2], stubs[1::2])]

    def pair_key(u: int, v: int):
        return (u, v) if u < v else (v, u)

    seen: dict = {}
    defective = []
    for idx, (u, v) in enumerate(pairs):
        key = pair_key(u, v)
        if u == v or key in seen:
            defective.append(idx)
        else:
            seen[key] = idx
    for _ in range(max_repair_rounds):
        if not defective:
            break
        still_bad = []
        for idx in defective:
            u, v = pairs[idx]
            fixed = False
            for _attempt in range(64):
                jdx = int(rng.integers(len(pairs)))
                if jdx == idx or jdx in defective:
                    continue
                a, b = pairs[jdx]
                # Swap to (u, b), (a, v); check both stay simple and new.
                if u == b or a == v:
                    continue
                k1, k2 = pair_key(u, b), pair_key(a, v)
                if k1 in seen or k2 in seen or k1 == k2:
                    continue
                del seen[pair_key(a, b)]
                pairs[idx] = (u, b)
                pairs[jdx] = (a, v)
                seen[k1] = idx
                seen[k2] = jdx
                fixed = True
                break
            if not fixed:
                still_bad.append(idx)
        defective = still_bad
    if defective:
        # Extremely unlikely at sane (n, d); reshuffle and retry whole.
        return random_regular(n, d, seed=rng, max_repair_rounds=max_repair_rounds)
    return Graph.from_edges(np.asarray(pairs, dtype=np.int64), num_nodes=n)
