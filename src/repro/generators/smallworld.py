"""Watts–Strogatz small-world graphs.

The rewiring probability ``p`` interpolates between a ring lattice
(extremely slow mixing, SLEM → 1) and a random graph (fast mixing), which
makes WS the perfect knob for calibrating the mixing-time machinery: the
measured T(ε) must decrease monotonically in ``p``.
"""

from __future__ import annotations

import numpy as np

from .._util import as_rng
from ..graph import Graph

__all__ = ["watts_strogatz", "ring_lattice"]


def ring_lattice(n: int, k: int) -> Graph:
    """A ring lattice: node ``i`` connects to its ``k/2`` nearest
    neighbours on each side (``k`` must be even and < n)."""
    if k % 2 != 0:
        raise ValueError("k must be even")
    if not 0 <= k < n:
        raise ValueError("need 0 <= k < n")
    if k == 0:
        return Graph.empty(n)
    nodes = np.arange(n, dtype=np.int64)
    edges = []
    for offset in range(1, k // 2 + 1):
        edges.append(np.stack([nodes, (nodes + offset) % n], axis=1))
    return Graph.from_edges(np.concatenate(edges, axis=0), num_nodes=n)


def watts_strogatz(n: int, k: int, p: float, *, seed=None) -> Graph:
    """Watts–Strogatz rewiring model.

    Each lattice edge's far endpoint is rewired with probability ``p`` to a
    uniformly random node (avoiding loops and duplicates; if no valid
    target exists the edge is kept).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = as_rng(seed)
    base = ring_lattice(n, k)
    if p == 0.0 or base.num_edges == 0:
        return base
    adjacency = [set(map(int, base.neighbors(v))) for v in range(n)]
    edges = base.edges()
    for idx in range(edges.shape[0]):
        if rng.random() >= p:
            continue
        u, v = int(edges[idx, 0]), int(edges[idx, 1])
        if v not in adjacency[u]:
            continue  # already rewired away by an earlier step
        for _ in range(16):  # bounded retry keeps the loop total
            w = int(rng.integers(n))
            if w != u and w not in adjacency[u]:
                adjacency[u].discard(v)
                adjacency[v].discard(u)
                adjacency[u].add(w)
                adjacency[w].add(u)
                break
    rewired = [(u, w) for u in range(n) for w in adjacency[u] if u < w]
    return Graph.from_edges(rewired, num_nodes=n)
