"""Incremental graph construction helpers.

:class:`GraphBuilder` accumulates edges with cheap python/numpy appends and
produces an immutable :class:`~repro.graph.Graph` at the end.  Generators
and scenario builders use it so intermediate states never pay CSR
construction costs.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph

__all__ = ["GraphBuilder", "graph_from_degree_sequence_stubs"]


class GraphBuilder:
    """Accumulates undirected edges and builds a :class:`Graph`.

    Duplicate edges and self loops may be added freely; they are removed
    when :meth:`build` canonicalises the edge set.
    """

    def __init__(self, num_nodes: int = 0):
        if num_nodes < 0:
            raise ValueError("num_nodes must be nonnegative")
        self._num_nodes = int(num_nodes)
        self._chunks: List[np.ndarray] = []
        self._pending: List[Tuple[int, int]] = []

    @property
    def num_nodes(self) -> int:
        """Current size of the node set (grows as edges reference new ids)."""
        return self._num_nodes

    def add_node(self) -> int:
        """Allocate and return a fresh node id."""
        node = self._num_nodes
        self._num_nodes += 1
        return node

    def add_nodes(self, count: int) -> np.ndarray:
        """Allocate ``count`` fresh node ids; returns them as an array."""
        if count < 0:
            raise ValueError("count must be nonnegative")
        ids = np.arange(self._num_nodes, self._num_nodes + count, dtype=np.int64)
        self._num_nodes += int(count)
        return ids

    def add_edge(self, u: int, v: int) -> None:
        """Queue a single undirected edge (node set grows as needed)."""
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphFormatError("negative node ids are not allowed")
        self._num_nodes = max(self._num_nodes, u + 1, v + 1)
        self._pending.append((u, v))
        if len(self._pending) >= 65536:
            self._flush()

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> None:
        """Queue a batch of undirected edges (array input is fast-pathed)."""
        arr = np.asarray(edges if isinstance(edges, np.ndarray) else list(edges), dtype=np.int64)
        if arr.size == 0:
            return
        arr = arr.reshape(-1, 2)
        if arr.min() < 0:
            raise GraphFormatError("negative node ids are not allowed")
        self._num_nodes = max(self._num_nodes, int(arr.max()) + 1)
        self._chunks.append(arr)

    def edge_count_upper_bound(self) -> int:
        """Number of queued edge records (before dedup)."""
        return sum(chunk.shape[0] for chunk in self._chunks) + len(self._pending)

    def _flush(self) -> None:
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []

    def build(self) -> Graph:
        """Produce the immutable graph (dedup + canonicalise happens here)."""
        self._flush()
        if self._chunks:
            edges = np.concatenate(self._chunks, axis=0)
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
        return Graph.from_edges(edges, num_nodes=self._num_nodes)


def graph_from_degree_sequence_stubs(degrees: np.ndarray, rng) -> Graph:
    """Configuration-model wiring of a degree sequence.

    Creates ``deg[v]`` stubs per node, shuffles, and pairs consecutive
    stubs.  Self loops and multi-edges produced by the pairing are simply
    dropped (the standard "erased configuration model"), so realised
    degrees can be slightly below the requested ones — an acceptable and
    well-known bias that vanishes for large sparse graphs.

    The degree sum must be even (raise otherwise).
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    if degrees.size and degrees.min() < 0:
        raise ValueError("degrees must be nonnegative")
    total = int(degrees.sum())
    if total % 2 != 0:
        raise ValueError("degree sequence must have an even sum")
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    u = stubs[0::2]
    v = stubs[1::2]
    edges = np.stack([u, v], axis=1)
    return Graph.from_edges(edges, num_nodes=degrees.size)
