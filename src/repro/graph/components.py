"""Connected-component analysis.

The mixing time is undefined on a disconnected graph (the walk is
reducible), so the paper — and this library — always works on the largest
connected component of each dataset (Section 4).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .graph import Graph

__all__ = [
    "connected_component_labels",
    "connected_components",
    "num_connected_components",
    "is_connected",
    "largest_component_nodes",
    "largest_connected_component",
    "induced_subgraph",
]


def connected_component_labels(graph: Graph) -> np.ndarray:
    """Label every node with its component id (0-based, in discovery order).

    Runs a sequence of array-based BFS sweeps; total cost is O(n + m).
    """
    n = graph.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        labels[start] = current
        frontier = np.array([start], dtype=np.int64)
        while frontier.size:
            nxt = []
            for u in frontier:
                for v in indices[indptr[u]:indptr[u + 1]]:
                    if labels[v] == -1:
                        labels[v] = current
                        nxt.append(v)
            frontier = np.asarray(nxt, dtype=np.int64)
        current += 1
    return labels


def connected_components(graph: Graph) -> List[np.ndarray]:
    """The node sets of each connected component, largest first."""
    labels = connected_component_labels(graph)
    if labels.size == 0:
        return []
    comps = [np.flatnonzero(labels == c) for c in range(int(labels.max()) + 1)]
    comps.sort(key=len, reverse=True)
    return comps


def num_connected_components(graph: Graph) -> int:
    """Number of connected components (0 for the empty graph)."""
    labels = connected_component_labels(graph)
    return int(labels.max()) + 1 if labels.size else 0


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph is not)."""
    if graph.num_nodes == 0:
        return False
    return num_connected_components(graph) == 1


def largest_component_nodes(graph: Graph) -> np.ndarray:
    """Sorted node ids of the largest connected component."""
    comps = connected_components(graph)
    if not comps:
        return np.zeros(0, dtype=np.int64)
    return np.sort(comps[0])


def induced_subgraph(graph: Graph, nodes: np.ndarray) -> Tuple[Graph, np.ndarray]:
    """The subgraph induced by ``nodes``.

    Returns ``(subgraph, node_map)`` where ``node_map[i]`` is the original
    id of subgraph node ``i``.  Node ids in the subgraph are the ranks of
    the (deduplicated, sorted) input nodes.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    if nodes.size and (nodes[0] < 0 or nodes[-1] >= graph.num_nodes):
        raise IndexError("induced_subgraph: node ids out of range")
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[nodes] = True
    rank = np.full(graph.num_nodes, -1, dtype=np.int64)
    rank[nodes] = np.arange(nodes.size, dtype=np.int64)

    edges = graph.edges()
    if edges.size:
        keep = mask[edges[:, 0]] & mask[edges[:, 1]]
        kept = edges[keep]
        remapped = np.stack([rank[kept[:, 0]], rank[kept[:, 1]]], axis=1)
    else:
        remapped = np.zeros((0, 2), dtype=np.int64)
    sub = Graph.from_edges(remapped, num_nodes=nodes.size)
    return sub, nodes


def largest_connected_component(graph: Graph) -> Tuple[Graph, np.ndarray]:
    """The largest connected component as its own graph.

    Returns ``(subgraph, node_map)`` like :func:`induced_subgraph`.  This is
    the canonical preprocessing step before any mixing-time measurement.
    """
    return induced_subgraph(graph, largest_component_nodes(graph))
