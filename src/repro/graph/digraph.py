"""Directed graphs — the substrate for the paper's stated future work.

Section 4 notes that the directed datasets (wiki-vote, Slashdot,
Epinions, LiveJournal) were *converted to undirected* before
measurement, "similar to what is performed in other work".  The authors'
follow-up work measures mixing on the directed graphs themselves; this
module provides the directed substrate so that extension lives here too:

* :class:`DiGraph` — immutable CSR digraph with both out- and
  in-adjacency,
* strongly connected components (iterative Tarjan),
* conversion to/from the undirected :class:`~repro.graph.Graph`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .._util import check_node_index
from .graph import Graph

__all__ = ["DiGraph", "strongly_connected_components", "largest_strongly_connected_component"]


class DiGraph:
    """A simple directed graph (no self loops, no parallel arcs) in CSR form.

    ``out_indptr/out_indices`` index successors; ``in_indptr/in_indices``
    predecessors.  Arcs are deduplicated and successor lists sorted.
    """

    __slots__ = ("_out_indptr", "_out_indices", "_in_indptr", "_in_indices")

    def __init__(self, out_indptr: np.ndarray, out_indices: np.ndarray, *, validate: bool = True):
        out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        out_indices = np.ascontiguousarray(out_indices, dtype=np.int64)
        if validate:
            self._validate(out_indptr, out_indices)
        self._out_indptr = out_indptr
        self._out_indices = out_indices
        self._in_indptr, self._in_indices = self._build_reverse(out_indptr, out_indices)

    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphFormatError("indptr and indices must be 1-D")
        if indptr.size == 0 or indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError("malformed indptr")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be nondecreasing")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphFormatError("indices out of range")
        for v in range(n):
            row = indices[indptr[v]:indptr[v + 1]]
            if row.size and np.any(np.diff(row) <= 0):
                raise GraphFormatError(f"successors of {v} unsorted or duplicated")
            if np.any(row == v):
                raise GraphFormatError(f"self loop at {v}")

    @staticmethod
    def _build_reverse(indptr: np.ndarray, indices: np.ndarray):
        n = indptr.size - 1
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(in_indptr, indices + 1, 1)
        np.cumsum(in_indptr, out=in_indptr)
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        order = np.lexsort((src, indices))
        return in_indptr, src[order]

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]], *, num_nodes: Optional[int] = None) -> "DiGraph":
        """Build from ``(source, target)`` arc pairs (loops/dups dropped)."""
        arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if arr.size == 0:
            n = int(num_nodes or 0)
            return cls(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), validate=False)
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphFormatError(f"edges must be (k, 2)-shaped, got {arr.shape}")
        if arr.min() < 0:
            raise GraphFormatError("negative node ids are not allowed")
        keep = arr[:, 0] != arr[:, 1]
        arr = np.unique(arr[keep], axis=0)
        n = int(arr.max()) + 1 if arr.size else 0
        if num_nodes is not None:
            if num_nodes < n:
                raise GraphFormatError("num_nodes smaller than max id + 1")
            n = int(num_nodes)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, arr[:, 0] + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, arr[:, 1].copy(), validate=False)

    @classmethod
    def empty(cls, num_nodes: int = 0) -> "DiGraph":
        return cls(np.zeros(int(num_nodes) + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), validate=False)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._out_indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of directed arcs."""
        return self._out_indices.size

    @property
    def out_indptr(self) -> np.ndarray:
        return self._out_indptr

    @property
    def out_indices(self) -> np.ndarray:
        return self._out_indices

    @property
    def out_degrees(self) -> np.ndarray:
        return np.diff(self._out_indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        return np.diff(self._in_indptr)

    def successors(self, node: int) -> np.ndarray:
        node = check_node_index(node, self.num_nodes)
        return self._out_indices[self._out_indptr[node]:self._out_indptr[node + 1]]

    def predecessors(self, node: int) -> np.ndarray:
        node = check_node_index(node, self.num_nodes)
        return self._in_indices[self._in_indptr[node]:self._in_indptr[node + 1]]

    def has_arc(self, u: int, v: int) -> bool:
        u = check_node_index(u, self.num_nodes, name="u")
        v = check_node_index(v, self.num_nodes, name="v")
        row = self.successors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def arcs(self) -> np.ndarray:
        """All arcs as a ``(num_arcs, 2)`` array."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.out_degrees)
        return np.stack([src, self._out_indices], axis=1)

    def iter_arcs(self) -> Iterator[Tuple[int, int]]:
        for u, v in self.arcs():
            yield int(u), int(v)

    # ------------------------------------------------------------------
    def to_undirected(self) -> Graph:
        """The paper's Section 4 preprocessing: every arc becomes an
        undirected edge."""
        return Graph.from_edges(self.arcs(), num_nodes=self.num_nodes)

    @classmethod
    def from_undirected(cls, graph: Graph) -> "DiGraph":
        """Both orientations of every undirected edge."""
        return cls(graph.indptr.copy(), graph.indices.copy(), validate=False)

    def reverse(self) -> "DiGraph":
        """The graph with every arc flipped."""
        arcs = self.arcs()
        return DiGraph.from_edges(arcs[:, ::-1], num_nodes=self.num_nodes)

    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return np.array_equal(self._out_indptr, other._out_indptr) and np.array_equal(
            self._out_indices, other._out_indices
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_arcs, self._out_indices[:64].tobytes()))

    def __repr__(self) -> str:
        return f"DiGraph(n={self.num_nodes}, arcs={self.num_arcs})"


def strongly_connected_components(graph: DiGraph) -> List[np.ndarray]:
    """Strongly connected components (iterative Tarjan), largest first."""
    n = graph.num_nodes
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: List[int] = []
    components: List[np.ndarray] = []
    counter = 0
    indptr, indices = graph.out_indptr, graph.out_indices

    for root in range(n):
        if index[root] != -1:
            continue
        # Iterative Tarjan with an explicit call stack of (node, next-child).
        call: List[Tuple[int, int]] = [(root, 0)]
        while call:
            v, child = call[-1]
            if child == 0:
                index[v] = lowlink[v] = counter
                counter += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            row = indices[indptr[v]:indptr[v + 1]]
            while child < row.size:
                w = int(row[child])
                child += 1
                if index[w] == -1:
                    call[-1] = (v, child)
                    call.append((w, 0))
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            call.pop()
            if call:
                parent = call[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
            if lowlink[v] == index[v]:
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    members.append(w)
                    if w == v:
                        break
                components.append(np.sort(np.asarray(members, dtype=np.int64)))
    components.sort(key=len, reverse=True)
    return components


def largest_strongly_connected_component(graph: DiGraph) -> Tuple[DiGraph, np.ndarray]:
    """The largest SCC as its own digraph; returns ``(subgraph, node_map)``.

    The directed analogue of the paper's largest-connected-component
    preprocessing: a directed walk's mixing time is undefined outside one
    strongly connected component.
    """
    comps = strongly_connected_components(graph)
    if not comps:
        return DiGraph.empty(0), np.zeros(0, dtype=np.int64)
    nodes = comps[0]
    rank = np.full(graph.num_nodes, -1, dtype=np.int64)
    rank[nodes] = np.arange(nodes.size, dtype=np.int64)
    arcs = graph.arcs()
    if arcs.size:
        keep = (rank[arcs[:, 0]] >= 0) & (rank[arcs[:, 1]] >= 0)
        remapped = np.stack([rank[arcs[keep, 0]], rank[arcs[keep, 1]]], axis=1)
    else:
        remapped = np.zeros((0, 2), dtype=np.int64)
    return DiGraph.from_edges(remapped, num_nodes=nodes.size), nodes
