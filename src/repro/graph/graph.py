"""Immutable compressed-sparse-row (CSR) undirected graph.

This is the substrate every other subsystem builds on.  A :class:`Graph`
stores the adjacency structure of a simple undirected graph (no self loops,
no parallel edges) in two numpy arrays:

``indptr``
    ``int64`` array of length ``n + 1``; the neighbours of node ``i`` are
    ``indices[indptr[i]:indptr[i + 1]]``.
``indices``
    ``int64`` array of length ``2m``; each undirected edge appears twice,
    once in each endpoint's neighbour list, and every neighbour list is
    sorted ascending.

The representation is append-only by construction: all mutating operations
(`repro.graph.transforms`) return new graphs.  This makes graphs safe to
cache and share between experiments.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from ..errors import GraphFormatError
from .._util import check_node_index, unique_sorted_edges

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph in CSR form.

    Instances should normally be created through the constructors
    :meth:`from_edges`, :meth:`from_adjacency`, or the functions in
    :mod:`repro.graph.builders` / :mod:`repro.generators`, rather than by
    passing raw CSR arrays.

    Parameters
    ----------
    indptr, indices:
        CSR arrays as described in the module docstring.  They are
        validated unless ``validate=False`` (used internally by trusted
        constructors to skip redundant work).
    """

    __slots__ = ("_indptr", "_indices", "_degrees", "_memo")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, validate: bool = True):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if validate:
            self._validate(indptr, indices)
        self._indptr = indptr
        self._indices = indices
        self._degrees = np.diff(indptr)
        #: Cache for derived, immutable arrays (arc sources, reverse-slot
        #: maps, ...).  Graphs are append-only, so anything computed from
        #: the CSR arrays stays valid for the graph's whole lifetime; the
        #: route engine uses this to avoid rebuilding O(2m) arrays on
        #: every instance construction.  Keys are short strings, values
        #: read-only ndarrays.  Excluded from equality/hashing.
        self._memo: dict = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphFormatError("indptr and indices must be 1-D arrays")
        if indptr.size == 0:
            raise GraphFormatError("indptr must have length n + 1 >= 1")
        if indptr[0] != 0 or indptr[-1] != indices.size:
            raise GraphFormatError("indptr must start at 0 and end at len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be nondecreasing")
        n = indptr.size - 1
        if indices.size:
            if indices.min() < 0 or indices.max() >= n:
                raise GraphFormatError("indices contain out-of-range node ids")
        for i in range(n):
            row = indices[indptr[i]:indptr[i + 1]]
            if row.size == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise GraphFormatError(
                    f"neighbour list of node {i} is not strictly increasing "
                    "(unsorted or parallel edges)"
                )
            if np.any(row == i):
                raise GraphFormatError(f"self loop at node {i}")
        # Symmetry: every arc must have its reverse.  Checked by sorting
        # the arc sets, which is O(m log m) but only runs when validate=True.
        src = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
        fwd = src * np.int64(n) + indices
        rev = indices * np.int64(n) + src
        if not np.array_equal(np.sort(fwd), np.sort(rev)):
            raise GraphFormatError("adjacency is not symmetric")

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int]], *, num_nodes: Optional[int] = None) -> "Graph":
        """Build a graph from an iterable of ``(u, v)`` pairs.

        Self loops and duplicate edges (in either orientation) are dropped.
        ``num_nodes`` extends the node set beyond ``max id + 1`` to include
        isolated nodes.
        """
        edge_arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if edge_arr.size == 0:
            n = int(num_nodes or 0)
            return cls(np.zeros(n + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), validate=False)
        if edge_arr.ndim != 2 or edge_arr.shape[1] != 2:
            raise GraphFormatError(f"edges must be (k, 2)-shaped, got {edge_arr.shape}")
        if edge_arr.min() < 0:
            raise GraphFormatError("negative node ids are not allowed")
        u, v = unique_sorted_edges(edge_arr[:, 0], edge_arr[:, 1])
        n = int(edge_arr.max()) + 1
        if num_nodes is not None:
            if num_nodes < n:
                raise GraphFormatError(f"num_nodes={num_nodes} smaller than max node id + 1 = {n}")
            n = int(num_nodes)
        return cls._from_canonical_edges(u, v, n)

    @classmethod
    def _from_canonical_edges(cls, u: np.ndarray, v: np.ndarray, n: int) -> "Graph":
        """Build from deduplicated, loop-free edges with ``u < v`` (trusted)."""
        src = np.concatenate([u, v])
        dst = np.concatenate([v, u])
        order = np.lexsort((dst, src))
        src, dst = src[order], dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(indptr, dst, validate=False)

    @classmethod
    def from_adjacency(cls, adjacency: Iterable[Iterable[int]]) -> "Graph":
        """Build a graph from an adjacency-list representation.

        The input must describe a symmetric structure; missing reverse arcs
        are added automatically (the union of both directions is used).
        """
        edges = []
        num_nodes = 0
        for i, nbrs in enumerate(adjacency):
            num_nodes = i + 1
            for j in nbrs:
                edges.append((i, int(j)))
        return cls.from_edges(edges, num_nodes=num_nodes)

    @classmethod
    def empty(cls, num_nodes: int = 0) -> "Graph":
        """A graph with ``num_nodes`` nodes and no edges."""
        return cls(np.zeros(int(num_nodes) + 1, dtype=np.int64), np.zeros(0, dtype=np.int64), validate=False)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n`` (paper notation: :math:`n = |V|`)."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``m`` (paper notation: :math:`m = |E|`)."""
        return self._indices.size // 2

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row pointer (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column indices (length ``2m``)."""
        return self._indices

    @property
    def degrees(self) -> np.ndarray:
        """Degree of every node as an int64 array of length ``n``."""
        return self._degrees

    @property
    def is_memmap(self) -> bool:
        """Whether the CSR arrays are disk-backed memory maps.

        ``False`` for ordinary in-memory graphs; the on-disk container
        view :class:`repro.graph.storage.MemmapGraph` overrides it so
        the operator layer can pick out-of-core kernels without
        importing the storage module.
        """
        return False

    def degree(self, node: int) -> int:
        """Degree of a single node."""
        node = check_node_index(node, self.num_nodes)
        return int(self._degrees[node])

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbour ids of ``node`` (a view — do not mutate)."""
        node = check_node_index(node, self.num_nodes)
        return self._indices[self._indptr[node]:self._indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` exists (binary search)."""
        u = check_node_index(u, self.num_nodes, name="u")
        v = check_node_index(v, self.num_nodes, name="v")
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edges(self) -> np.ndarray:
        """All undirected edges as a ``(m, 2)`` array with ``u < v`` per row."""
        src = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self._degrees)
        mask = src < self._indices
        return np.stack([src[mask], self._indices[mask]], axis=1)

    def iter_edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over undirected edges as python int pairs with ``u < v``."""
        for u, v in self.edges():
            yield int(u), int(v)

    # ------------------------------------------------------------------
    # Linear-algebra views
    # ------------------------------------------------------------------
    def adjacency_matrix(self):
        """The adjacency matrix as a ``scipy.sparse.csr_matrix`` of float64."""
        from scipy.sparse import csr_matrix

        data = np.ones(self._indices.size, dtype=np.float64)
        n = self.num_nodes
        return csr_matrix((data, self._indices.copy(), self._indptr.copy()), shape=(n, n))

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node) -> bool:
        try:
            idx = int(node)
        except (TypeError, ValueError):
            return False
        return 0 <= idx < self.num_nodes

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        # Graphs are immutable; hash on a cheap structural summary.
        return hash((self.num_nodes, self.num_edges, self._indices[:64].tobytes()))

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
