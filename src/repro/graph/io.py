"""Graph serialisation: SNAP-style edge lists and a compact binary format.

The paper's datasets are distributed as SNAP edge lists (``# comment``
header lines followed by whitespace-separated node-id pairs).  This module
reads/writes that format so real datasets drop into the pipeline unchanged,
plus a fast ``.npz`` binary for caching generated stand-ins.
"""

from __future__ import annotations

import gzip
import io as _io
from pathlib import Path
from typing import List, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph
from .transforms import to_undirected

__all__ = [
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "load_graph",
    "save_graph",
    "load_npz",
    "save_npz",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


def parse_edge_list(text: str) -> np.ndarray:
    """Parse SNAP edge-list text into a ``(k, 2)`` int64 array.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; each data line must hold at least two integer fields (extra
    fields, e.g. timestamps or weights, are ignored).
    """
    rows: List[Tuple[int, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected two node ids, got {stripped!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer node id in {stripped!r}") from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {lineno}: negative node id in {stripped!r}")
        rows.append((u, v))
    if not rows:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def read_edge_list(path: PathLike) -> np.ndarray:
    """Read a (possibly gzipped) SNAP edge-list file into an edge array."""
    with _open_text(path) as fh:
        return parse_edge_list(fh.read())


def write_edge_list(graph: Graph, path: PathLike, *, header: str = "") -> None:
    """Write the graph as a SNAP-style edge list (one undirected edge per line)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as fh:
        fh.write(f"# Undirected graph: n={graph.num_nodes} m={graph.num_edges}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in graph.iter_edges():
            fh.write(f"{u}\t{v}\n")


def load_graph(path: PathLike, *, num_nodes=None) -> Graph:
    """Read an edge-list file and return the undirected :class:`Graph`.

    Directed inputs are symmetrised (each arc becomes an undirected edge),
    matching the paper's preprocessing.
    """
    edges = read_edge_list(path)
    return to_undirected(edges, num_nodes=num_nodes)


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` (fast cache format)."""
    np.savez_compressed(Path(path), indptr=graph.indptr, indices=graph.indices)


def load_npz(path: PathLike) -> Graph:
    """Load a graph saved with :func:`save_npz` (validated on load)."""
    with np.load(Path(path)) as data:
        if "indptr" not in data or "indices" not in data:
            raise GraphFormatError(f"{path}: not a repro graph npz (missing arrays)")
        return Graph(data["indptr"], data["indices"], validate=True)


def save_graph(graph: Graph, path: PathLike) -> None:
    """Save a graph, picking the format from the file extension.

    ``.npz`` → binary cache; anything else → SNAP edge list (``.gz``
    supported).
    """
    path = Path(path)
    if path.suffix == ".npz":
        save_npz(graph, path)
    else:
        write_edge_list(graph, path)
