"""Graph serialisation: SNAP-style edge lists and a compact binary format.

The paper's datasets are distributed as SNAP edge lists (``# comment``
header lines followed by whitespace-separated node-id pairs).  This module
reads/writes that format so real datasets drop into the pipeline unchanged,
plus a fast ``.npz`` binary for caching generated stand-ins.
"""

from __future__ import annotations

import gzip
import io as _io
import re
import warnings
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from ..errors import GraphFormatError
from .graph import Graph
from .transforms import to_undirected

__all__ = [
    "read_edge_list",
    "parse_edge_list",
    "write_edge_list",
    "load_graph",
    "save_graph",
    "load_npz",
    "save_npz",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


#: Characters a fast-path edge-list body may contain: decimal digits and
#: plain ASCII whitespace.  Anything else (signs, floats, stray text,
#: ``\r`` line endings, interspersed comments) routes the whole input
#: through the reference line-by-line parser, which owns every error
#: message.
_FAST_BODY_RE = re.compile(r"[0-9 \t\n]*\Z")
#: Digit runs too long for int64 bail out of the fast path *before*
#: parsing — ``np.fromstring`` would overflow silently where the
#: reference parser fails loudly.
_FAST_OVERFLOW_RE = re.compile(r"[0-9]{19}")


def _parse_edge_list_fast(text: str) -> Optional[np.ndarray]:
    """Vectorised SNAP parser; ``None`` when the input needs the slow path.

    The reference parser below pays Python interpreter time per *line*
    (strip, split, two ``int()`` calls), which is the bottleneck for a
    69M-edge LiveJournal list.  The fast path instead parses the whole
    body with one C-level numeric scan and recovers the line structure
    from a byte-classification pass:

    1. leading comment/blank lines (the SNAP header) are skipped with
       string scans, never per-line objects;
    2. the remaining body must be pure digits + whitespace — one regex
       probe; any other character (negatives, floats, comments between
       data lines) defers to the reference parser so diagnostics and
       acceptance are *identical*;
    3. ``np.fromstring(..., sep=" ")`` converts every token at C speed;
    4. token starts and newline positions (numpy byte compares) give
       tokens-per-line, so ragged lines keep only their first two fields
       exactly like the reference parser — and any line with a single
       field falls back so the reference parser can raise its error.
    """
    pos, n = 0, len(text)
    while pos < n:
        end = text.find("\n", pos)
        if end == -1:
            end = n
        stripped = text[pos:end].strip()
        if stripped and not stripped.startswith(("#", "%")):
            break
        pos = end + 1
    body = text[pos:]
    if not body.strip():
        return np.zeros((0, 2), dtype=np.int64)
    if _FAST_BODY_RE.fullmatch(body) is None or _FAST_OVERFLOW_RE.search(body):
        return None
    try:
        with warnings.catch_warnings():
            # np.fromstring's text mode is deprecated but is the fastest
            # text-to-int path numpy offers; fall back to the (still
            # C-level) split+array route if it ever disappears.
            warnings.simplefilter("ignore", DeprecationWarning)
            values = np.fromstring(body, dtype=np.int64, sep=" ")
    except Exception:
        values = np.array(body.split(), dtype=np.int64)
    raw = np.frombuffer(body.encode("ascii"), dtype=np.uint8)
    newline = raw == 10
    whitespace = (raw == 32) | (raw == 9) | newline
    token_start = ~whitespace & np.concatenate(([True], whitespace[:-1]))
    starts = np.flatnonzero(token_start)
    if starts.size != values.size:
        return None  # the numeric scan and the token scan disagree
    line_of_char = np.cumsum(newline)
    token_line = line_of_char[starts]
    per_line = np.bincount(token_line, minlength=int(line_of_char[-1]) + 1)
    if np.any(per_line == 1):
        return None  # reference parser owns the "expected two node ids" error
    first_token = np.concatenate(([0], np.cumsum(per_line)[:-1]))
    index_in_line = np.arange(starts.size, dtype=np.int64) - first_token[token_line]
    return values[index_in_line < 2].reshape(-1, 2)


def parse_edge_list(text: str) -> np.ndarray:
    """Parse SNAP edge-list text into a ``(k, 2)`` int64 array.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; each data line must hold at least two integer fields (extra
    fields, e.g. timestamps or weights, are ignored).

    Well-formed input (header comments, then digit/whitespace data
    lines) is parsed by a vectorised fast path; anything unusual —
    including every malformed input — re-parses through the reference
    line loop below, so error messages and acceptance are independent of
    which path ran.
    """
    fast = _parse_edge_list_fast(text)
    if fast is not None:
        return fast
    rows: List[Tuple[int, int]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        parts = stripped.split()
        if len(parts) < 2:
            raise GraphFormatError(f"line {lineno}: expected two node ids, got {stripped!r}")
        try:
            u, v = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise GraphFormatError(f"line {lineno}: non-integer node id in {stripped!r}") from exc
        if u < 0 or v < 0:
            raise GraphFormatError(f"line {lineno}: negative node id in {stripped!r}")
        rows.append((u, v))
    if not rows:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def read_edge_list(path: PathLike) -> np.ndarray:
    """Read a (possibly gzipped) SNAP edge-list file into an edge array."""
    with _open_text(path) as fh:
        return parse_edge_list(fh.read())


def write_edge_list(graph: Graph, path: PathLike, *, header: str = "") -> None:
    """Write the graph as a SNAP-style edge list (one undirected edge per line)."""
    path = Path(path)
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "wt", encoding="utf-8") as fh:
        fh.write(f"# Undirected graph: n={graph.num_nodes} m={graph.num_edges}\n")
        if header:
            for line in header.splitlines():
                fh.write(f"# {line}\n")
        for u, v in graph.iter_edges():
            fh.write(f"{u}\t{v}\n")


def load_graph(path: PathLike, *, num_nodes=None) -> Graph:
    """Read a graph file and return the undirected :class:`Graph`.

    ``.csr`` containers open as memory-mapped views
    (:func:`repro.graph.storage.open_csr` — constant memory regardless
    of graph size); everything else is read as a SNAP edge list and
    symmetrised (each arc becomes an undirected edge), matching the
    paper's preprocessing.
    """
    path = Path(path)
    if path.suffix == ".csr":
        from .storage import open_csr

        return open_csr(path)
    edges = read_edge_list(path)
    return to_undirected(edges, num_nodes=num_nodes)


#: Schema tag stored inside every ``.npz`` cache written by this build.
#: Files written by older builds carry no tag and still load; files with
#: an *unknown* tag fail loudly instead of being misinterpreted.
_NPZ_SCHEMA = "repro.graph.npz/v2"
#: CSR arrays are always serialised as little-endian int64; recorded
#: explicitly so a corrupted or foreign archive cannot masquerade as a
#: graph cache.
_NPZ_DTYPE = "<i8"


def save_npz(graph: Graph, path: PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` (fast cache format).

    The archive records a schema tag and the array dtype/endianness next
    to the arrays themselves, so :func:`load_npz` can validate a cache
    before trusting it.
    """
    np.savez_compressed(
        Path(path),
        indptr=np.ascontiguousarray(graph.indptr, dtype=_NPZ_DTYPE),
        indices=np.ascontiguousarray(graph.indices, dtype=_NPZ_DTYPE),
        schema=np.array(_NPZ_SCHEMA),
        dtype=np.array(_NPZ_DTYPE),
    )


def load_npz(path: PathLike) -> Graph:
    """Load a graph saved with :func:`save_npz` (validated on load).

    Every failure mode — truncated zip, non-npz bytes, missing arrays,
    foreign schema tag, wrong dtype, structurally invalid CSR — raises
    :class:`~repro.errors.GraphFormatError` rather than leaking raw
    numpy/zipfile exceptions.
    """
    path = Path(path)
    try:
        with np.load(path) as data:
            if "indptr" not in data or "indices" not in data:
                raise GraphFormatError(f"{path}: not a repro graph npz (missing arrays)")
            if "schema" in data:
                schema = str(data["schema"])
                if schema != _NPZ_SCHEMA:
                    raise GraphFormatError(
                        f"{path}: unknown graph npz schema {schema!r} "
                        f"(this build reads {_NPZ_SCHEMA!r})"
                    )
                stored_dtype = str(data["dtype"]) if "dtype" in data else "missing"
                if stored_dtype != _NPZ_DTYPE:
                    raise GraphFormatError(
                        f"{path}: graph npz declares dtype {stored_dtype!r}, "
                        f"expected {_NPZ_DTYPE!r}"
                    )
            indptr = np.asarray(data["indptr"])
            indices = np.asarray(data["indices"])
    except GraphFormatError:
        raise
    except Exception as exc:  # BadZipFile, truncated members, OSError, ...
        raise GraphFormatError(f"{path}: corrupt or unreadable graph npz ({exc})") from exc
    for name, arr in (("indptr", indptr), ("indices", indices)):
        if not np.issubdtype(arr.dtype, np.integer):
            raise GraphFormatError(
                f"{path}: graph npz array {name!r} must be integer, got {arr.dtype}"
            )
    return Graph(indptr, indices, validate=True)


def save_graph(graph: Graph, path: PathLike) -> None:
    """Save a graph, picking the format from the file extension.

    ``.npz`` → binary cache; ``.csr`` → the memory-mappable on-disk CSR
    container (:mod:`repro.graph.storage`); anything else → SNAP edge
    list (``.gz`` supported).
    """
    path = Path(path)
    if path.suffix == ".npz":
        save_npz(graph, path)
    elif path.suffix == ".csr":
        from .storage import save_csr

        save_csr(graph, path)
    else:
        write_edge_list(graph, path)
