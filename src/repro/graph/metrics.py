"""Structural graph metrics.

Degree statistics, clustering, assortativity, and cut quantities.  These
feed the dataset registry (Table 1 columns), the generator calibration
tests, and the community-structure analysis (conductance relates to the
spectral gap via :math:`\\Phi \\geq 1 - \\mu`, Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

import numpy as np

from .._util import as_rng
from .graph import Graph
from .traversal import bfs_distances

__all__ = [
    "DegreeStats",
    "GraphSummary",
    "summarize",
    "degree_stats",
    "degree_histogram",
    "average_degree",
    "density",
    "local_clustering",
    "average_clustering",
    "global_clustering",
    "degree_assortativity",
    "cut_size",
    "volume",
    "conductance_of_set",
    "approximate_diameter",
]


@dataclass(frozen=True)
class DegreeStats:
    """Summary statistics of the degree sequence."""

    minimum: int
    maximum: int
    mean: float
    median: float
    std: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
        }


def degree_stats(graph: Graph) -> DegreeStats:
    """Min/max/mean/median/std of the degree sequence."""
    deg = graph.degrees
    if deg.size == 0:
        return DegreeStats(0, 0, 0.0, 0.0, 0.0)
    return DegreeStats(
        minimum=int(deg.min()),
        maximum=int(deg.max()),
        mean=float(deg.mean()),
        median=float(np.median(deg)),
        std=float(deg.std()),
    )


def degree_histogram(graph: Graph) -> np.ndarray:
    """``hist[d]`` = number of nodes of degree ``d``."""
    deg = graph.degrees
    if deg.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(deg)


def average_degree(graph: Graph) -> float:
    """Mean degree ``2m / n`` (0 for the empty graph)."""
    if graph.num_nodes == 0:
        return 0.0
    return 2.0 * graph.num_edges / graph.num_nodes


def density(graph: Graph) -> float:
    """Edge density ``2m / (n(n-1))``."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return 2.0 * graph.num_edges / (n * (n - 1))


def local_clustering(graph: Graph) -> np.ndarray:
    """Local clustering coefficient of every node.

    ``c[v] = 2 * triangles(v) / (deg(v) * (deg(v) - 1))``; nodes of degree
    < 2 get coefficient 0.  Triangle counting intersects sorted neighbour
    lists, so the cost is O(sum_v deg(v)^2 log) in the worst case — fine at
    laptop scale.
    """
    n = graph.num_nodes
    coeff = np.zeros(n, dtype=np.float64)
    indptr, indices = graph.indptr, graph.indices
    for v in range(n):
        nbrs = indices[indptr[v]:indptr[v + 1]]
        d = nbrs.size
        if d < 2:
            continue
        links = 0
        nbr_set = nbrs  # sorted array; use searchsorted membership
        for u in nbrs:
            row = indices[indptr[u]:indptr[u + 1]]
            links += np.searchsorted(row, nbr_set, side="right").sum() - np.searchsorted(row, nbr_set, side="left").sum()
        coeff[v] = links / (d * (d - 1))
    return coeff


def average_clustering(graph: Graph) -> float:
    """Mean of the local clustering coefficients (Watts–Strogatz C)."""
    if graph.num_nodes == 0:
        return 0.0
    return float(local_clustering(graph).mean())


def global_clustering(graph: Graph) -> float:
    """Transitivity: 3 * triangles / open-and-closed wedges."""
    deg = graph.degrees.astype(np.float64)
    wedges = float((deg * (deg - 1) / 2).sum())
    if wedges == 0:
        return 0.0
    # Sum over nodes of closed-wedge counts = 2 * triangles * 3.
    closed = float((local_clustering(graph) * deg * (deg - 1) / 2).sum())
    return closed / wedges


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Returns NaN for graphs with no edges or constant degree.
    """
    edges = graph.edges()
    if edges.shape[0] == 0:
        return float("nan")
    deg = graph.degrees.astype(np.float64)
    x = np.concatenate([deg[edges[:, 0]], deg[edges[:, 1]]])
    y = np.concatenate([deg[edges[:, 1]], deg[edges[:, 0]]])
    sx = x.std()
    if sx == 0:
        return float("nan")
    return float(((x - x.mean()) * (y - y.mean())).mean() / (sx * y.std()))


def volume(graph: Graph, nodes: np.ndarray) -> int:
    """Sum of degrees over ``nodes`` (the set's volume)."""
    nodes = np.asarray(nodes, dtype=np.int64)
    return int(graph.degrees[nodes].sum())


def cut_size(graph: Graph, nodes: np.ndarray) -> int:
    """Number of edges with exactly one endpoint in ``nodes``."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[np.asarray(nodes, dtype=np.int64)] = True
    edges = graph.edges()
    if edges.size == 0:
        return 0
    return int((mask[edges[:, 0]] != mask[edges[:, 1]]).sum())


def conductance_of_set(graph: Graph, nodes: np.ndarray) -> float:
    """Conductance of the cut ``(S, V \\ S)``: cut(S) / min(vol(S), vol(V\\S)).

    Raises :class:`ValueError` when either side has zero volume.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    vol_s = volume(graph, nodes)
    vol_rest = 2 * graph.num_edges - vol_s
    denom = min(vol_s, vol_rest)
    if denom == 0:
        raise ValueError("conductance undefined: one side of the cut has zero volume")
    return cut_size(graph, nodes) / denom


def approximate_diameter(graph: Graph, *, trials: int = 8, seed=None) -> int:
    """Lower bound on the diameter by double-sweep BFS from random starts."""
    if graph.num_nodes == 0:
        return 0
    rng = as_rng(seed)
    best = 0
    for _ in range(max(1, trials)):
        start = int(rng.integers(graph.num_nodes))
        dist = bfs_distances(graph, start)
        reached = dist >= 0
        far = int(np.flatnonzero(dist == dist[reached].max())[0])
        dist2 = bfs_distances(graph, far)
        best = max(best, int(dist2[dist2 >= 0].max()))
    return best


@dataclass(frozen=True)
class GraphSummary:
    """One-stop structural summary of a graph (for reports and the CLI)."""

    num_nodes: int
    num_edges: int
    degree: DegreeStats
    density: float
    average_clustering: float
    assortativity: float
    approx_diameter: int

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"nodes:           {self.num_nodes:,}",
                f"edges:           {self.num_edges:,}",
                f"degree:          min {self.degree.minimum}, mean {self.degree.mean:.2f}, "
                f"median {self.degree.median:.0f}, max {self.degree.maximum}",
                f"density:         {self.density:.6f}",
                f"clustering:      {self.average_clustering:.4f}",
                f"assortativity:   {self.assortativity:.4f}",
                f"diameter (>=):   {self.approx_diameter}",
            ]
        )


def summarize(graph: Graph, *, seed=None) -> GraphSummary:
    """Compute the :class:`GraphSummary` of a graph.

    The diameter field is the double-sweep lower bound (exact diameters
    are O(nm)); clustering is exact.
    """
    return GraphSummary(
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        degree=degree_stats(graph),
        density=density(graph),
        average_clustering=average_clustering(graph),
        assortativity=degree_assortativity(graph),
        approx_diameter=approximate_diameter(graph, seed=seed) if graph.num_nodes else 0,
    )
