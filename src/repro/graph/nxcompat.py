"""Optional interoperability with ``networkx``.

networkx is *not* a runtime dependency of the core library — all
algorithms are implemented on the CSR :class:`~repro.graph.Graph` — but it
is ubiquitous in the measurement community, so converting both ways makes
the toolkit easy to adopt.  Import errors are raised lazily.
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["to_networkx", "from_networkx"]


def _require_networkx():
    try:
        import networkx as nx
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise ImportError(
            "networkx is required for repro.graph.nxcompat; install with "
            "`pip install networkx` or `pip install repro[dev]`"
        ) from exc
    return nx


def to_networkx(graph: Graph):
    """Convert a :class:`Graph` to an undirected ``networkx.Graph``.

    Isolated nodes are preserved.
    """
    nx = _require_networkx()
    out = nx.Graph()
    out.add_nodes_from(range(graph.num_nodes))
    out.add_edges_from(graph.iter_edges())
    return out


def from_networkx(nx_graph) -> Graph:
    """Convert any networkx graph to an undirected CSR :class:`Graph`.

    Node labels are compacted to ``0..n-1`` in sorted-by-insertion order;
    directed graphs are symmetrised; multi-edges and self loops are
    dropped.  The mapping is intentionally not returned — callers who need
    label round-trips should relabel to integers first with
    ``networkx.convert_node_labels_to_integers``.
    """
    _require_networkx()
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [(index[u], index[v]) for u, v in nx_graph.edges()]
    return Graph.from_edges(edges, num_nodes=len(nodes))
