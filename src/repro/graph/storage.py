"""Aligned on-disk CSR container with a memory-mapped ``Graph`` view.

The in-memory :class:`~repro.graph.graph.Graph` assumes its two CSR
arrays fit in RAM, which caps the reproduction at stand-in scale; the
paper's headline numbers come from multi-million-node graphs whose CSR
alone outgrows small machines.  This module stores the same arrays in a
flat binary container that :func:`numpy.memmap` can open lazily:

``bytes 0..7``
    Magic ``b"REPROCSR"``.
``bytes 8..15``
    ``uint32`` little-endian format version, then the byte length of the
    JSON header.
``bytes 16..``
    A JSON header (schema tag, node/arc counts, array dtype, per-array
    byte offsets, content fingerprint), then the raw little-endian
    ``int64`` ``indptr`` / ``degrees`` / ``indices`` arrays, each at a
    64-byte-aligned offset so mapped views are cache-line aligned.

Files are written atomically (unique temp file in the target directory,
fsync, ``os.replace``) like every other artifact the library persists,
so a crashed writer never leaves a truncated container behind.  The
header records the same content fingerprint
:func:`repro.service.keys.graph_fingerprint` would compute — byte for
byte — so a mapped graph joins the service cache and checkpoint keyed
world without ever loading its arrays.

:class:`MemmapGraph` is the read view: a :class:`Graph` subclass whose
CSR arrays are read-only memmaps, interchangeable with an in-memory
graph everywhere (``load_graph`` / ``save_graph``, dataset cache,
operators, spectral analysis).  :class:`CSRWriter` is the streaming
producer used by the ``huge`` dataset tier: it appends ``indices`` in
chunks so the full edge list never materialises in memory.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..errors import GraphFormatError
from ..obs import OBS
from .graph import Graph

__all__ = [
    "CSR_MAGIC",
    "CSR_SUFFIX",
    "CSRWriter",
    "MemmapGraph",
    "open_csr",
    "save_csr",
    "streaming_graph_fingerprint",
]

PathLike = Union[str, Path]

CSR_MAGIC = b"REPROCSR"
CSR_SUFFIX = ".csr"
_VERSION = 1
_SCHEMA = "repro.graph.csr/v1"
_ALIGN = 64
_DTYPE = "<i8"  # little-endian int64, the Graph CSR dtype
#: Bytes hashed per update in the streaming fingerprint pass — large
#: enough to amortise hashlib call overhead, small enough to stay cache
#: resident.
_HASH_CHUNK = 1 << 22


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _hash_array_streaming(h, size: int, reader) -> None:
    """Feed one int64 array into ``h`` exactly like ``_hash_part`` does.

    ``reader(lo, hi)`` must return the contiguous little-endian int64
    slice ``[lo, hi)``; the type/shape prefix matches
    :func:`repro.core.runtime._hash_part`'s ndarray encoding, so the
    digest equals hashing the materialised array in one call.
    """
    h.update(f"\x00nd:{_DTYPE}:{(size,)}:".encode())
    step = max(_HASH_CHUNK // 8, 1)
    for lo in range(0, size, step):
        hi = min(lo + step, size)
        h.update(np.ascontiguousarray(reader(lo, hi), dtype=np.int64).tobytes())
    if size == 0:
        h.update(b"")


def streaming_graph_fingerprint(indptr, indices) -> str:
    """``graph_fingerprint`` recomputed in bounded memory.

    Byte-for-byte the digest of
    ``sweep_fingerprint("service.graph", indptr, indices)`` — the key
    the service layer and dataset cache use — but fed in chunks, so a
    memory-mapped graph can be fingerprinted without materialising its
    ``indices`` array.  (A single pass over the file is unavoidable: the
    encoding prefixes each array with its shape, which for a streamed
    write is only known once the last chunk lands.)
    """
    h = hashlib.sha256()
    h.update(b"repro.runtime.sweep/v1")
    h.update(b"\x00st:" + b"service.graph")
    for arr in (indptr, indices):
        _hash_array_streaming(h, int(arr.shape[0]), lambda lo, hi, a=arr: a[lo:hi])
    return h.hexdigest()


def _header_blob(num_nodes: int, num_arcs: int, fingerprint: str) -> tuple:
    """The serialised JSON header and the array offsets it records.

    The fingerprint is always a 64-char sha256 hex string, so building
    the header with a placeholder and later substituting the real digest
    keeps the byte length — and therefore every recorded offset —
    unchanged.  That is what lets :class:`CSRWriter` write the header
    first and patch the digest in place after the streaming pass.
    """
    offsets = {}
    # Layout: indptr, degrees, then indices last so a streaming writer
    # can append arcs without knowing anything beyond indptr up front.
    cursor = None  # filled after we know the header length
    body = {
        "schema": _SCHEMA,
        "version": _VERSION,
        "dtype": _DTYPE,
        "num_nodes": int(num_nodes),
        "num_arcs": int(num_arcs),
        "fingerprint": fingerprint,
        "offsets": {"indptr": 0, "degrees": 0, "indices": 0},
    }
    # Two-pass: serialise once to learn the header size (offset digits
    # are padded to a fixed width so the length cannot drift), then fill
    # in the real offsets.
    probe = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    header_end = len(CSR_MAGIC) + 8 + len(probe) + 36  # slack for offset digits
    cursor = _align(header_end)
    offsets["indptr"] = cursor
    cursor = _align(cursor + (num_nodes + 1) * 8)
    offsets["degrees"] = cursor
    cursor = _align(cursor + num_nodes * 8)
    offsets["indices"] = cursor
    total = cursor + num_arcs * 8
    body["offsets"] = {k: int(v) for k, v in offsets.items()}
    blob = json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    if len(CSR_MAGIC) + 8 + len(blob) > offsets["indptr"]:
        raise AssertionError("CSR header overflowed its reserved slack")
    return blob, offsets, total


def _patch_fingerprint(blob: bytes, placeholder: str, fingerprint: str) -> bytes:
    patched = blob.replace(placeholder.encode(), fingerprint.encode(), 1)
    if len(patched) != len(blob):
        raise AssertionError("fingerprint substitution changed header length")
    return patched


class MemmapGraph(Graph):
    """A :class:`Graph` whose CSR arrays are read-only memory maps.

    Behaves exactly like an in-memory graph (same accessors, equality,
    operators, spectral analysis) but only pages in the parts of
    ``indptr`` / ``indices`` that are actually touched, so graphs larger
    than RAM stay usable.  The container's recorded content fingerprint
    is pre-seeded into the graph memo, so
    :func:`repro.service.keys.graph_fingerprint` never forces a full
    read either.
    """

    __slots__ = ("_path",)

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        degrees: np.ndarray,
        *,
        path: Optional[PathLike] = None,
        fingerprint: Optional[str] = None,
    ):
        # Deliberately bypasses Graph.__init__: it would copy the arrays
        # into RAM (ascontiguousarray), defeating the mapping.
        self._indptr = indptr
        self._indices = indices
        self._degrees = degrees
        self._memo = {}
        if fingerprint is not None:
            self._memo["graph_fingerprint"] = fingerprint
        self._path = os.fspath(path) if path is not None else None

    @property
    def is_memmap(self) -> bool:
        return True

    @property
    def path(self) -> Optional[str]:
        """The backing ``.csr`` container, if the graph came from one."""
        return self._path

    @property
    def nbytes(self) -> int:
        """Bytes of CSR payload behind the mapping."""
        return int(self._indptr.nbytes + self._indices.nbytes + self._degrees.nbytes)

    def materialize(self) -> Graph:
        """Copy the mapped arrays into an ordinary in-memory graph."""
        graph = Graph(
            np.array(self._indptr, dtype=np.int64),
            np.array(self._indices, dtype=np.int64),
            validate=False,
        )
        cached = self._memo.get("graph_fingerprint")
        if cached is not None:
            graph._memo["graph_fingerprint"] = cached
        return graph

    def __repr__(self) -> str:
        return f"MemmapGraph(n={self.num_nodes}, m={self.num_edges}, path={self._path!r})"


class CSRWriter:
    """Streaming producer for the on-disk container.

    The writer needs the final ``indptr`` up front (its last entry fixes
    every offset in the header) but accepts ``indices`` in arbitrary
    chunks, so a generator can emit a million-node graph while holding
    only O(n) row-pointer state plus one chunk in memory.  The file is
    assembled in a temp name and renamed into place on :meth:`close`;
    aborting (exception inside the ``with`` block, or :meth:`abort`)
    removes the temp file and leaves the target untouched.
    """

    def __init__(self, path: PathLike, indptr: np.ndarray):
        self._target = Path(path)
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphFormatError("indptr must be a 1-D array of length n + 1 >= 1")
        if indptr[0] != 0 or np.any(np.diff(indptr) < 0):
            raise GraphFormatError("indptr must be nondecreasing and start at 0")
        self._indptr = indptr
        self._num_nodes = indptr.size - 1
        self._num_arcs = int(indptr[-1])
        self._written = 0
        placeholder = "0" * 64
        blob, offsets, total = _header_blob(self._num_nodes, self._num_arcs, placeholder)
        self._blob = blob
        self._placeholder = placeholder
        self._offsets = offsets
        self._total = total
        fd, self._tmp_name = tempfile.mkstemp(
            prefix=self._target.name + ".", suffix=".tmp", dir=str(self._target.parent)
        )
        self._fh = os.fdopen(fd, "wb")
        try:
            self._fh.write(CSR_MAGIC)
            self._fh.write(struct.pack("<II", _VERSION, len(blob)))
            self._fh.write(blob)
            self._write_at(offsets["indptr"], indptr)
            self._write_at(offsets["degrees"], np.diff(indptr))
            self._fh.seek(offsets["indices"])
        except BaseException:
            self.abort()
            raise

    def _write_at(self, offset: int, arr: np.ndarray) -> None:
        self._fh.seek(offset)
        self._fh.write(np.ascontiguousarray(arr, dtype=np.int64).tobytes())

    def write(self, chunk: np.ndarray) -> None:
        """Append the next run of column indices (row-major CSR order)."""
        chunk = np.ascontiguousarray(chunk, dtype=np.int64)
        if self._written + chunk.size > self._num_arcs:
            raise GraphFormatError(
                f"CSR writer overflow: indptr promises {self._num_arcs} arcs, "
                f"got {self._written + chunk.size}"
            )
        self._fh.write(chunk.tobytes())
        self._written += int(chunk.size)

    def abort(self) -> None:
        """Discard the partially written temp file."""
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None
                try:
                    os.unlink(self._tmp_name)
                except OSError:
                    pass

    def close(self) -> str:
        """Finalise: fingerprint pass, header patch, fsync, atomic rename.

        Returns the container's content fingerprint.
        """
        if self._fh is None:
            raise GraphFormatError("CSR writer already closed")
        if self._written != self._num_arcs:
            self.abort()
            raise GraphFormatError(
                f"CSR writer closed early: indptr promises {self._num_arcs} arcs, "
                f"only {self._written} written"
            )
        try:
            # Seeking to the aligned indices offset does not by itself
            # grow the file — an edge-free graph (or one whose last
            # aligned gap was never written over) would come up short of
            # the header's promised extent.  ftruncate zero-fills.
            self._fh.truncate(self._offsets["indices"] + self._num_arcs * 8)
            self._fh.flush()
            # Second pass: stream the just-written indices back through
            # the hasher.  The shape prefix in the fingerprint encoding
            # makes a single-pass digest impossible for streamed writes.
            mapped = (
                np.memmap(
                    self._tmp_name,
                    mode="r",
                    dtype=np.int64,
                    shape=(self._num_arcs,),
                    offset=self._offsets["indices"],
                )
                if self._num_arcs
                else np.zeros(0, dtype=np.int64)
            )
            fingerprint = streaming_graph_fingerprint(self._indptr, mapped)
            del mapped
            self._fh.seek(len(CSR_MAGIC) + 8)
            self._fh.write(_patch_fingerprint(self._blob, self._placeholder, fingerprint))
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            os.replace(self._tmp_name, self._target)
        except BaseException:
            self.abort()
            raise
        if OBS.enabled:
            OBS.add("graph.storage.saves")
            OBS.add("graph.storage.bytes_written", int(self._total))
        return fingerprint

    def __enter__(self) -> "CSRWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        elif self._fh is not None:
            self.close()


def save_csr(graph: Graph, path: PathLike) -> str:
    """Write a graph to the on-disk container; returns its fingerprint."""
    writer = CSRWriter(path, graph.indptr)
    try:
        indices = graph.indices
        step = max(_HASH_CHUNK // 8, 1)
        for lo in range(0, indices.shape[0], step):
            writer.write(indices[lo:lo + step])
    except BaseException:
        writer.abort()
        raise
    return writer.close()


def _read_header(path: Path) -> dict:
    with open(path, "rb") as fh:
        magic = fh.read(len(CSR_MAGIC))
        if magic != CSR_MAGIC:
            raise GraphFormatError(f"{path}: not a repro CSR container (bad magic)")
        packed = fh.read(8)
        if len(packed) != 8:
            raise GraphFormatError(f"{path}: truncated CSR header")
        version, length = struct.unpack("<II", packed)
        if version != _VERSION:
            raise GraphFormatError(
                f"{path}: unsupported CSR container version {version} "
                f"(this build reads version {_VERSION})"
            )
        blob = fh.read(length)
        if len(blob) != length:
            raise GraphFormatError(f"{path}: truncated CSR header")
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphFormatError(f"{path}: corrupt CSR header ({exc})") from exc
    for key in ("schema", "dtype", "num_nodes", "num_arcs", "offsets", "fingerprint"):
        if key not in header:
            raise GraphFormatError(f"{path}: CSR header missing {key!r}")
    if header["schema"] != _SCHEMA:
        raise GraphFormatError(f"{path}: unknown CSR schema {header['schema']!r}")
    if header["dtype"] != _DTYPE:
        raise GraphFormatError(
            f"{path}: CSR arrays must be little-endian int64 ({_DTYPE}), "
            f"got {header['dtype']!r}"
        )
    return header


def open_csr(path: PathLike, *, verify: bool = False) -> MemmapGraph:
    """Open a container written by :func:`save_csr` / :class:`CSRWriter`.

    Returns a :class:`MemmapGraph` over read-only mappings.  Structural
    metadata (sizes, offsets, file length, indptr endpoints) is always
    checked; ``verify=True`` additionally re-streams the arrays through
    the content fingerprint and compares it to the recorded digest,
    catching bit-level corruption at the cost of one full read.
    Corruption of any kind raises
    :class:`~repro.errors.GraphFormatError`.
    """
    path = Path(path)
    header = _read_header(path)
    n = int(header["num_nodes"])
    num_arcs = int(header["num_arcs"])
    offsets = header["offsets"]
    if n < 0 or num_arcs < 0:
        raise GraphFormatError(f"{path}: negative sizes in CSR header")
    expected_end = int(offsets["indices"]) + num_arcs * 8
    actual = path.stat().st_size
    if actual < expected_end:
        raise GraphFormatError(
            f"{path}: truncated CSR container ({actual} bytes, need {expected_end})"
        )

    def _map(name: str, size: int) -> np.ndarray:
        if size == 0:
            return np.zeros(0, dtype=np.int64)
        arr = np.memmap(
            path, mode="r", dtype=np.dtype(_DTYPE), shape=(size,), offset=int(offsets[name])
        )
        return arr

    indptr = _map("indptr", n + 1)
    degrees = _map("degrees", n)
    indices = _map("indices", num_arcs)
    if int(indptr[0]) != 0 or int(indptr[-1]) != num_arcs:
        raise GraphFormatError(f"{path}: indptr endpoints disagree with header")
    fingerprint = str(header["fingerprint"])
    if verify:
        recomputed = streaming_graph_fingerprint(indptr, indices)
        if recomputed != fingerprint:
            raise GraphFormatError(
                f"{path}: CSR content fingerprint mismatch "
                f"(recorded {fingerprint[:12]}…, recomputed {recomputed[:12]}…)"
            )
    graph = MemmapGraph(
        indptr, indices, degrees, path=path, fingerprint=fingerprint
    )
    if OBS.enabled:
        OBS.add("graph.storage.opens")
        OBS.add("graph.storage.bytes_mapped", graph.nbytes)
    return graph
