"""Temporal graphs: edge deltas, journaling, and versioned CSR views.

The paper measures mixing on frozen snapshots, but social graphs churn.
This module adds the minimal temporal layer the rest of the pipeline can
build on:

``EdgeDelta``
    One timestamped batch of edge insertions/deletions, canonicalised
    the same way :func:`repro._util.unique_sorted_edges` canonicalises
    static edge lists (``u < v``, deduplicated, lexicographically
    sorted).  Deltas are invertible — :meth:`EdgeDelta.inverted` swaps
    the two sets — which is what makes :func:`undo_delta` exact.

``apply_delta`` / ``undo_delta``
    Pure functions from one CSR snapshot to the next.  They work in
    *edge-key space* (``key = u * n + v`` for ``u < v``): because keys
    order exactly like lexicographic ``(u, v)`` pairs, a sorted-set
    union/difference over keys followed by
    :meth:`Graph._from_canonical_edges` is **bit-for-bit identical** to
    rebuilding the graph from scratch with :meth:`Graph.from_edges`.
    That identity is the contract the incremental spectral layer
    (:mod:`repro.core.incremental`) and the service cache rely on, and
    it is pinned by tests.

``DeltaLog``
    An append-only journal of deltas with strictly increasing
    timestamps and a *chained head hash*: every append folds the delta's
    content into the previous head, so the head string uniquely
    identifies the entire mutation history.  Service fingerprints
    incorporate this head, which is how ``ResultCache`` entries
    invalidate on mutation.  Logs round-trip through JSON
    (``repro.graph.deltalog/v1``) for durability.

``TemporalGraph``
    A :class:`Graph` subclass that duck-types the static API the same
    way :class:`~repro.graph.storage.MemmapGraph` does — its CSR slots
    always alias the *head* snapshot, so every existing consumer
    (operators, spectral analysis, mixing measurement, the service
    registry) works unmodified on the latest state — while also
    exposing the time axis: ``at(t)``, ``window(t0, t1)``,
    ``append(delta)``, ``compact(t)``, and a ``version`` string.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import atomic_write_text, unique_sorted_edges
from ..errors import ConfigurationError, GraphFormatError
from .graph import Graph

__all__ = [
    "DELTALOG_SCHEMA",
    "EdgeDelta",
    "DeltaLog",
    "TemporalGraph",
    "apply_delta",
    "undo_delta",
]

#: On-disk journal schema identifier (bump on breaking layout changes).
DELTALOG_SCHEMA = "repro.graph.deltalog/v1"


def _canonical_pairs(edges) -> np.ndarray:
    """Coerce an edge collection to a canonical ``(k, 2)`` int64 array.

    Canonical means: ``u < v`` per row, no duplicates, rows sorted
    lexicographically — the same normal form ``Graph.from_edges`` uses,
    so delta algebra composes with static construction bit-for-bit.
    """
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphFormatError(f"edge batch must be (k, 2)-shaped, got {arr.shape}")
    if np.any(arr < 0):
        raise GraphFormatError("edge batch contains negative node ids")
    u, v = unique_sorted_edges(arr[:, 0], arr[:, 1])
    return np.column_stack([u, v])


class EdgeDelta:
    """One timestamped, canonical batch of edge insertions and deletions.

    Both batches are stored in the canonical static-edge normal form
    (``u < v``, deduplicated, lexicographically sorted); self-loops are
    dropped silently, mirroring :meth:`Graph.from_edges`.  An edge may
    not appear in both batches — that delta would be order-dependent.
    """

    __slots__ = ("_timestamp", "_insert", "_delete")

    def __init__(self, timestamp: int, insert=(), delete=()):
        self._timestamp = int(timestamp)
        ins = _canonical_pairs(insert)
        dele = _canonical_pairs(delete)
        if ins.size and dele.size:
            n_hint = int(max(ins.max(), dele.max())) + 1
            both = np.intersect1d(
                ins[:, 0] * n_hint + ins[:, 1], dele[:, 0] * n_hint + dele[:, 1]
            )
            if both.size:
                u, v = divmod(int(both[0]), n_hint)
                raise GraphFormatError(
                    f"edge ({u}, {v}) appears in both insert and delete batches"
                )
        ins.setflags(write=False)
        dele.setflags(write=False)
        self._insert = ins
        self._delete = dele

    @property
    def timestamp(self) -> int:
        return self._timestamp

    @property
    def insert(self) -> np.ndarray:
        """``(k, 2)`` canonical edges added at this timestamp (read-only)."""
        return self._insert

    @property
    def delete(self) -> np.ndarray:
        """``(k, 2)`` canonical edges removed at this timestamp (read-only)."""
        return self._delete

    @property
    def num_changes(self) -> int:
        """Total edges touched (inserted + deleted)."""
        return int(self._insert.shape[0] + self._delete.shape[0])

    def inverted(self) -> "EdgeDelta":
        """The delta that exactly undoes this one (batches swapped)."""
        return EdgeDelta(self._timestamp, insert=self._delete, delete=self._insert)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EdgeDelta):
            return NotImplemented
        return (
            self._timestamp == other._timestamp
            and np.array_equal(self._insert, other._insert)
            and np.array_equal(self._delete, other._delete)
        )

    def __hash__(self):
        return hash((self._timestamp, self._insert.tobytes(), self._delete.tobytes()))

    def __repr__(self) -> str:
        return (
            f"EdgeDelta(t={self._timestamp}, +{self._insert.shape[0]} edges, "
            f"-{self._delete.shape[0]} edges)"
        )


def _edge_keys(pairs: np.ndarray, n: int) -> np.ndarray:
    """Map canonical ``u < v`` rows to sorted scalar keys ``u * n + v``.

    For canonical (lexicographically sorted) input the key array is
    already sorted ascending, so set algebra below can use the fast
    ``assume_unique`` paths.
    """
    if pairs.size == 0:
        return np.empty(0, dtype=np.int64)
    return pairs[:, 0] * np.int64(n) + pairs[:, 1]


def apply_delta(graph: Graph, delta: EdgeDelta, *, strict: bool = True) -> Graph:
    """Apply one delta to a CSR snapshot, returning the next snapshot.

    The result is bit-for-bit identical to ``Graph.from_edges`` over the
    updated edge set (same ``indptr``/``indices`` bytes): edge keys
    ``u * n + v`` order exactly like lexicographic pairs, so sorted-set
    difference + union reproduces the canonical construction order.

    With ``strict=True`` (the default) every deleted edge must exist
    and no inserted edge may already exist; violations raise
    :class:`GraphFormatError` rather than silently desynchronising the
    journal from the snapshots it claims to describe.

    Node count grows automatically when an insertion references a node
    beyond the current range; deltas never shrink the node range.
    """
    old = graph.edges()
    n = max(graph.num_nodes, int(delta.insert.max()) + 1 if delta.insert.size else 0)
    old_keys = _edge_keys(old, n)
    del_keys = _edge_keys(delta.delete, n)
    ins_keys = _edge_keys(delta.insert, n)
    if strict:
        missing = np.setdiff1d(del_keys, old_keys, assume_unique=True)
        if missing.size:
            u, v = divmod(int(missing[0]), n)
            raise GraphFormatError(f"delete of non-existent edge ({u}, {v})")
        present = np.intersect1d(ins_keys, old_keys, assume_unique=True)
        if present.size:
            u, v = divmod(int(present[0]), n)
            raise GraphFormatError(f"insert of already-present edge ({u}, {v})")
    kept = old_keys[~np.isin(old_keys, del_keys, assume_unique=True)]
    keys = np.union1d(kept, ins_keys)
    return Graph._from_canonical_edges(keys // n, keys % n, n)


def undo_delta(graph: Graph, delta: EdgeDelta, *, strict: bool = True) -> Graph:
    """Exactly reverse :func:`apply_delta` (bit-for-bit, same contract)."""
    return apply_delta(graph, delta.inverted(), strict=strict)


class DeltaLog:
    """Append-only journal of :class:`EdgeDelta` batches.

    Timestamps must be strictly increasing, so a timestamp addresses at
    most one state and ``at(t)`` is well defined.  Each append extends a
    *chained head hash*: ``head_0`` hashes a genesis marker and each
    subsequent head folds in the previous head plus the delta's full
    content.  Two logs share a head string iff they contain the same
    delta sequence, which is why service fingerprints can use the head
    as a complete mutation-history key.
    """

    __slots__ = ("_deltas", "_heads")

    def __init__(self, deltas: Iterable[EdgeDelta] = ()):  # noqa: D107
        self._deltas: List[EdgeDelta] = []
        self._heads: List[str] = [self._genesis_head()]
        for delta in deltas:
            self.append(delta)

    @staticmethod
    def _genesis_head() -> str:
        from ..core.runtime import sweep_fingerprint

        return sweep_fingerprint("temporal.log", "genesis")

    def append(self, delta: EdgeDelta) -> str:
        """Append one delta and return the new head hash."""
        from ..core.runtime import sweep_fingerprint

        if not isinstance(delta, EdgeDelta):
            raise ConfigurationError(f"DeltaLog.append expects EdgeDelta, got {type(delta).__name__}")
        if self._deltas and delta.timestamp <= self._deltas[-1].timestamp:
            raise ConfigurationError(
                f"delta timestamps must be strictly increasing: "
                f"{delta.timestamp} after {self._deltas[-1].timestamp}"
            )
        head = sweep_fingerprint(
            "temporal.log",
            self._heads[-1],
            delta.timestamp,
            delta.insert,
            delta.delete,
        )
        self._deltas.append(delta)
        self._heads.append(head)
        return head

    @property
    def head(self) -> str:
        """Hash chaining the full delta history (genesis hash if empty)."""
        return self._heads[-1]

    def head_at(self, count: int) -> str:
        """The head after the first ``count`` deltas (``count=0`` → genesis)."""
        if not 0 <= count <= len(self._deltas):
            raise ConfigurationError(f"head_at({count}) out of range [0, {len(self._deltas)}]")
        return self._heads[count]

    @property
    def timestamps(self) -> Tuple[int, ...]:
        return tuple(d.timestamp for d in self._deltas)

    def __len__(self) -> int:
        return len(self._deltas)

    def __iter__(self):
        return iter(self._deltas)

    def __getitem__(self, index: int) -> EdgeDelta:
        return self._deltas[index]

    def replay(self, base: Graph, *, count: Optional[int] = None) -> Graph:
        """Fold the first ``count`` deltas (default: all) over ``base``."""
        upto = len(self._deltas) if count is None else count
        graph = base
        for delta in self._deltas[:upto]:
            graph = apply_delta(graph, delta)
        return graph

    def to_payload(self) -> Dict:
        """JSON-serialisable journal body (schema ``repro.graph.deltalog/v1``)."""
        return {
            "schema": DELTALOG_SCHEMA,
            "deltas": [
                {
                    "timestamp": d.timestamp,
                    "insert": d.insert.tolist(),
                    "delete": d.delete.tolist(),
                }
                for d in self._deltas
            ],
            "head": self.head,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "DeltaLog":
        """Rebuild a journal from :meth:`to_payload` output.

        The recorded head is recomputed from the delta contents and must
        match — a corrupted or hand-edited journal fails loudly here.
        """
        schema = payload.get("schema")
        if schema != DELTALOG_SCHEMA:
            raise ConfigurationError(
                f"unsupported delta-log schema {schema!r} (expected {DELTALOG_SCHEMA!r})"
            )
        log = cls(
            EdgeDelta(entry["timestamp"], insert=entry["insert"], delete=entry["delete"])
            for entry in payload["deltas"]
        )
        recorded = payload.get("head")
        if recorded is not None and recorded != log.head:
            raise ConfigurationError(
                f"delta-log head mismatch: journal records {recorded[:12]}…, "
                f"replay computes {log.head[:12]}… (corrupted journal?)"
            )
        return log

    def save(self, path) -> None:
        """Write the journal to ``path`` atomically as JSON."""
        atomic_write_text(path, json.dumps(self.to_payload(), sort_keys=True, indent=1))

    @classmethod
    def load(cls, path) -> "DeltaLog":
        """Read a journal written by :meth:`save`, verifying its head."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_payload(json.load(fh))

    def __repr__(self) -> str:
        return f"DeltaLog(deltas={len(self._deltas)}, head={self.head[:12]}…)"


class TemporalGraph(Graph):
    """A CSR graph with a time axis.

    The instance *is* a :class:`Graph` — its slots always alias the
    snapshot at the head of the delta log, so transition operators,
    spectral analysis and the mixing pipeline consume it unchanged
    (the same duck-typing contract :class:`MemmapGraph` satisfies).
    Snapshots at every delta boundary are memoised on first access, so
    repeated ``at(t)`` calls during a trend sweep pay the replay cost
    once per boundary.
    """

    __slots__ = ("_base", "_base_time", "_log", "_snapshots")

    def __init__(self, base: Graph, *, base_time: int = 0, log: Optional[DeltaLog] = None):
        # Deliberately bypasses Graph.__init__ (MemmapGraph precedent):
        # the CSR slots are rebound to memoised snapshots, never copied.
        if isinstance(base, TemporalGraph):
            base = base.snapshot()
        self._base = base
        self._base_time = int(base_time)
        self._log = log if log is not None else DeltaLog()
        if len(self._log) and self._log[0].timestamp <= self._base_time:
            raise ConfigurationError(
                f"first delta timestamp {self._log[0].timestamp} must exceed "
                f"base_time {self._base_time}"
            )
        self._snapshots: List[Graph] = [base]
        self._rebind()

    def _rebind(self) -> None:
        """Point the inherited CSR slots at the head snapshot.

        Sharing the snapshot's ``_memo`` (not copying it) means
        fingerprints and spectra memoised through either alias are
        visible through both.
        """
        head = self._snapshot_at_index(len(self._log))
        self._indptr = head._indptr
        self._indices = head._indices
        self._degrees = head._degrees
        self._memo = head._memo

    def _snapshot_at_index(self, count: int) -> Graph:
        """Snapshot after the first ``count`` deltas, memoised."""
        while len(self._snapshots) <= count:
            prev = self._snapshots[-1]
            self._snapshots.append(apply_delta(prev, self._log[len(self._snapshots) - 1]))
        return self._snapshots[count]

    # -- time axis -----------------------------------------------------

    @property
    def base_time(self) -> int:
        return self._base_time

    @property
    def log(self) -> DeltaLog:
        return self._log

    @property
    def version(self) -> str:
        """Content hash of (base snapshot, full delta history).

        Changes on every :meth:`append`; stable across processes.  The
        service layer keys its caches on this string.
        """
        from ..core.runtime import sweep_fingerprint
        from ..service.keys import graph_fingerprint

        return sweep_fingerprint("temporal.version", graph_fingerprint(self._base), self._log.head)

    def times(self) -> Tuple[int, ...]:
        """All state boundaries: base time plus every delta timestamp."""
        return (self._base_time,) + self._log.timestamps

    def _count_at(self, t: int) -> int:
        """How many deltas are in effect at time ``t``."""
        if t < self._base_time:
            raise ConfigurationError(
                f"time {t} precedes base_time {self._base_time}"
            )
        stamps = self._log.timestamps
        return int(np.searchsorted(np.asarray(stamps, dtype=np.int64), t, side="right"))

    def at(self, t: int) -> Graph:
        """The static snapshot in effect at time ``t``.

        Deltas with ``timestamp <= t`` are applied; earlier snapshots
        stay memoised so sweeps over many times replay each delta once.
        """
        return self._snapshot_at_index(self._count_at(t))

    def snapshot(self) -> Graph:
        """The head snapshot (the state this instance aliases)."""
        return self._snapshot_at_index(len(self._log))

    def window(self, t0: int, t1: int) -> Graph:
        """Edges *active* at ``t1`` whose latest arrival lies in ``[t0, t1]``.

        An edge's arrival time is the timestamp of its most recent
        insertion (base edges arrive at ``base_time``); deleting and
        re-inserting an edge refreshes its arrival.  The result keeps the
        full node range of ``at(t1)`` so window graphs of one temporal
        graph stay dimension-compatible.
        """
        if t1 < t0:
            raise ConfigurationError(f"window requires t0 <= t1, got [{t0}, {t1}]")
        end = self.at(t1)
        n = end.num_nodes
        arrivals: Dict[int, int] = {
            int(k): self._base_time for k in _edge_keys(self._base.edges(), n)
        }
        for i in range(self._count_at(t1)):
            delta = self._log[i]
            for k in _edge_keys(delta.delete, n):
                arrivals.pop(int(k), None)
            for k in _edge_keys(delta.insert, n):
                arrivals[int(k)] = delta.timestamp
        keys = np.array(
            sorted(k for k, arrived in arrivals.items() if arrived >= t0), dtype=np.int64
        )
        if keys.size == 0:
            return Graph.empty(n)
        return Graph._from_canonical_edges(keys // n, keys % n, n)

    def changes_between(self, t0: int, t1: int) -> int:
        """Total edges touched by deltas in effect after ``t0`` up to ``t1``.

        The incremental spectral layer uses this to decide whether a
        warm start is still trustworthy between two window boundaries.
        """
        if t1 < t0:
            raise ConfigurationError(f"changes_between requires t0 <= t1, got [{t0}, {t1}]")
        c0, c1 = self._count_at(t0), self._count_at(t1)
        return sum(self._log[i].num_changes for i in range(c0, c1))

    # -- mutation ------------------------------------------------------

    def append(self, delta: EdgeDelta) -> str:
        """Append a delta, advance the head state, return the new version."""
        if delta.timestamp <= self.times()[-1]:
            raise ConfigurationError(
                f"delta timestamp {delta.timestamp} must exceed current head "
                f"time {self.times()[-1]}"
            )
        # Validate against the head snapshot *before* the log admits the
        # delta, so a bad batch leaves the log untouched.
        new_head = apply_delta(self.snapshot(), delta)
        self._log.append(delta)
        self._snapshots.append(new_head)
        self._rebind()
        return self.version

    def compact(self, t: int) -> "TemporalGraph":
        """Fold history up to ``t`` into a new base snapshot.

        Returns a new :class:`TemporalGraph` whose base is ``at(t)`` and
        whose log holds only the deltas after ``t``.  Every retained
        state is identical (``at(s)`` agrees for all ``s >= t``), but the
        version string changes — compaction rewrites history, so cached
        results keyed on the old version are correctly invalidated.
        """
        count = self._count_at(t)
        base = self._snapshot_at_index(count)
        remaining = DeltaLog(self._log[i] for i in range(count, len(self._log)))
        return TemporalGraph(base, base_time=t, log=remaining)

    @property
    def num_deltas(self) -> int:
        return len(self._log)

    def __repr__(self) -> str:
        return (
            f"TemporalGraph(n={self.num_nodes}, m={self.num_edges}, "
            f"deltas={len(self._log)}, base_time={self._base_time})"
        )
