"""Structure-preserving and structure-editing graph transforms.

Includes the *trimming* operation from the paper's Figure 6 experiment:
SybilGuard/SybilLimit improved their graphs' mixing by iteratively
removing low-degree nodes; ``trim_min_degree(graph, k)`` reproduces that
(the result is the classical k-core).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from ..errors import GraphFormatError
from .components import induced_subgraph, largest_connected_component
from .graph import Graph

__all__ = [
    "to_undirected",
    "remove_nodes",
    "remove_edges",
    "add_edges",
    "trim_min_degree",
    "k_core",
    "core_numbers",
    "relabel_random",
    "disjoint_union",
]


def to_undirected(edges: np.ndarray, *, num_nodes=None) -> Graph:
    """Build an undirected :class:`Graph` from a (possibly directed) edge list.

    Directed datasets (wiki-vote, Slashdot, Epinions, LiveJournal) are
    converted to undirected graphs before measurement, "similar to what is
    performed in other work" (Section 4): each arc becomes an undirected
    edge, duplicates and self-loops are dropped.
    """
    return Graph.from_edges(np.asarray(edges, dtype=np.int64), num_nodes=num_nodes)


def remove_nodes(graph: Graph, nodes: Iterable[int]) -> Tuple[Graph, np.ndarray]:
    """Delete ``nodes``; returns ``(new_graph, node_map)``.

    ``node_map[i]`` is the original id of new node ``i`` (ids are
    compacted).
    """
    drop = np.unique(np.asarray(list(nodes), dtype=np.int64))
    keep = np.setdiff1d(np.arange(graph.num_nodes, dtype=np.int64), drop, assume_unique=False)
    return induced_subgraph(graph, keep)


def remove_edges(graph: Graph, edges: Iterable[Tuple[int, int]]) -> Graph:
    """Delete the given undirected edges (missing edges are ignored)."""
    n = graph.num_nodes
    drop = set()
    for u, v in edges:
        a, b = (int(u), int(v)) if u < v else (int(v), int(u))
        drop.add((a, b))
    kept = [(u, v) for u, v in graph.iter_edges() if (u, v) not in drop]
    return Graph.from_edges(kept, num_nodes=n)


def add_edges(graph: Graph, edges: Iterable[Tuple[int, int]], *, num_nodes=None) -> Graph:
    """Add undirected edges (and optionally grow the node set)."""
    old = graph.edges()
    new = np.asarray(list(edges), dtype=np.int64).reshape(-1, 2)
    combined = np.concatenate([old, new], axis=0) if old.size else new
    n = max(graph.num_nodes, int(num_nodes or 0))
    if new.size:
        n = max(n, int(new.max()) + 1)
    return Graph.from_edges(combined, num_nodes=n)


def core_numbers(graph: Graph) -> np.ndarray:
    """The core number of every node (Batagelj–Zaveršnik peeling, O(m)).

    ``core[v]`` is the largest k such that v belongs to the k-core.
    """
    n = graph.num_nodes
    deg = graph.degrees.copy()
    if n == 0:
        return deg
    max_deg = int(deg.max()) if n else 0
    # Bucket sort nodes by degree.
    bin_start = np.zeros(max_deg + 2, dtype=np.int64)
    np.add.at(bin_start, deg + 1, 1)
    np.cumsum(bin_start, out=bin_start)
    pos = np.empty(n, dtype=np.int64)
    vert = np.empty(n, dtype=np.int64)
    fill = bin_start[:-1].copy()
    for v in range(n):
        pos[v] = fill[deg[v]]
        vert[pos[v]] = v
        fill[deg[v]] += 1
    bin_ptr = bin_start[:-1].copy()
    core = deg.copy()
    indptr, indices = graph.indptr, graph.indices
    for i in range(n):
        v = vert[i]
        for u in indices[indptr[v]:indptr[v + 1]]:
            if core[u] > core[v]:
                du = core[u]
                pu = pos[u]
                pw = bin_ptr[du]
                w = vert[pw]
                if u != w:
                    vert[pu], vert[pw] = w, u
                    pos[u], pos[w] = pw, pu
                bin_ptr[du] += 1
                core[u] -= 1
    return core


def k_core(graph: Graph, k: int) -> Tuple[Graph, np.ndarray]:
    """The maximal subgraph where every node has degree >= ``k``.

    Returns ``(subgraph, node_map)``.  ``k <= 1`` just drops isolated
    nodes (every node in an edge has degree >= 1).
    """
    if k < 0:
        raise ValueError("k must be nonnegative")
    core = core_numbers(graph)
    keep = np.flatnonzero(core >= k)
    return induced_subgraph(graph, keep)


def trim_min_degree(graph: Graph, min_degree: int, *, keep_largest_component: bool = True) -> Tuple[Graph, np.ndarray]:
    """Iteratively remove nodes of degree < ``min_degree`` until none remain.

    This is exactly the trimming performed for Figure 6 ("DBLP x means the
    minimum degree in that data set is x"), and equals the
    ``min_degree``-core.  When ``keep_largest_component`` is true the
    result is further restricted to its largest connected component so the
    mixing time stays well-defined.

    Returns ``(trimmed_graph, node_map)`` where ``node_map`` gives original
    ids of surviving nodes.
    """
    sub, node_map = k_core(graph, min_degree)
    if keep_largest_component and sub.num_nodes:
        sub2, inner_map = largest_connected_component(sub)
        return sub2, node_map[inner_map]
    return sub, node_map


def relabel_random(graph: Graph, rng) -> Tuple[Graph, np.ndarray]:
    """Apply a uniformly random node relabelling.

    Returns ``(relabelled, perm)`` where new id ``perm[v]`` corresponds to
    old id ``v``.  Used in tests to assert label-invariance of measurements.
    """
    n = graph.num_nodes
    perm = rng.permutation(n).astype(np.int64)
    edges = graph.edges()
    if edges.size:
        edges = np.stack([perm[edges[:, 0]], perm[edges[:, 1]]], axis=1)
    return Graph.from_edges(edges, num_nodes=n), perm


def disjoint_union(a: Graph, b: Graph) -> Graph:
    """The disjoint union of two graphs (b's ids shifted by ``a.num_nodes``)."""
    offset = a.num_nodes
    edges_a = a.edges()
    edges_b = b.edges() + offset
    if edges_a.size and edges_b.size:
        edges = np.concatenate([edges_a, edges_b], axis=0)
    elif edges_a.size:
        edges = edges_a
    else:
        edges = edges_b
    return Graph.from_edges(edges, num_nodes=offset + b.num_nodes)
