"""Graph traversal primitives: breadth-first and depth-first search.

BFS is a first-class citizen here because the paper uses BFS (snowball)
sampling to extract 10K/100K/1000K-node subgraphs from the large datasets
(Section 4), and connected-component extraction reduces to repeated BFS.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional, Tuple

import numpy as np

from .._util import check_node_index
from .graph import Graph

__all__ = [
    "bfs_order",
    "bfs_tree",
    "bfs_layers",
    "bfs_distances",
    "dfs_order",
    "eccentricity",
]

_UNREACHED = np.int64(-1)


def bfs_order(graph: Graph, source: int, *, limit: Optional[int] = None) -> np.ndarray:
    """Nodes in BFS discovery order starting from ``source``.

    ``limit`` stops the traversal after that many nodes have been
    discovered (used by BFS sampling to collect a fixed-size subgraph).
    """
    order, _parents = bfs_tree(graph, source, limit=limit)
    return order


def bfs_tree(graph: Graph, source: int, *, limit: Optional[int] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Breadth-first search returning ``(order, parents)``.

    ``order`` lists discovered nodes in the order they were dequeued;
    ``parents[v]`` is the BFS-tree parent of ``v`` (``-1`` for the source
    and for unreached nodes).
    """
    n = graph.num_nodes
    source = check_node_index(source, n, name="source")
    cap = n if limit is None else min(int(limit), n)
    if cap <= 0:
        return np.zeros(0, dtype=np.int64), np.full(n, _UNREACHED)

    parents = np.full(n, _UNREACHED)
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    order = np.empty(cap, dtype=np.int64)
    order[0] = source
    head, tail = 0, 1
    indptr, indices = graph.indptr, graph.indices
    while head < tail and tail < cap:
        u = order[head]
        head += 1
        for v in indices[indptr[u]:indptr[u + 1]]:
            if not seen[v]:
                seen[v] = True
                parents[v] = u
                order[tail] = v
                tail += 1
                if tail >= cap:
                    break
    return order[:tail], parents


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distance from ``source`` to every node (``-1`` if unreachable).

    Implemented as a vectorised frontier expansion: each round advances the
    whole frontier at once with numpy indexing, which is far faster than a
    python-level queue on large sparse graphs.
    """
    n = graph.num_nodes
    source = check_node_index(source, n, name="source")
    dist = np.full(n, _UNREACHED)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbours of the frontier in one shot.
        counts = indptr[frontier + 1] - indptr[frontier]
        total = int(counts.sum())
        if total == 0:
            break
        out = np.empty(total, dtype=np.int64)
        pos = 0
        for u, c in zip(frontier, counts):
            out[pos:pos + c] = indices[indptr[u]:indptr[u] + c]
            pos += c
        out = np.unique(out)
        fresh = out[dist[out] == _UNREACHED]
        dist[fresh] = level
        frontier = fresh
    return dist


def bfs_layers(graph: Graph, source: int) -> Iterator[np.ndarray]:
    """Yield BFS layers (arrays of node ids) outward from ``source``."""
    dist = bfs_distances(graph, source)
    reached = dist >= 0
    if not reached.any():
        return
    max_d = int(dist[reached].max())
    for d in range(max_d + 1):
        yield np.flatnonzero(dist == d)


def dfs_order(graph: Graph, source: int) -> np.ndarray:
    """Nodes in iterative depth-first discovery order from ``source``."""
    n = graph.num_nodes
    source = check_node_index(source, n, name="source")
    seen = np.zeros(n, dtype=bool)
    order = []
    stack = [source]
    indptr, indices = graph.indptr, graph.indices
    while stack:
        u = stack.pop()
        if seen[u]:
            continue
        seen[u] = True
        order.append(u)
        # Push neighbours in reverse so the smallest id is visited first,
        # matching the recursive definition on sorted adjacency lists.
        nbrs = indices[indptr[u]:indptr[u + 1]]
        stack.extend(int(v) for v in nbrs[::-1] if not seen[v])
    return np.asarray(order, dtype=np.int64)


def eccentricity(graph: Graph, source: int) -> int:
    """Largest finite hop distance from ``source`` (its eccentricity
    within its connected component)."""
    dist = bfs_distances(graph, source)
    reached = dist[dist >= 0]
    return int(reached.max())
