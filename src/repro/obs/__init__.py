"""repro.obs — dependency-free observability for the measurement stack.

Three pieces, one process-wide registry:

* **Metrics** (:mod:`repro.obs.metrics`) — named counters, gauges and
  histogram summaries plus monotonic timers, recorded by the hot paths
  (operator block evolution, the shared-memory parallel runtime, the
  spectral back-ends) through near-zero-cost guards.
* **Spans** (:mod:`repro.obs.spans`) — nested trace regions with
  structured attributes and timestamped events (per-step TVD convergence
  traces, per-shard pool timings), exported as a JSON call tree.
* **Run-manifests** (:mod:`repro.obs.manifest`) — the provenance record
  (seed, config, datasets, environment, metric snapshot) every
  experiment run writes next to its results.

The contract that makes this safe to leave wired into the hot paths:
**telemetry is provably inert** — enabling or disabling it changes no
numeric output anywhere (pinned by ``tests/obs/test_inertness.py`` and
the golden-value suite run with ``REPRO_TELEMETRY=1`` in CI), and the
disabled path costs one attribute check per chunk-sized unit of work.

Usage::

    from repro.obs import OBS

    OBS.enable()
    with OBS.span("my.sweep", sources=1000):
        ...                      # instrumented code records as it runs
    OBS.write_metrics("metrics.json")
    OBS.write_trace("trace.json")

or, from the CLI: ``repro-mixing fig3 --metrics-out metrics.json``.
"""

from .metrics import (
    OBS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    telemetry_enabled_from_env,
)
from .manifest import (
    MANIFEST_SCHEMA,
    build_run_manifest,
    environment_fingerprint,
    validate_run_manifest,
    write_run_manifest,
)
from .spans import Span

__all__ = [
    "OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "MANIFEST_SCHEMA",
    "build_run_manifest",
    "environment_fingerprint",
    "telemetry_enabled_from_env",
    "validate_run_manifest",
    "write_run_manifest",
]
