"""Run-manifests: the provenance record every experiment run emits.

A result file without its provenance is not a result.  The manifest is a
single JSON document written next to an experiment's outputs that pins
*everything needed to reproduce or audit the run*:

* the experiment name and when it ran,
* the full :class:`~repro.experiments.config.ExperimentConfig` (seed,
  mode, workers, block size, telemetry flag),
* the datasets touched (when the runner reports them),
* an environment fingerprint (python / numpy / scipy versions, platform,
  CPU count, every ``REPRO_*`` env var),
* a metric snapshot from the process-wide registry (empty when telemetry
  was off — the manifest is still written, the run still auditable).

Schema stability: ``schema`` carries a version string; consumers should
reject unknown majors.  :func:`validate_run_manifest` is the in-repo
well-formedness check the test suite (and CI) run against every emitted
manifest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Mapping, Optional, Sequence

from .._util import atomic_write_text
from .metrics import OBS, MetricsRegistry

__all__ = [
    "MANIFEST_SCHEMA",
    "build_run_manifest",
    "environment_fingerprint",
    "validate_run_manifest",
    "write_run_manifest",
]

MANIFEST_SCHEMA = "repro.obs.run-manifest/v1"

#: Keys every well-formed manifest must carry (see validate_run_manifest).
_REQUIRED_KEYS = (
    "schema",
    "experiment",
    "created_unix",
    "created_iso",
    "seed",
    "config",
    "datasets",
    "environment",
    "metrics",
)

_REQUIRED_ENVIRONMENT_KEYS = ("python", "platform", "cpu_count", "packages")


def environment_fingerprint() -> dict:
    """Where (and with what) this process is running.

    Versions are read lazily so importing :mod:`repro.obs` never drags in
    scipy; missing packages are reported as ``None`` rather than raising
    (the manifest must be writable from any partial environment).
    """
    packages = {}
    for name in ("numpy", "scipy"):
        try:
            module = __import__(name)
            packages[name] = getattr(module, "__version__", None)
        except ImportError:  # pragma: no cover - both ship with the package
            packages[name] = None
    try:
        from .. import __version__ as repro_version
    except ImportError:  # pragma: no cover - broken partial install
        repro_version = None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "pid": os.getpid(),
        "repro_version": repro_version,
        "packages": packages,
        "env": {
            key: os.environ[key]
            for key in sorted(os.environ)
            if key.startswith("REPRO_")
        },
    }


def _config_payload(config) -> Optional[dict]:
    """Render a config (dataclass or mapping) into plain JSON types."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        raw = dataclasses.asdict(config)
    elif isinstance(config, Mapping):
        raw = dict(config)
    else:
        raise TypeError(
            f"config must be a dataclass instance or mapping, got {type(config).__name__}"
        )
    return {key: _jsonable(value) for key, value in raw.items()}


def _jsonable(value):
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item) and not isinstance(value, (str, bytes)):
        try:
            return item()
        except Exception:  # pragma: no cover - exotic .item()
            pass
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def build_run_manifest(
    experiment: str,
    *,
    config=None,
    seed: Optional[int] = None,
    datasets: Sequence[str] = (),
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Mapping] = None,
) -> dict:
    """Assemble the manifest dict (no I/O).

    ``seed`` defaults to ``config.seed`` when the config carries one;
    ``registry`` defaults to the process-wide :data:`~repro.obs.OBS`
    (its snapshot is embedded even when telemetry is off, so consumers
    can distinguish "off" from "no metrics happened").
    """
    registry = OBS if registry is None else registry
    config_payload = _config_payload(config)
    if seed is None and config_payload is not None:
        seed = config_payload.get("seed")
    now = time.time()
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "experiment": str(experiment),
        "created_unix": now,
        "created_iso": time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime(now)),
        "seed": seed,
        "config": config_payload,
        "datasets": sorted(str(d) for d in datasets),
        "environment": environment_fingerprint(),
        "metrics": registry.snapshot(),
    }
    if extra:
        manifest["extra"] = {str(k): _jsonable(v) for k, v in dict(extra).items()}
    return manifest


def validate_run_manifest(manifest: Mapping) -> dict:
    """Well-formedness gate: raise ``ValueError`` naming what is wrong.

    Returns the manifest (as a plain dict) on success so callers can
    chain ``validate_run_manifest(json.load(fh))``.
    """
    if not isinstance(manifest, Mapping):
        raise ValueError(f"manifest must be a mapping, got {type(manifest).__name__}")
    missing = [key for key in _REQUIRED_KEYS if key not in manifest]
    if missing:
        raise ValueError(f"manifest missing required keys: {', '.join(missing)}")
    if manifest["schema"] != MANIFEST_SCHEMA:
        raise ValueError(
            f"unknown manifest schema {manifest['schema']!r} (expected {MANIFEST_SCHEMA!r})"
        )
    environment = manifest["environment"]
    if not isinstance(environment, Mapping):
        raise ValueError("manifest environment must be a mapping")
    env_missing = [key for key in _REQUIRED_ENVIRONMENT_KEYS if key not in environment]
    if env_missing:
        raise ValueError(
            f"manifest environment missing keys: {', '.join(env_missing)}"
        )
    metrics = manifest["metrics"]
    if not isinstance(metrics, Mapping) or "counters" not in metrics:
        raise ValueError("manifest metrics must be a registry snapshot")
    return dict(manifest)


def write_run_manifest(
    path,
    experiment: str,
    *,
    config=None,
    seed: Optional[int] = None,
    datasets: Sequence[str] = (),
    registry: Optional[MetricsRegistry] = None,
    extra: Optional[Mapping] = None,
) -> dict:
    """Build, validate and write a manifest; returns the dict written."""
    manifest = validate_run_manifest(
        build_run_manifest(
            experiment,
            config=config,
            seed=seed,
            datasets=datasets,
            registry=registry,
            extra=extra,
        )
    )
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    # Atomic write: a runner crashing mid-dump must never leave a
    # truncated manifest behind (pinned by the harness fault-injection
    # tests) — readers see the whole file or no file.
    atomic_write_text(target, json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    return manifest
