"""Process-wide metrics: counters, gauges, histograms, monotonic timers.

The registry is the accounting half of :mod:`repro.obs`.  Hot paths
(:mod:`repro.core.operators`, :mod:`repro.core.parallel`,
:mod:`repro.core.spectral`) record *into* it; experiment runs snapshot
*out of* it into run-manifests and ``--metrics-out`` files.

Design constraints, in order:

1. **Inert.**  Recording a metric may never change a numeric result.
   Every instrument only reads values the computation already produced
   (row counts, wall-clock durations, residuals) — nothing feeds back.
   ``tests/obs/test_inertness.py`` and the golden-value suite pin this.
2. **Near-zero cost when disabled.**  The disabled fast path is a single
   attribute read (``if OBS.enabled:``) per *chunk or call*, never per
   element; disabled context managers are a shared no-op singleton.
   ``benchmarks/bench_telemetry_overhead.py`` measures the residual.
3. **Dependency-free.**  Pure stdlib + the numbers handed to it; no
   prometheus client, no opentelemetry.

Thread-safety: instrument creation is locked, and since the service
layer (:mod:`repro.service`) records from many request threads at once,
updates are too — each instrument carries its own lock, so ``add`` /
``observe`` / ``set`` are atomic read-modify-writes (a GIL release
between the read and the write can no longer drop an update).  The
per-instrument lock keeps contention off the registry-wide lock and the
disabled path untouched (still a single attribute read, no lock).
``tests/service/test_concurrency.py`` hammers this from parallel
clients.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "OBS",
    "telemetry_enabled_from_env",
]

#: Environment switch: ``REPRO_TELEMETRY=1`` turns the process-wide
#: registry on at import time (CLI flags and ``ExperimentConfig.telemetry``
#: flip it per run).
_ENV_SWITCH = "REPRO_TELEMETRY"

_TRUTHY = frozenset({"1", "true", "yes", "on"})


def telemetry_enabled_from_env(environ=None) -> bool:
    """Whether ``REPRO_TELEMETRY`` asks for telemetry at import time."""
    env = os.environ if environ is None else environ
    return str(env.get(_ENV_SWITCH, "")).strip().lower() in _TRUTHY


class Counter:
    """A monotonically increasing count (events, rows, bytes)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def add(self, delta: float = 1.0) -> None:
        if delta < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (delta={delta})")
        with self._lock:
            self.value += delta

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """A last-write-wins scalar (current backend, last residual)."""

    __slots__ = ("name", "value", "updates", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[float] = None
        self.updates = 0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.value = value
            self.updates += 1

    def to_dict(self) -> dict:
        return {"value": self.value, "updates": self.updates}


class Histogram:
    """Streaming summary of observations (count/total/min/max/last).

    Deliberately a summary, not a bucketed histogram: the consumers here
    (run-manifests, bench sidecars) want "how many, how much, how
    skewed" — full distributions belong in the trace spans, which record
    each shard/chunk individually.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.last = value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }


class _NullContext:
    """Shared no-op stand-in for timers and spans when telemetry is off.

    Implements the full span surface (``set``/``event``) so call sites
    never need an enabled-check around attribute updates on the object a
    ``with OBS.span(...)`` handed them.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attributes) -> "_NullContext":
        return self

    def event(self, name: str, **attributes) -> "_NullContext":
        return self


NULL_CONTEXT = _NullContext()


class _Timer:
    """Context manager recording elapsed seconds into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """Process-wide named metrics plus the trace-span sink.

    ``enabled`` is a plain attribute so the hot-path guard is one
    attribute read.  All get-or-create accessors are cheap and
    idempotent; :meth:`snapshot` renders everything JSON-ready.
    """

    #: Completed spans kept per registry; beyond this the oldest are kept
    #: and new ones counted as dropped (a sweep can emit one span per
    #: chunk — unbounded growth would turn telemetry into a leak).
    MAX_SPANS = 20_000

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._spans: list = []
        self._spans_dropped = 0
        self._span_seq = 0
        self._local = threading.local()

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every metric and span (the enabled flag is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans = []
            self._spans_dropped = 0
            self._span_seq = 0

    # -- get-or-create accessors ---------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.setdefault(name, Counter(name))
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.setdefault(name, Gauge(name))
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.setdefault(name, Histogram(name))
        return instrument

    # -- one-shot conveniences (no-ops when disabled) ------------------
    def add(self, name: str, delta: float = 1.0) -> None:
        if self.enabled:
            self.counter(name).add(delta)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    def timer(self, name: str):
        """``with OBS.timer("x"): ...`` — seconds into histogram ``x``."""
        if not self.enabled:
            return NULL_CONTEXT
        return _Timer(self.histogram(name))

    # -- span plumbing (implementation lives in obs.spans) -------------
    def span(self, name: str, **attributes):
        """Open a nested trace span; see :mod:`repro.obs.spans`."""
        if not self.enabled:
            return NULL_CONTEXT
        from .spans import Span

        return Span(self, name, attributes)

    def event(self, name: str, **attributes) -> None:
        """Attach a timestamped event to the innermost open span.

        Silently dropped when telemetry is off or no span is open — hot
        loops must not need to know whether anyone wrapped them.
        """
        if not self.enabled:
            return
        stack = getattr(self._local, "stack", None)
        if stack:
            stack[-1].event(name, **attributes)

    def current_span(self):
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _next_span_id(self) -> int:
        with self._lock:
            self._span_seq += 1
            return self._span_seq

    def _record_span(self, record: dict) -> None:
        with self._lock:
            if len(self._spans) >= self.MAX_SPANS:
                self._spans_dropped += 1
            else:
                self._spans.append(record)

    # -- export --------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every metric (spans excluded; see trace)."""
        with self._lock:
            return {
                "enabled": self.enabled,
                "captured_unix": time.time(),
                "counters": {k: v.to_dict() for k, v in sorted(self._counters.items())},
                "gauges": {k: v.to_dict() for k, v in sorted(self._gauges.items())},
                "histograms": {k: v.to_dict() for k, v in sorted(self._histograms.items())},
                "spans": {"recorded": len(self._spans), "dropped": self._spans_dropped},
            }

    def trace(self) -> list:
        """Completed spans, oldest first (each a JSON-ready dict)."""
        with self._lock:
            return list(self._spans)

    def write_metrics(self, path) -> None:
        """Write :meth:`snapshot` as pretty JSON to ``path``."""
        payload = {"schema": "repro.obs.metrics/v1", **self.snapshot()}
        _write_json(path, payload)

    def write_trace(self, path) -> None:
        """Write :meth:`trace` as pretty JSON to ``path``."""
        payload = {"schema": "repro.obs.trace/v1", "spans": self.trace()}
        _write_json(path, payload)


def _write_json(path, payload: dict) -> None:
    from pathlib import Path

    from .._util import atomic_write_text

    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    # Write-to-temp + atomic rename: an interrupted dump can never leave
    # a truncated metrics/trace snapshot behind.
    atomic_write_text(
        target,
        json.dumps(payload, indent=2, sort_keys=True, default=_json_default) + "\n",
    )


def _json_default(value):
    """Coerce numpy scalars (and other oddballs) for json.dumps."""
    for attr in ("item",):  # numpy scalar protocol without importing numpy
        method = getattr(value, attr, None)
        if callable(method):
            return method()
    return repr(value)


#: The process-wide registry every instrument in :mod:`repro` records to.
#: Honouring ``REPRO_TELEMETRY=1`` at import keeps CLI-less consumers
#: (pytest, notebooks) one env var away from full telemetry.
OBS = MetricsRegistry(enabled=telemetry_enabled_from_env())
