"""Nested trace spans with structured attributes and events.

A span is one timed region of work — an experiment run, a sweep, a pool
fan-out — carrying key/value *attributes* (set at open or during the
region) and timestamped *events* (per-checkpoint observations such as
TVD-at-step convergence traces).  Spans nest: opening a span inside
another records the parent id, so a trace reconstructs the call tree::

    experiment.fig3
    └─ core.variation_curves        sources=250 checkpoints=5
       ├─ parallel.pool             workers=4 tasks=16
       └─ [events] tvd step=1 mean=0.93 ... tvd step=40 mean=0.41

Spans are thread-local (each thread has its own open-span stack on the
shared registry) and are recorded to the registry on close, rendered as
plain dicts so :meth:`~repro.obs.metrics.MetricsRegistry.write_trace`
can dump them without any custom serialisation.

When telemetry is disabled, ``registry.span(...)`` returns a shared
no-op object and none of this module runs — the import itself is lazy.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Span"]


class Span:
    """One open trace region (use via ``with registry.span(name, ...)``)."""

    __slots__ = (
        "_registry",
        "name",
        "attributes",
        "events",
        "span_id",
        "parent_id",
        "depth",
        "start_unix",
        "_start_perf",
        "duration_s",
        "status",
    )

    def __init__(self, registry, name: str, attributes: dict) -> None:
        self._registry = registry
        self.name = str(name)
        self.attributes = dict(attributes)
        self.events: list = []
        self.span_id = registry._next_span_id()
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.start_unix = 0.0
        self._start_perf = 0.0
        self.duration_s: Optional[float] = None
        self.status = "ok"

    # -- structured payload --------------------------------------------
    def set(self, **attributes) -> "Span":
        """Merge attributes into the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def event(self, name: str, **attributes) -> "Span":
        """Record a timestamped event inside the span (chainable).

        The timestamp is the offset from span start in seconds, so event
        sequences read as a convergence trace without clock arithmetic.
        """
        self.events.append(
            {
                "name": str(name),
                "offset_s": time.perf_counter() - self._start_perf,
                **attributes,
            }
        )
        return self

    # -- context manager protocol --------------------------------------
    def __enter__(self) -> "Span":
        stack = self._registry._span_stack()
        if stack:
            parent = stack[-1]
            self.parent_id = parent.span_id
            self.depth = parent.depth + 1
        self.start_unix = time.time()
        self._start_perf = time.perf_counter()
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_s = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.status = "error"
            self.attributes.setdefault("exception", exc_type.__name__)
        stack = self._registry._span_stack()
        # Pop defensively: mispaired enters/exits must not corrupt the
        # sibling spans' ancestry (they only orphan this one).
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # pragma: no cover - mispaired nesting
            stack.remove(self)
        self._registry._record_span(self.to_dict())
        return False

    def to_dict(self) -> dict:
        return {
            "id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "name": self.name,
            "start_unix": self.start_unix,
            "duration_s": self.duration_s,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": list(self.events),
        }
