"""Subgraph sampling: BFS (snowball), random-walk, and uniform sampling."""

from .bfs_sample import bfs_sample, multi_scale_bfs_samples
from .random_walk_sample import metropolis_hastings_sample, random_walk_sample
from .node_sample import random_edge_sample, random_node_sample

__all__ = [
    "bfs_sample",
    "multi_scale_bfs_samples",
    "metropolis_hastings_sample",
    "random_walk_sample",
    "random_edge_sample",
    "random_node_sample",
]
