"""BFS (snowball) subgraph sampling — the paper's Figure 7 methodology.

Section 4: "we sample the representative subgraphs from each of the four
large data sets ... using the breadth first search (BFS) algorithm
beginning from a random node in the graph as an initial point", producing
10K / 100K / 1000K node samples.  The paper's own footnote 3 notes that
BFS biases samples toward *faster* mixing (it harvests a dense ball),
which only strengthens the slow-mixing conclusion; tests in this repo
verify that bias empirically.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import SamplingError
from ..graph import Graph, bfs_order, induced_subgraph, largest_connected_component
from .._util import as_rng

__all__ = ["bfs_sample", "multi_scale_bfs_samples"]


def bfs_sample(
    graph: Graph,
    target_nodes: int,
    *,
    source: Optional[int] = None,
    seed=None,
    keep_largest_component: bool = True,
) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on the first ``target_nodes`` BFS discoveries.

    Parameters
    ----------
    source:
        Start node; a uniform random node when omitted (the paper's
        choice).
    keep_largest_component:
        The induced subgraph of a BFS ball is connected by construction,
        but guard anyway (isolated nodes can appear only if
        ``target_nodes`` exceeds the component size and extra components
        get pulled in — which raises instead, see below).

    Raises
    ------
    SamplingError
        When the component containing ``source`` has fewer than
        ``target_nodes`` nodes, rather than silently returning a smaller
        sample.
    """
    if target_nodes <= 0:
        raise SamplingError("target_nodes must be positive")
    if target_nodes > graph.num_nodes:
        raise SamplingError(
            f"target_nodes={target_nodes} exceeds graph size {graph.num_nodes}"
        )
    rng = as_rng(seed)
    if source is None:
        source = int(rng.integers(graph.num_nodes))
    order = bfs_order(graph, source, limit=target_nodes)
    if order.size < target_nodes:
        raise SamplingError(
            f"BFS from node {source} reached only {order.size} nodes "
            f"(< {target_nodes}); component too small"
        )
    sub, node_map = induced_subgraph(graph, order)
    if keep_largest_component:
        sub2, inner = largest_connected_component(sub)
        return sub2, node_map[inner]
    return sub, node_map


def multi_scale_bfs_samples(
    graph: Graph,
    sizes: Sequence[int],
    *,
    seed=None,
    nested: bool = True,
) -> Dict[int, Tuple[Graph, np.ndarray]]:
    """BFS samples at several sizes from one random start (Figure 7 setup).

    With ``nested=True`` (default) all samples share the same source, so
    smaller samples are prefixes of larger ones — matching the paper's
    10K ⊂ 100K ⊂ 1000K construction from one BFS pass per graph.
    """
    sizes = sorted(set(int(s) for s in sizes))
    if not sizes:
        raise SamplingError("sizes must be non-empty")
    rng = as_rng(seed)
    source = int(rng.integers(graph.num_nodes))
    out: Dict[int, Tuple[Graph, np.ndarray]] = {}
    for size in sizes:
        src = source if nested else int(rng.integers(graph.num_nodes))
        out[size] = bfs_sample(graph, size, source=src, seed=rng)
    return out
