"""Uniform node and edge sampling (baseline samplers).

Uniform node sampling shatters sparse social graphs into fragments, which
is exactly why the paper (and crawls generally) use BFS; keeping these
baselines around lets experiments demonstrate that difference.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import SamplingError
from ..graph import Graph, induced_subgraph, largest_connected_component
from .._util import as_rng

__all__ = ["random_node_sample", "random_edge_sample"]


def random_node_sample(
    graph: Graph,
    target_nodes: int,
    *,
    seed=None,
    keep_largest_component: bool = True,
) -> Tuple[Graph, np.ndarray]:
    """Induced subgraph on a uniform node sample (without replacement).

    Returns ``(subgraph, node_map)``.  With ``keep_largest_component``
    (default) the returned graph is the sample's largest component, which
    is usually *much* smaller than ``target_nodes`` on sparse graphs.
    """
    if not 0 < target_nodes <= graph.num_nodes:
        raise SamplingError("target_nodes out of range")
    rng = as_rng(seed)
    nodes = rng.choice(graph.num_nodes, size=target_nodes, replace=False)
    sub, node_map = induced_subgraph(graph, nodes)
    if keep_largest_component and sub.num_nodes:
        sub2, inner = largest_connected_component(sub)
        return sub2, node_map[inner]
    return sub, node_map


def random_edge_sample(
    graph: Graph,
    target_edges: int,
    *,
    seed=None,
    keep_largest_component: bool = True,
) -> Tuple[Graph, np.ndarray]:
    """Subgraph on a uniform edge sample: keep ``target_edges`` edges and
    the nodes they touch.

    Returns ``(subgraph, node_map)``.
    """
    if not 0 < target_edges <= graph.num_edges:
        raise SamplingError("target_edges out of range")
    rng = as_rng(seed)
    all_edges = graph.edges()
    picked = all_edges[rng.choice(all_edges.shape[0], size=target_edges, replace=False)]
    nodes = np.unique(picked)
    rank = {int(v): i for i, v in enumerate(nodes)}
    remapped = np.asarray(
        [(rank[int(u)], rank[int(v)]) for u, v in picked], dtype=np.int64
    )
    sub = Graph.from_edges(remapped, num_nodes=nodes.size)
    if keep_largest_component and sub.num_nodes:
        sub2, inner = largest_connected_component(sub)
        return sub2, nodes[inner]
    return sub, nodes
