"""Random-walk based subgraph sampling.

Two flavours:

* :func:`random_walk_sample` — plain simple-random-walk crawl; node
  inclusion is biased toward high degree (proportional to the stationary
  distribution), like real crawls of OSN APIs.
* :func:`metropolis_hastings_sample` — the Metropolis–Hastings random
  walk, whose acceptance step ``min(1, deg(u)/deg(v))`` corrects the bias
  so visited nodes are asymptotically uniform.

These complement BFS sampling: comparing the mixing time of BFS vs MHRW
samples of the same graph quantifies the BFS bias the paper's footnote 3
mentions.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import SamplingError
from ..graph import Graph, induced_subgraph, largest_connected_component
from .._util import as_rng, check_node_index

__all__ = ["random_walk_sample", "metropolis_hastings_sample"]


def _crawl(
    graph: Graph,
    target_nodes: int,
    source: Optional[int],
    rng: np.random.Generator,
    *,
    mh_correction: bool,
    max_steps_factor: int = 2000,
) -> np.ndarray:
    if target_nodes <= 0:
        raise SamplingError("target_nodes must be positive")
    if target_nodes > graph.num_nodes:
        raise SamplingError("target_nodes exceeds graph size")
    if source is None:
        source = int(rng.integers(graph.num_nodes))
    else:
        source = check_node_index(source, graph.num_nodes, name="source")
    if graph.degree(source) == 0:
        raise SamplingError(f"source {source} is isolated")
    seen = np.zeros(graph.num_nodes, dtype=bool)
    collected = []
    seen[source] = True
    collected.append(source)
    indptr, indices = graph.indptr, graph.indices
    current = source
    budget = max_steps_factor * target_nodes
    steps = 0
    while len(collected) < target_nodes and steps < budget:
        steps += 1
        lo, hi = indptr[current], indptr[current + 1]
        candidate = int(indices[lo + rng.integers(hi - lo)])
        if mh_correction:
            ratio = graph.degrees[current] / graph.degrees[candidate]
            if rng.random() >= min(1.0, ratio):
                continue  # stay; the self-loop keeps the chain unbiased
        current = candidate
        if not seen[current]:
            seen[current] = True
            collected.append(current)
    if len(collected) < target_nodes:
        raise SamplingError(
            f"walk collected only {len(collected)} of {target_nodes} nodes "
            f"within {budget} steps; component too small or too bottlenecked"
        )
    return np.asarray(collected, dtype=np.int64)


def random_walk_sample(
    graph: Graph,
    target_nodes: int,
    *,
    source: Optional[int] = None,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """Crawl with a simple random walk until ``target_nodes`` distinct
    nodes are seen; return their induced subgraph's largest component.

    Returns ``(subgraph, node_map)``.
    """
    rng = as_rng(seed)
    nodes = _crawl(graph, target_nodes, source, rng, mh_correction=False)
    sub, node_map = induced_subgraph(graph, nodes)
    sub2, inner = largest_connected_component(sub)
    return sub2, node_map[inner]


def metropolis_hastings_sample(
    graph: Graph,
    target_nodes: int,
    *,
    source: Optional[int] = None,
    seed=None,
) -> Tuple[Graph, np.ndarray]:
    """Degree-bias-corrected crawl (MHRW); see module docstring.

    Returns ``(subgraph, node_map)``.
    """
    rng = as_rng(seed)
    nodes = _crawl(graph, target_nodes, source, rng, mh_correction=True)
    sub, node_map = induced_subgraph(graph, nodes)
    sub2, inner = largest_connected_component(sub)
    return sub2, node_map[inner]
