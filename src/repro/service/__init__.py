"""Mixing-time-as-a-service: a long-lived query layer over the runtime.

Everything before this package was batch-shaped: a CLI invocation built
its operators, published shared memory, swept, printed and exited.  The
paper's quantity, however, is naturally *per-node on demand* — "how long
until a walk from v is within ε of stationary?" is a question a Sybil
defense asks about one suspect at a time, millions of times.  This
package turns the PR 1-5 substrate (block kernels, zero-copy operator
publication, :class:`~repro.core.runtime.ExecutionPolicy`,
content-addressed fingerprints) into serving infrastructure:

* :class:`~repro.service.registry.OperatorRegistry` — constructs
  operators once and keeps them (and their published shared-memory
  segments) **warm** across requests, with ref-counted leases and LRU
  eviction that unlinks segments explicitly.
* :class:`~repro.service.engine.QueryEngine` — the request vocabulary
  (mixing time from node v at ε, variation curves for sources S, current
  SLEM, admission decision for suspect s at w) with **request
  coalescing**: concurrent point-mass queries are batched into single
  block sweeps over the PR-1 kernels and scattered back per-request,
  bit-identical to serial per-request computation.
* :class:`~repro.service.cache.ResultCache` — fingerprint-keyed result
  cache (graph content, operator kind, ε / walk lengths, query type);
  hit-path answers are bit-identical to cold computation.
* :class:`~repro.service.client.ServiceClient` /
  :class:`~repro.service.http.ServiceServer` — the in-process API and
  the stdlib-only HTTP front-end behind ``repro-mixing serve``.  Both
  speak two wire schemas: the historical v1 (no ``schema`` field,
  byte-compatible replies) and :data:`~repro.service.client.SCHEMA_V2`,
  which adds ``graph_version`` to every reply, the temporal trend
  queries (:class:`~repro.service.engine.MixingTrendQuery`,
  :class:`~repro.service.engine.SlemTrendQuery`) and the
  ``append_delta`` mutation verb over :mod:`repro.graph.temporal`
  datasets.
* :mod:`repro.service.batch` — adapters proving the batch runners are
  expressible as service queries (and pinned so by tests), so the two
  paths cannot drift.
"""

from .cache import CacheStats, ResultCache
from .client import SCHEMA_V2, HTTPServiceClient, ServiceClient, answer_payload
from .engine import (
    AdmissionQuery,
    MixingTimeQuery,
    MixingTrendQuery,
    QueryEngine,
    QueryResult,
    SlemQuery,
    SlemTrendQuery,
    VariationCurveQuery,
)
from .http import ServiceServer
from .keys import graph_fingerprint, query_fingerprint
from .registry import OperatorLease, OperatorRegistry

__all__ = [
    "SCHEMA_V2",
    "AdmissionQuery",
    "CacheStats",
    "HTTPServiceClient",
    "MixingTimeQuery",
    "MixingTrendQuery",
    "OperatorLease",
    "OperatorRegistry",
    "QueryEngine",
    "QueryResult",
    "ResultCache",
    "ServiceClient",
    "ServiceServer",
    "SlemQuery",
    "SlemTrendQuery",
    "VariationCurveQuery",
    "answer_payload",
    "graph_fingerprint",
    "query_fingerprint",
]
