"""Batch-shaped answers computed *through* the service.

These adapters express the batch runners' core computations as service
queries and reassemble the batch-shaped outputs.  They exist so the two
paths cannot drift: the identity tests pin ``variation_curves_via_service``
(et al.) bit-for-bit against the direct batch calls, under every serving
regime — cold, cached, coalesced, workers 1 or 2.  If someone changes a
kernel, a cache key, or the scatter logic in a way that could make the
service answer diverge from the batch answer, these adapters are where
the test suite notices.

Per-source queries are submitted from a thread pool (one thread per
source, capped) rather than a loop, so the adapters also exercise the
engine's coalescing path the way real concurrent clients would.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

import numpy as np

from ..core.operators import HittingTimes
from .engine import MixingTimeQuery, QueryEngine

__all__ = [
    "admission_via_service",
    "hitting_times_via_service",
    "variation_curves_via_service",
]

#: Cap on adapter-side client threads; enough to fill a coalescing
#: window without oversubscribing small containers.
_MAX_CLIENT_THREADS = 8


def variation_curves_via_service(
    engine: QueryEngine,
    dataset: str,
    sources: Sequence[int],
    walk_lengths: Sequence[int],
    *,
    laziness: float = 0.0,
    per_source: bool = False,
) -> np.ndarray:
    """The ``(len(sources), len(walk_lengths))`` distance matrix, via queries.

    ``per_source=False`` issues one multi-source query (the service's
    natural shape).  ``per_source=True`` issues one query per source from
    concurrent threads — the adversarial case for coalescing identity:
    rows scattered out of merged sweeps must still reassemble into
    exactly the batch matrix.
    """
    if not per_source:
        result = engine.variation_curve(
            dataset, tuple(sources), tuple(walk_lengths), laziness=laziness
        )
        return np.asarray(result.value, dtype=np.float64)

    def one(source: int) -> np.ndarray:
        result = engine.variation_curve(
            dataset, (int(source),), tuple(walk_lengths), laziness=laziness
        )
        return np.asarray(result.value, dtype=np.float64)[0]

    with ThreadPoolExecutor(
        max_workers=min(_MAX_CLIENT_THREADS, max(1, len(sources)))
    ) as pool:
        rows = list(pool.map(one, sources))
    return np.stack(rows, axis=0)


def hitting_times_via_service(
    engine: QueryEngine,
    dataset: str,
    sources: Sequence[int],
    epsilon: float,
    *,
    max_steps: int = 10_000,
    laziness: float = 0.0,
) -> HittingTimes:
    """Per-source mixing times via concurrent point-mass queries.

    Submits one :class:`~repro.service.engine.MixingTimeQuery` per source
    from a thread pool (letting the engine coalesce them into block
    sweeps) and reassembles the batch :class:`HittingTimes` shape.
    """

    def one(source: int) -> dict:
        result = engine.submit(
            MixingTimeQuery(
                dataset,
                int(source),
                float(epsilon),
                laziness=laziness,
                max_steps=max_steps,
            )
        )
        return result.value

    with ThreadPoolExecutor(
        max_workers=min(_MAX_CLIENT_THREADS, max(1, len(sources)))
    ) as pool:
        answers = list(pool.map(one, sources))
    times = np.asarray([a["time"] for a in answers], dtype=np.int64)
    finals = np.asarray([a["final_distance"] for a in answers], dtype=np.float64)
    return HittingTimes(times=times, final_distances=finals)


def admission_via_service(
    engine: QueryEngine,
    dataset: str,
    suspects: Sequence[int],
    route_length: int,
    *,
    verifier: int = 0,
    seed: int = 0,
    num_instances: Optional[int] = None,
) -> dict:
    """One SybilLimit admission verdict via the service, batch-shaped.

    Deliberately a single query for the whole suspect set — admission is
    set-dependent, so the adapter preserves the batch runner's exact
    suspect composition instead of fanning out per suspect.
    """
    result = engine.admission(
        dataset,
        tuple(int(s) for s in suspects),
        int(route_length),
        verifier=verifier,
        seed=seed,
        num_instances=num_instances,
    )
    return result.value
