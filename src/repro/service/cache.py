"""Fingerprint-keyed LRU result cache for the query engine.

Correctness contract: a cache hit returns an object **bit-identical** to
what cold computation would produce.  That holds because (a) keys are
content fingerprints (:mod:`repro.service.keys`) covering every input
that can change an answer and excluding every knob that cannot, and
(b) every numeric answer is pinned deterministic across workers, block
sizes, coalescing and resume by the PR 1-5 invariants.  Cached arrays
are frozen read-only so a client cannot corrupt the copy every later
hit is served from.

Thread-safety: all operations take one lock; values are immutable after
:meth:`ResultCache.put`, so a value handed out remains valid even if its
entry is evicted mid-flight by a concurrent client (eviction drops the
cache's reference, never the object).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one :class:`ResultCache`."""

    entries: int
    max_entries: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def _freeze(value: Any) -> Any:
    """Make a cached value safe to share: read-only arrays, recursively."""
    if isinstance(value, np.ndarray):
        frozen = np.ascontiguousarray(value)
        frozen.setflags(write=False)
        return frozen
    if isinstance(value, tuple):
        return tuple(_freeze(v) for v in value)
    return value


class ResultCache:
    """Bounded LRU map from query fingerprint to frozen answer.

    ``max_entries=0`` disables caching entirely (every lookup misses,
    nothing is stored) — useful for identity tests that must exercise
    the cold path.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        max_entries = int(max_entries)
        if max_entries < 0:
            raise ConfigurationError(
                f"max_entries must be >= 0, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> Optional[Any]:
        """The frozen answer for ``key``, or ``None`` on a miss.

        A hit refreshes the entry's LRU position.  ``None`` is never a
        valid cached value (answers are arrays/tuples/scalars), so the
        sentinel is unambiguous.
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: str, value: Any) -> Any:
        """Freeze and store ``value``; returns the frozen object.

        Concurrent puts of the same key are benign: both values are
        bit-identical by the determinism contract, so last-write-wins
        never changes an answer.
        """
        frozen = _freeze(value)
        if self.max_entries == 0:
            return frozen
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = frozen
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        return frozen

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                max_entries=self.max_entries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
