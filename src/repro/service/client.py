"""Service clients: in-process and HTTP, speaking one wire vocabulary.

Both clients expose the same verbs as the engine; the wire format
(`payload dict -> query object`, `answer -> JSON-able dict`) lives here
so the HTTP server, the HTTP client and the in-process client share one
codec and cannot disagree about field names or types.

**Schema versioning.**  The wire speaks two schema versions:

* *v1* (historical): no ``schema`` field.  Exactly the four original
  query types, answered with exactly the original six reply keys —
  byte-compatible with every pre-temporal client, pinned by the
  compatibility tests.  v1 knows nothing about temporal graphs; its
  answers are served against the base snapshots of the dataset registry.
* *v2* (:data:`SCHEMA_V2`): payloads carry ``"schema":
  "repro.service.query/v2"``; replies echo ``schema`` and add
  ``graph_version`` — the content version of the graph state answered
  against.  v2 adds the trend queries (``mixing_trend``, ``slem_trend``),
  the ``append_delta`` mutation verb, and an optional request-side
  ``graph_version`` pin: when present and the live state differs, the
  server refuses with 400 instead of answering against a state the
  client did not expect.

:func:`answer_payload` is the single seam both front-ends route through
— :meth:`ServiceClient.query` and ``POST /query`` cannot disagree.

Bit-identity across the wire: every float in an answer is emitted via
``json`` using Python's shortest-round-trip ``repr``, which reconstructs
the exact IEEE-754 double on parse — so an HTTP answer compares equal,
bit for bit, to the in-process one.  The identity tests pin this.
"""

from __future__ import annotations

import json
from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError
from .engine import (
    AdmissionQuery,
    MixingTimeQuery,
    MixingTrendQuery,
    QueryEngine,
    QueryResult,
    SlemQuery,
    SlemTrendQuery,
    VariationCurveQuery,
)

__all__ = [
    "SCHEMA_V2",
    "HTTPServiceClient",
    "ServiceClient",
    "answer_payload",
    "build_query",
    "decode_result",
    "encode_result",
]

#: Wire schema identifier carried by v2 payloads and replies.  v1
#: payloads are recognised by the *absence* of a ``schema`` field.
SCHEMA_V2 = "repro.service.query/v2"

_QUERY_TYPES = {
    "mixing_time": MixingTimeQuery,
    "variation_curve": VariationCurveQuery,
    "slem": SlemQuery,
    "admission": AdmissionQuery,
}

#: Query types only the v2 schema can name.
_V2_QUERY_TYPES = {
    "mixing_trend": MixingTrendQuery,
    "slem_trend": SlemTrendQuery,
}

#: Fields that must be tuples when they arrive as JSON lists.
_TUPLE_FIELDS = ("sources", "walk_lengths", "suspects", "times")


def build_query(payload: dict, *, schema: Optional[str] = None):
    """Wire payload -> query dataclass (the server's request parser).

    ``schema=None`` parses the historical v1 vocabulary (exactly the
    four original query types); ``schema=SCHEMA_V2`` additionally
    accepts the trend queries.  The ``schema`` key itself is stripped by
    :func:`answer_payload` before this runs.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("query payload must be a JSON object")
    types = _QUERY_TYPES if schema is None else {**_QUERY_TYPES, **_V2_QUERY_TYPES}
    kind = payload.get("type")
    cls = types.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown query type {kind!r}; expected one of {sorted(types)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "type"}
    for name in _TUPLE_FIELDS:
        if name in kwargs and isinstance(kwargs[name], (list, tuple)):
            kwargs[name] = tuple(kwargs[name])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad {kind} query: {exc}") from exc


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def encode_result(result: QueryResult, *, schema: Optional[str] = None) -> dict:
    """Query result -> JSON-able wire dict (floats keep full precision).

    The default emits the historical v1 reply — exactly six keys, byte
    compatible with pre-temporal clients.  ``schema=SCHEMA_V2`` adds the
    ``schema`` and ``graph_version`` keys of the versioned wire.
    """
    reply = {
        "value": _encode_value(result.value),
        "fingerprint": result.fingerprint,
        "cache_hit": bool(result.cache_hit),
        "coalesced": bool(result.coalesced),
        "batch_size": int(result.batch_size),
        "latency_s": float(result.latency_s),
    }
    if schema is not None:
        reply["schema"] = schema
        reply["graph_version"] = result.graph_version
    return reply


def decode_result(payload: dict) -> QueryResult:
    """Wire dict -> :class:`QueryResult` (value stays JSON-shaped)."""
    return QueryResult(
        value=payload["value"],
        fingerprint=payload["fingerprint"],
        cache_hit=bool(payload["cache_hit"]),
        coalesced=bool(payload["coalesced"]),
        batch_size=int(payload["batch_size"]),
        latency_s=float(payload["latency_s"]),
        graph_version=payload.get("graph_version"),
    )


_APPEND_DELTA_FIELDS = frozenset({"type", "dataset", "timestamp", "insert", "delete"})


def _append_delta_reply(engine: QueryEngine, body: dict, pin: Optional[str]) -> dict:
    """Handle the v2-only ``append_delta`` mutation verb."""
    unknown = set(body) - _APPEND_DELTA_FIELDS
    if unknown:
        # A mutation with a misspelled field must never be applied on a
        # weaker contract than the client believes it asked for — the
        # CAS pin in particular rides in the top-level 'graph_version'
        # key, not in the engine kwarg name.
        raise ConfigurationError(
            f"append_delta got unknown field(s) {sorted(unknown)}; "
            f"expected {sorted(_APPEND_DELTA_FIELDS)} plus the optional "
            "top-level 'graph_version' pin"
        )
    for field in ("dataset", "timestamp"):
        if field not in body:
            raise ConfigurationError(f"append_delta requires {field!r}")
    insert = body.get("insert", ())
    delete = body.get("delete", ())
    version = engine.append_delta(
        str(body["dataset"]),
        body["timestamp"],
        insert=insert,
        delete=delete,
        expect_version=pin,
    )
    return {
        "schema": SCHEMA_V2,
        "graph_version": version,
        "value": {
            "dataset": str(body["dataset"]),
            "timestamp": int(body["timestamp"]),
            "num_insert": len(insert),
            "num_delete": len(delete),
        },
    }


def answer_payload(engine: QueryEngine, payload: dict) -> dict:
    """Answer one wire payload at its declared schema version.

    The single codec seam shared by :meth:`ServiceClient.query` and the
    HTTP handler's ``POST /query`` — the two front-ends cannot drift.
    Payloads without a ``schema`` key get the v1 contract (historical
    vocabulary, historical reply keys); ``schema: repro.service.query/v2``
    unlocks trend queries, ``append_delta`` and the ``graph_version``
    request pin.  Any other schema value is refused.
    """
    if not isinstance(payload, dict):
        raise ConfigurationError("query payload must be a JSON object")
    schema = payload.get("schema")
    if schema is None:
        return encode_result(engine.submit(build_query(payload)))
    if schema != SCHEMA_V2:
        raise ConfigurationError(
            f"unknown wire schema {schema!r}; this server speaks v1 "
            f"(no schema field) and {SCHEMA_V2!r}"
        )
    pin = payload.get("graph_version")
    if pin is not None and not isinstance(pin, str):
        raise ConfigurationError("graph_version must be a string")
    body = {k: v for k, v in payload.items() if k not in ("schema", "graph_version")}
    if body.get("type") == "append_delta":
        return _append_delta_reply(engine, body, pin)
    result = engine.submit(build_query(body, schema=SCHEMA_V2))
    if pin is not None and result.graph_version != pin:
        raise ConfigurationError(
            f"graph_version mismatch: request pinned {pin}, live state is "
            f"{result.graph_version}"
        )
    return encode_result(result, schema=SCHEMA_V2)


class ServiceClient:
    """In-process client: the engine's vocabulary with wire-dict support.

    ``query(payload)`` accepts the same JSON payloads the HTTP endpoint
    does, so a workload can be replayed against either front-end and the
    answers diffed — the service smoke test in CI does exactly that.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def mixing_time(self, dataset, source, epsilon, **kwargs) -> QueryResult:
        return self.engine.mixing_time(dataset, source, epsilon, **kwargs)

    def variation_curve(self, dataset, sources, walk_lengths, **kwargs) -> QueryResult:
        return self.engine.variation_curve(dataset, sources, walk_lengths, **kwargs)

    def slem(self, dataset, **kwargs) -> QueryResult:
        return self.engine.slem(dataset, **kwargs)

    def admission(self, dataset, suspects, route_length, **kwargs) -> QueryResult:
        return self.engine.admission(dataset, suspects, route_length, **kwargs)

    def mixing_trend(self, dataset, walk_lengths, **kwargs) -> QueryResult:
        return self.engine.mixing_trend(dataset, walk_lengths, **kwargs)

    def slem_trend(self, dataset, **kwargs) -> QueryResult:
        return self.engine.slem_trend(dataset, **kwargs)

    def append_delta(self, dataset, timestamp, insert=(), delete=(), **kwargs) -> str:
        return self.engine.append_delta(
            dataset, timestamp, insert=insert, delete=delete, **kwargs
        )

    def query(self, payload: dict) -> dict:
        """Answer one wire-format payload, returning the wire-format reply.

        Routes through :func:`answer_payload`, so schema negotiation is
        identical to the HTTP endpoint's.
        """
        return answer_payload(self.engine, payload)

    def stats(self) -> dict:
        return self.engine.stats()

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HTTPServiceClient:
    """Stdlib-only client for :class:`repro.service.http.ServiceServer`.

    One persistent ``http.client.HTTPConnection`` per client instance —
    callers wanting concurrency use one client per thread (connections
    are not locked, matching ``http.client``'s own contract).
    """

    def __init__(self, host: str, port: int, *, timeout: Optional[float] = 60.0):
        import http.client

        self.host = str(host)
        self.port = int(port)
        self._conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)

    # -- low-level -------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        self._conn.request(method, path, body=payload, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        if response.status != 200:
            try:
                detail = json.loads(data.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                detail = data.decode("utf-8", "replace")
            raise ConfigurationError(
                f"service returned {response.status} for {method} {path}: {detail}"
            )
        return json.loads(data.decode("utf-8"))

    def query(self, payload: dict) -> dict:
        """POST one wire-format query; returns the wire-format reply."""
        return self._request("POST", "/query", payload)

    # -- the four verbs --------------------------------------------------
    def mixing_time(self, dataset, source, epsilon, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "mixing_time",
                    "dataset": dataset,
                    "source": int(source),
                    "epsilon": float(epsilon),
                    **kwargs,
                }
            )
        )

    def variation_curve(self, dataset, sources, walk_lengths, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "variation_curve",
                    "dataset": dataset,
                    "sources": [int(s) for s in sources],
                    "walk_lengths": [int(w) for w in walk_lengths],
                    **kwargs,
                }
            )
        )

    def slem(self, dataset, **kwargs) -> QueryResult:
        return decode_result(self.query({"type": "slem", "dataset": dataset, **kwargs}))

    def admission(self, dataset, suspects, route_length, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "admission",
                    "dataset": dataset,
                    "suspects": [int(s) for s in suspects],
                    "route_length": int(route_length),
                    **kwargs,
                }
            )
        )

    # -- v2-only verbs ---------------------------------------------------
    def mixing_trend(self, dataset, walk_lengths, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "schema": SCHEMA_V2,
                    "type": "mixing_trend",
                    "dataset": dataset,
                    "walk_lengths": [int(w) for w in walk_lengths],
                    **kwargs,
                }
            )
        )

    def slem_trend(self, dataset, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {"schema": SCHEMA_V2, "type": "slem_trend", "dataset": dataset, **kwargs}
            )
        )

    def append_delta(self, dataset, timestamp, insert=(), delete=(), **kwargs) -> str:
        """POST one edge delta; returns the dataset's new graph version."""
        reply = self.query(
            {
                "schema": SCHEMA_V2,
                "type": "append_delta",
                "dataset": dataset,
                "timestamp": int(timestamp),
                "insert": [[int(u), int(v)] for u, v in insert],
                "delete": [[int(u), int(v)] for u, v in delete],
                **kwargs,
            }
        )
        return reply["graph_version"]

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/health")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HTTPServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
