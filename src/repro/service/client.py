"""Service clients: in-process and HTTP, speaking one wire vocabulary.

Both clients expose the same four verbs as the engine; the wire format
(`payload dict -> query object`, `answer -> JSON-able dict`) lives here
so the HTTP server, the HTTP client and the in-process client share one
codec and cannot disagree about field names or types.

Bit-identity across the wire: every float in an answer is emitted via
``json`` using Python's shortest-round-trip ``repr``, which reconstructs
the exact IEEE-754 double on parse — so an HTTP answer compares equal,
bit for bit, to the in-process one.  The identity tests pin this.
"""

from __future__ import annotations

import json
from typing import Any, Optional

import numpy as np

from ..errors import ConfigurationError
from .engine import (
    AdmissionQuery,
    MixingTimeQuery,
    QueryEngine,
    QueryResult,
    SlemQuery,
    VariationCurveQuery,
)

__all__ = [
    "HTTPServiceClient",
    "ServiceClient",
    "build_query",
    "decode_result",
    "encode_result",
]

_QUERY_TYPES = {
    "mixing_time": MixingTimeQuery,
    "variation_curve": VariationCurveQuery,
    "slem": SlemQuery,
    "admission": AdmissionQuery,
}

#: Fields that must be tuples when they arrive as JSON lists.
_TUPLE_FIELDS = ("sources", "walk_lengths", "suspects")


def build_query(payload: dict):
    """Wire payload -> query dataclass (the server's request parser)."""
    if not isinstance(payload, dict):
        raise ConfigurationError("query payload must be a JSON object")
    kind = payload.get("type")
    cls = _QUERY_TYPES.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown query type {kind!r}; expected one of {sorted(_QUERY_TYPES)}"
        )
    kwargs = {k: v for k, v in payload.items() if k != "type"}
    for name in _TUPLE_FIELDS:
        if name in kwargs and isinstance(kwargs[name], (list, tuple)):
            kwargs[name] = tuple(kwargs[name])
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"bad {kind} query: {exc}") from exc


def _encode_value(value: Any) -> Any:
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def encode_result(result: QueryResult) -> dict:
    """Query result -> JSON-able wire dict (floats keep full precision)."""
    return {
        "value": _encode_value(result.value),
        "fingerprint": result.fingerprint,
        "cache_hit": bool(result.cache_hit),
        "coalesced": bool(result.coalesced),
        "batch_size": int(result.batch_size),
        "latency_s": float(result.latency_s),
    }


def decode_result(payload: dict) -> QueryResult:
    """Wire dict -> :class:`QueryResult` (value stays JSON-shaped)."""
    return QueryResult(
        value=payload["value"],
        fingerprint=payload["fingerprint"],
        cache_hit=bool(payload["cache_hit"]),
        coalesced=bool(payload["coalesced"]),
        batch_size=int(payload["batch_size"]),
        latency_s=float(payload["latency_s"]),
    )


class ServiceClient:
    """In-process client: the engine's vocabulary with wire-dict support.

    ``query(payload)`` accepts the same JSON payloads the HTTP endpoint
    does, so a workload can be replayed against either front-end and the
    answers diffed — the service smoke test in CI does exactly that.
    """

    def __init__(self, engine: QueryEngine) -> None:
        self.engine = engine

    def mixing_time(self, dataset, source, epsilon, **kwargs) -> QueryResult:
        return self.engine.mixing_time(dataset, source, epsilon, **kwargs)

    def variation_curve(self, dataset, sources, walk_lengths, **kwargs) -> QueryResult:
        return self.engine.variation_curve(dataset, sources, walk_lengths, **kwargs)

    def slem(self, dataset, **kwargs) -> QueryResult:
        return self.engine.slem(dataset, **kwargs)

    def admission(self, dataset, suspects, route_length, **kwargs) -> QueryResult:
        return self.engine.admission(dataset, suspects, route_length, **kwargs)

    def query(self, payload: dict) -> dict:
        """Answer one wire-format payload, returning the wire-format reply."""
        return encode_result(self.engine.submit(build_query(payload)))

    def stats(self) -> dict:
        return self.engine.stats()

    def close(self) -> None:
        self.engine.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class HTTPServiceClient:
    """Stdlib-only client for :class:`repro.service.http.ServiceServer`.

    One persistent ``http.client.HTTPConnection`` per client instance —
    callers wanting concurrency use one client per thread (connections
    are not locked, matching ``http.client``'s own contract).
    """

    def __init__(self, host: str, port: int, *, timeout: Optional[float] = 60.0):
        import http.client

        self.host = str(host)
        self.port = int(port)
        self._conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)

    # -- low-level -------------------------------------------------------
    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        self._conn.request(method, path, body=payload, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        if response.status != 200:
            try:
                detail = json.loads(data.decode("utf-8")).get("error", "")
            except (ValueError, UnicodeDecodeError):
                detail = data.decode("utf-8", "replace")
            raise ConfigurationError(
                f"service returned {response.status} for {method} {path}: {detail}"
            )
        return json.loads(data.decode("utf-8"))

    def query(self, payload: dict) -> dict:
        """POST one wire-format query; returns the wire-format reply."""
        return self._request("POST", "/query", payload)

    # -- the four verbs --------------------------------------------------
    def mixing_time(self, dataset, source, epsilon, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "mixing_time",
                    "dataset": dataset,
                    "source": int(source),
                    "epsilon": float(epsilon),
                    **kwargs,
                }
            )
        )

    def variation_curve(self, dataset, sources, walk_lengths, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "variation_curve",
                    "dataset": dataset,
                    "sources": [int(s) for s in sources],
                    "walk_lengths": [int(w) for w in walk_lengths],
                    **kwargs,
                }
            )
        )

    def slem(self, dataset, **kwargs) -> QueryResult:
        return decode_result(self.query({"type": "slem", "dataset": dataset, **kwargs}))

    def admission(self, dataset, suspects, route_length, **kwargs) -> QueryResult:
        return decode_result(
            self.query(
                {
                    "type": "admission",
                    "dataset": dataset,
                    "suspects": [int(s) for s in suspects],
                    "route_length": int(route_length),
                    **kwargs,
                }
            )
        )

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def health(self) -> dict:
        return self._request("GET", "/health")

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "HTTPServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
