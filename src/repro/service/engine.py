"""Query engine: request vocabulary, coalescing and the cache hit-path.

The engine answers four request shapes — the questions the paper's
pipeline asks of a graph, recast as on-demand queries:

* :class:`MixingTimeQuery` — "mixing time from node *v* at ε" (the
  per-source hitting time of the ε-ball around stationary).
* :class:`VariationCurveQuery` — "variation-distance curve for sources
  *S* at walk lengths *W*" (Figure 1/2's measured object).
* :class:`SlemQuery` — "current SLEM of the graph" (the spectral bound).
* :class:`AdmissionQuery` — "SybilLimit admission decision for suspects
  *S* at route length *w*" (Figure 8's verdict).

Two *trend* shapes extend the vocabulary to temporal datasets
(:mod:`repro.graph.temporal`), where the graph is a versioned delta log
rather than a frozen snapshot:

* :class:`MixingTrendQuery` — "worst/average TVD curves across the
  stream's windows" (the fig3-over-time measurement).
* :class:`SlemTrendQuery` — "SLEM across windows", served by the
  warm-started incremental solver of :mod:`repro.core.incremental`.

Trend queries are never coalesced (each is already a whole sweep) and
their cache keys are built from :attr:`TemporalGraph.version` — a hash
chaining the base snapshot and every delta — so :meth:`append_delta`
invalidates exactly the entries whose answers it changed.

**Coalescing.**  Point-mass queries (mixing time, variation curve) that
arrive within one batching window and share a bucket — same graph,
operator dynamics and sweep parameters — are merged into a *single*
block sweep over the PR-1 kernels and scattered back per-request.  The
first request in a bucket becomes the leader: it waits
``coalesce_window`` seconds (or until ``max_batch`` requests queue,
whichever is first), claims the bucket, runs one sweep over the union of
sources, and fulfils every waiter.  Correctness rests on the PR-1
invariant that block-kernel rows are bit-for-bit independent of batch
composition: the row scattered back for source *v* is identical to what
a lone serial request for *v* would have computed, and the test suite
pins exactly that.

Admission queries are **never** coalesced across requests: SybilLimit's
balance condition is order- and set-dependent (admitting suspect *a*
loads tail counters that suspect *b*'s verdict then sees), so the
contract is "the decision for exactly this query's suspect set" — a
merged sweep would answer a different question.

**No drift.**  The engine does not reimplement sweeps: it calls the same
:func:`repro.core.mixing.measure_mixing` /
:func:`~repro.core.mixing.estimate_mixing_time` the batch runners use
(via their ``operator=`` warm-path parameter), so the service and batch
paths are one code path with two entrances.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.runtime import ExecutionPolicy
from ..errors import ConfigurationError
from ..obs import OBS
from .cache import ResultCache
from .registry import OperatorRegistry

__all__ = [
    "AdmissionQuery",
    "MixingTimeQuery",
    "MixingTrendQuery",
    "QueryEngine",
    "QueryResult",
    "SlemQuery",
    "SlemTrendQuery",
    "VariationCurveQuery",
]


def _warm_nonbacktracking(graph):
    """The graph's Hashimoto operator, memoised like the arc tables.

    The service answers many non-backtracking queries over one warm
    graph; building the arc-space CSR once per graph mirrors how the
    registry amortises node-space operator construction.
    """
    from ..core.nonbacktracking import NonBacktrackingOperator

    memo = getattr(graph, "_memo", None)
    if memo is not None:
        cached = memo.get("nonbacktracking_operator")
        if cached is not None:
            return cached
    operator = NonBacktrackingOperator(graph)
    if memo is not None:
        memo["nonbacktracking_operator"] = operator
    return operator


def _as_source_tuple(sources: Union[int, Sequence[int]]) -> Tuple[int, ...]:
    if isinstance(sources, (int, np.integer)):
        return (int(sources),)
    out = tuple(int(s) for s in sources)
    if not out:
        raise ConfigurationError("sources must be non-empty")
    return out


def _check_query_mode(mode: str, laziness: float) -> None:
    from ..core.mixing import MEASUREMENT_MODES

    if mode not in MEASUREMENT_MODES:
        raise ConfigurationError(
            f"unknown measurement mode {mode!r}; expected one of {MEASUREMENT_MODES}"
        )
    if mode == "non_backtracking" and laziness != 0.0:
        raise ConfigurationError(
            "non_backtracking mode does not support laziness"
        )


@dataclass(frozen=True)
class MixingTimeQuery:
    """Mixing time from one node: min ``t`` with ``||pi - pi^(v) P^t||_1 < eps``.

    ``mode`` selects the estimator (``point_mass`` — the default, the
    paper's definition —, ``uniform_start`` or ``non_backtracking``; see
    :data:`repro.core.mixing.MEASUREMENT_MODES`).  ``uniform_start``
    ignores ``source`` (normalised to the sentinel ``-1`` so all
    uniform-start requests share one cache entry); non-default modes are
    answered directly, never coalesced.
    """

    dataset: str
    source: int
    epsilon: float
    laziness: float = 0.0
    max_steps: int = 10_000
    mode: str = "point_mass"

    query_type = "mixing_time"

    def __post_init__(self):
        object.__setattr__(self, "source", int(self.source))
        object.__setattr__(self, "epsilon", float(self.epsilon))
        object.__setattr__(self, "laziness", float(self.laziness))
        object.__setattr__(self, "max_steps", int(self.max_steps))
        if not 0.0 < self.epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {self.epsilon}"
            )
        _check_query_mode(self.mode, self.laziness)
        if self.mode == "uniform_start":
            object.__setattr__(self, "source", -1)

    @property
    def operator_kind(self) -> str:
        return f"plain:{self.laziness!r}"

    def bucket(self) -> Tuple:
        """Coalescing bucket: queries differing only in source merge."""
        return (
            self.query_type,
            self.dataset,
            self.laziness,
            self.epsilon,
            self.max_steps,
            self.mode,
        )

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        # The default mode keeps its historical fingerprint (cache
        # entries survive the vocabulary extension); non-default modes
        # answer a different question and key separately.
        extra = {} if self.mode == "point_mass" else {"mode": self.mode}
        return query_fingerprint(
            self.query_type,
            graph_key,
            self.operator_kind,
            source=self.source,
            epsilon=self.epsilon,
            max_steps=self.max_steps,
            **extra,
        )


@dataclass(frozen=True)
class VariationCurveQuery:
    """Variation-distance curve(s): ``||pi - pi^(s) P^w||_1`` over ``w`` grid.

    ``mode`` selects the estimator exactly as on
    :class:`MixingTimeQuery`; ``uniform_start`` ignores ``sources``
    (normalised to ``(-1,)``) and returns the single uniform-start
    curve.
    """

    dataset: str
    sources: Tuple[int, ...]
    walk_lengths: Tuple[int, ...]
    laziness: float = 0.0
    mode: str = "point_mass"

    query_type = "variation_curve"

    def __post_init__(self):
        object.__setattr__(self, "sources", _as_source_tuple(self.sources))
        walks = tuple(int(w) for w in self.walk_lengths)
        if not walks:
            raise ConfigurationError("walk_lengths must be non-empty")
        object.__setattr__(self, "walk_lengths", walks)
        object.__setattr__(self, "laziness", float(self.laziness))
        _check_query_mode(self.mode, self.laziness)
        if self.mode == "uniform_start":
            object.__setattr__(self, "sources", (-1,))

    @property
    def operator_kind(self) -> str:
        return f"plain:{self.laziness!r}"

    def bucket(self) -> Tuple:
        """Queries differing only in sources share one block sweep."""
        return (
            self.query_type,
            self.dataset,
            self.laziness,
            self.walk_lengths,
            self.mode,
        )

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        extra = {} if self.mode == "point_mass" else {"mode": self.mode}
        return query_fingerprint(
            self.query_type,
            graph_key,
            self.operator_kind,
            sources=list(self.sources),
            walk_lengths=list(self.walk_lengths),
            **extra,
        )


@dataclass(frozen=True)
class SlemQuery:
    """Second-largest eigenvalue modulus of the transition operator."""

    dataset: str
    method: str = "sparse"
    laziness: float = 0.0

    query_type = "slem"

    def __post_init__(self):
        object.__setattr__(self, "laziness", float(self.laziness))

    @property
    def operator_kind(self) -> str:
        return f"plain:{self.laziness!r}"

    def bucket(self) -> Tuple:
        return (self.query_type, self.dataset, self.laziness, self.method)

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        return query_fingerprint(
            self.query_type, graph_key, self.operator_kind, method=self.method
        )


@dataclass(frozen=True)
class AdmissionQuery:
    """SybilLimit verdict for ``suspects`` at route length ``route_length``.

    Deliberately *not* coalescible: the balance condition makes the
    verdict a function of the whole suspect set and its order, so the
    only honest answer is the one computed for exactly this set.

    ``attack_strategy`` plants an adversary before verifying: the
    dataset graph becomes the honest region of a
    :func:`repro.sybil.attacks.build_attack_scenario` scenario with
    ``num_sybil`` identities behind ``num_attack_edges`` attack edges
    (deterministic in ``attack_seed``).  Sybil suspect ids live at
    ``n_honest .. n_honest + num_sybil - 1``.  The default (no strategy)
    keeps the historical no-attacker semantics *and* fingerprint, so
    existing cache entries survive the vocabulary extension.
    """

    dataset: str
    suspects: Tuple[int, ...]
    route_length: int
    verifier: int = 0
    seed: int = 0
    num_instances: Optional[int] = None
    attack_strategy: Optional[str] = None
    num_sybil: int = 0
    num_attack_edges: int = 0
    attack_seed: int = 0

    query_type = "admission"

    def __post_init__(self):
        object.__setattr__(self, "suspects", _as_source_tuple(self.suspects))
        object.__setattr__(self, "route_length", int(self.route_length))
        object.__setattr__(self, "verifier", int(self.verifier))
        object.__setattr__(self, "seed", int(self.seed))
        if self.num_instances is not None:
            object.__setattr__(self, "num_instances", int(self.num_instances))
        object.__setattr__(self, "num_sybil", int(self.num_sybil))
        object.__setattr__(self, "num_attack_edges", int(self.num_attack_edges))
        object.__setattr__(self, "attack_seed", int(self.attack_seed))
        if self.route_length < 1:
            raise ConfigurationError(
                f"route_length must be >= 1, got {self.route_length}"
            )
        if self.attack_strategy is None:
            if self.num_sybil != 0 or self.num_attack_edges != 0:
                raise ConfigurationError(
                    "num_sybil/num_attack_edges need attack_strategy set"
                )
        else:
            from ..sybil.attacks import available_attack_strategies

            if self.attack_strategy not in available_attack_strategies():
                raise ConfigurationError(
                    f"unknown attack strategy {self.attack_strategy!r}; "
                    f"available: {', '.join(available_attack_strategies())}"
                )
            if self.num_attack_edges < 0:
                raise ConfigurationError("num_attack_edges must be nonnegative")
            if self.num_attack_edges > 0 and self.num_sybil < 2:
                raise ConfigurationError(
                    "an attack needs a sybil region of at least 2 nodes"
                )

    @property
    def operator_kind(self) -> str:
        return "sybillimit"

    def bucket(self) -> Tuple:
        # Unique per query object: admission never merges with anything.
        return (self.query_type, id(self))

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        # No-attack queries keep their historical key; attack queries
        # answer a different question and key separately.
        extra = (
            {}
            if self.attack_strategy is None
            else {
                "attack_strategy": self.attack_strategy,
                "num_sybil": self.num_sybil,
                "num_attack_edges": self.num_attack_edges,
                "attack_seed": self.attack_seed,
            }
        )
        return query_fingerprint(
            self.query_type,
            graph_key,
            self.operator_kind,
            suspects=list(self.suspects),
            route_length=self.route_length,
            verifier=self.verifier,
            seed=self.seed,
            num_instances=-1 if self.num_instances is None else self.num_instances,
            **extra,
        )


def _as_times_tuple(times) -> Optional[Tuple[int, ...]]:
    if times is None:
        return None
    out = tuple(int(t) for t in times)
    if not out:
        raise ConfigurationError("times must be non-empty when given")
    if any(b <= a for a, b in zip(out, out[1:])):
        raise ConfigurationError("times must be strictly increasing")
    return out


@dataclass(frozen=True)
class MixingTrendQuery:
    """TVD curves across a temporal dataset's windows (fig3-over-time).

    ``times=None`` measures every state boundary of the stream; an
    explicit tuple restricts the sweep.  Sources are sampled once from
    the first window (``num_sources``/``seed``) and reused on every
    window, so drift is attributable to the graph.  Trend queries are
    answered against the engine's live temporal graph and keyed on its
    :attr:`~repro.graph.temporal.TemporalGraph.version`, never coalesced.
    """

    dataset: str
    walk_lengths: Tuple[int, ...]
    num_sources: int = 25
    seed: int = 0
    times: Optional[Tuple[int, ...]] = None
    laziness: float = 0.0

    query_type = "mixing_trend"

    def __post_init__(self):
        walks = tuple(int(w) for w in self.walk_lengths)
        if not walks:
            raise ConfigurationError("walk_lengths must be non-empty")
        object.__setattr__(self, "walk_lengths", walks)
        object.__setattr__(self, "num_sources", int(self.num_sources))
        if self.num_sources < 1:
            raise ConfigurationError(
                f"num_sources must be >= 1, got {self.num_sources}"
            )
        object.__setattr__(self, "seed", int(self.seed))
        object.__setattr__(self, "times", _as_times_tuple(self.times))
        object.__setattr__(self, "laziness", float(self.laziness))

    @property
    def operator_kind(self) -> str:
        return f"plain:{self.laziness!r}"

    def bucket(self) -> Tuple:
        # Unique per query object: a trend is already one whole sweep.
        return (self.query_type, id(self))

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        # graph_key is TemporalGraph.version here (it covers the delta-log
        # head), so one append invalidates every trend entry it outdates.
        return query_fingerprint(
            self.query_type,
            graph_key,
            self.operator_kind,
            walk_lengths=list(self.walk_lengths),
            num_sources=self.num_sources,
            seed=self.seed,
            times=[] if self.times is None else list(self.times),
        )


@dataclass(frozen=True)
class SlemTrendQuery:
    """SLEM across a temporal dataset's windows, warm-started by default.

    ``warm=False`` forces a cold solve per window (the benchmark
    baseline).  Warm answers agree with cold within
    :data:`repro.core.incremental.WARM_SLEM_ATOL` but are not bit-equal,
    so ``warm`` participates in the cache key.
    """

    dataset: str
    times: Optional[Tuple[int, ...]] = None
    warm: bool = True

    query_type = "slem_trend"

    def __post_init__(self):
        object.__setattr__(self, "times", _as_times_tuple(self.times))
        object.__setattr__(self, "warm", bool(self.warm))

    @property
    def operator_kind(self) -> str:
        return "plain:0.0"

    def bucket(self) -> Tuple:
        return (self.query_type, id(self))

    def fingerprint(self, graph_key: str) -> str:
        from .keys import query_fingerprint

        return query_fingerprint(
            self.query_type,
            graph_key,
            self.operator_kind,
            times=[] if self.times is None else list(self.times),
            warm=int(self.warm),
        )


Query = Union[
    MixingTimeQuery,
    VariationCurveQuery,
    SlemQuery,
    AdmissionQuery,
    MixingTrendQuery,
    SlemTrendQuery,
]

#: Query types answered against the engine's temporal graphs.
_TREND_TYPES = ("mixing_trend", "slem_trend")


@dataclass(frozen=True)
class QueryResult:
    """One answered query, with serving provenance.

    ``value`` is the answer (bit-identical to serial batch computation
    regardless of ``cache_hit``/``coalesced``/worker count — pinned by
    tests); the remaining fields say *how* it was served.
    """

    value: Any
    fingerprint: str
    cache_hit: bool
    coalesced: bool
    batch_size: int
    latency_s: float
    #: Version of the graph state the answer was computed against: the
    #: base snapshot's content fingerprint for registry-served queries,
    #: :attr:`TemporalGraph.version` for trend queries.  Carried on the
    #: v2 wire schema; absent from v1 replies.
    graph_version: Optional[str] = None


class _Waiter:
    """One request parked in a coalescing bucket."""

    __slots__ = ("query", "key", "event", "value", "error", "batch_size")

    def __init__(self, query: Query, key: str) -> None:
        self.query = query
        self.key = key
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.batch_size = 0


class _Bucket:
    __slots__ = ("waiters", "flush", "claimed")

    def __init__(self) -> None:
        self.waiters: List[_Waiter] = []
        self.flush = threading.Event()
        self.claimed = False


class QueryEngine:
    """Long-lived query answering over a warm registry and result cache.

    Parameters
    ----------
    registry:
        Warm operator store; constructed with defaults when omitted.
    cache:
        Result cache; ``ResultCache(max_entries=0)`` disables caching.
    policy:
        :class:`~repro.core.runtime.ExecutionPolicy` applied to every
        sweep the engine runs.  Execution-only: answers are bit-identical
        at any worker count and under any *float64* SpMM backend, so the
        policy never enters a cache key — with one pinned exception: a
        reduced-precision backend (``float32``) changes the numbers, so
        its results key separately (a ``:float32`` suffix on the
        fingerprint) and never collide with float64 entries.
    coalesce_window:
        Seconds the bucket leader waits for co-batchable requests before
        flushing.  ``0`` disables coalescing (every request sweeps alone).
    max_batch:
        Queue depth that flushes a bucket early, bounding latency under
        load bursts.
    temporal_loader:
        ``name -> TemporalGraph`` used the first time a trend query or
        :meth:`append_delta` names a temporal dataset; defaults to
        :func:`repro.datasets.load_temporal_cached`.  The engine keeps a
        *private* journal per dataset (the loader's shared instance is
        never mutated), so appends in one engine cannot leak into
        another.
    """

    def __init__(
        self,
        registry: Optional[OperatorRegistry] = None,
        cache: Optional[ResultCache] = None,
        *,
        policy: Optional[ExecutionPolicy] = None,
        coalesce_window: float = 0.005,
        max_batch: int = 64,
        temporal_loader=None,
    ) -> None:
        coalesce_window = float(coalesce_window)
        if coalesce_window < 0:
            raise ConfigurationError(
                f"coalesce_window must be >= 0, got {coalesce_window}"
            )
        max_batch = int(max_batch)
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1, got {max_batch}")
        self.registry = registry if registry is not None else OperatorRegistry()
        self.cache = cache if cache is not None else ResultCache()
        self.policy = policy
        self.coalesce_window = coalesce_window
        self.max_batch = max_batch
        self._pending_lock = threading.Lock()
        self._pending: Dict[Tuple, _Bucket] = {}
        self._requests = 0
        self._coalesced_requests = 0
        self._stats_lock = threading.Lock()
        self._temporal_loader = temporal_loader
        self._temporal: Dict[str, Any] = {}
        self._temporal_appends = 0
        # Serialises trend answers with appends: a trend is computed
        # against exactly the version its cache key names.
        self._temporal_lock = threading.Lock()

    # -- convenience constructors ----------------------------------------
    def mixing_time(self, dataset, source, epsilon, **kwargs) -> QueryResult:
        return self.submit(MixingTimeQuery(dataset, source, epsilon, **kwargs))

    def variation_curve(self, dataset, sources, walk_lengths, **kwargs) -> QueryResult:
        return self.submit(
            VariationCurveQuery(dataset, tuple(sources), tuple(walk_lengths), **kwargs)
        )

    def slem(self, dataset, **kwargs) -> QueryResult:
        return self.submit(SlemQuery(dataset, **kwargs))

    def admission(self, dataset, suspects, route_length, **kwargs) -> QueryResult:
        return self.submit(
            AdmissionQuery(dataset, tuple(suspects), route_length, **kwargs)
        )

    def mixing_trend(self, dataset, walk_lengths, **kwargs) -> QueryResult:
        return self.submit(MixingTrendQuery(dataset, tuple(walk_lengths), **kwargs))

    def slem_trend(self, dataset, **kwargs) -> QueryResult:
        return self.submit(SlemTrendQuery(dataset, **kwargs))

    # -- the request path ------------------------------------------------
    def submit(self, query: Query) -> QueryResult:
        """Answer one query (cache hit, coalesced sweep, or direct sweep)."""
        start = time.perf_counter()
        with self._stats_lock:
            self._requests += 1
        with OBS.span(
            "service.request", query_type=query.query_type, dataset=query.dataset
        ):
            if query.query_type in _TREND_TYPES:
                return self._submit_trend(query, start)
            laziness = getattr(query, "laziness", 0.0)
            with self.registry.acquire(query.dataset, laziness=laziness) as lease:
                key = query.fingerprint(lease.graph_key)
                tag = self._numeric_tag()
                if tag is not None:
                    # Reduced-precision backends answer with different
                    # numbers; their cache entries key separately.
                    key = f"{key}:{tag}"
                cached = self.cache.get(key)
                if cached is not None:
                    if OBS.enabled:
                        OBS.add("service.cache.hits")
                    return self._finish(
                        cached, key, True, False, 1, start, query,
                        graph_version=lease.graph_key,
                    )
                if OBS.enabled:
                    OBS.add("service.cache.misses")
                if (
                    self.coalesce_window > 0
                    and query.query_type in ("mixing_time", "variation_curve")
                    and getattr(query, "mode", "point_mass") == "point_mass"
                ):
                    value, batch_size = self._submit_coalesced(query, key, lease)
                else:
                    value = self.cache.put(key, self._compute_direct(query, lease))
                    batch_size = 1
                return self._finish(
                    value, key, False, batch_size > 1, batch_size, start, query,
                    graph_version=lease.graph_key,
                )

    def _numeric_tag(self) -> Optional[str]:
        """Cache-key suffix for reduced-precision backends (else ``None``).

        Float64 backends are bit-identical to the numpy oracle, so they
        share cache entries exactly like worker counts do; float32 is
        the one knob that changes answers, and keying it separately is
        the pinned design choice (never serve float32 numbers to a
        float64 caller or vice versa).
        """
        if self.policy is None:
            return None
        from ..core.backends import backend_numeric

        numeric = backend_numeric(self.policy.backend)
        return None if numeric == "float64" else numeric

    def _finish(
        self, value, key, hit, coalesced, batch_size, start, query, *,
        graph_version=None,
    ):
        latency = time.perf_counter() - start
        if OBS.enabled:
            OBS.observe("service.request_seconds", latency)
            OBS.observe(f"service.{query.query_type}_seconds", latency)
        if coalesced:
            with self._stats_lock:
                self._coalesced_requests += 1
        return QueryResult(
            value=value,
            fingerprint=key,
            cache_hit=hit,
            coalesced=coalesced,
            batch_size=batch_size,
            latency_s=latency,
            graph_version=graph_version,
        )

    # -- temporal (trend) path -------------------------------------------
    def _temporal_locked(self, dataset: str):
        """The engine's private temporal graph for ``dataset`` (lock held).

        The loader's instance is copied via ``compact(base_time)`` — a
        zero-delta fold that shares the immutable base CSR and rebuilds
        the journal, so this engine's appends never mutate the (possibly
        process-wide memoised) loaded instance.  The copy's ``version``
        is identical to the original's.
        """
        temporal = self._temporal.get(dataset)
        if temporal is None:
            loader = self._temporal_loader
            if loader is None:
                from ..datasets import load_temporal_cached

                loader = load_temporal_cached
            loaded = loader(str(dataset))
            from ..graph.temporal import TemporalGraph

            if not isinstance(loaded, TemporalGraph):
                raise ConfigurationError(
                    f"temporal loader returned {type(loaded).__name__} for "
                    f"{dataset!r}; expected a TemporalGraph"
                )
            temporal = loaded.compact(loaded.base_time)
            self._temporal[dataset] = temporal
        return temporal

    def _submit_trend(self, query: Query, start: float) -> QueryResult:
        with self._temporal_lock:
            temporal = self._temporal_locked(query.dataset)
            version = temporal.version
            key = query.fingerprint(version)
            tag = self._numeric_tag()
            if tag is not None:
                key = f"{key}:{tag}"
            cached = self.cache.get(key)
            if cached is not None:
                if OBS.enabled:
                    OBS.add("service.cache.hits")
                return self._finish(
                    cached, key, True, False, 1, start, query,
                    graph_version=version,
                )
            if OBS.enabled:
                OBS.add("service.cache.misses")
            value = self.cache.put(key, self._compute_trend(query, temporal))
        return self._finish(
            value, key, False, False, 1, start, query, graph_version=version
        )

    def _compute_trend(self, query: Query, temporal) -> Any:
        from ..core.incremental import mixing_trend, slem_trend

        if query.query_type == "mixing_trend":
            trend = mixing_trend(
                temporal,
                list(query.walk_lengths),
                num_sources=query.num_sources,
                seed=query.seed,
                times=query.times,
                laziness=query.laziness,
                policy=self.policy,
            )
            return {
                "times": [int(t) for t in trend.times],
                "walk_lengths": [int(w) for w in trend.walk_lengths],
                "sources": [int(s) for s in trend.sources],
                "worst_case": trend.worst_case().tolist(),
                "average_case": trend.average_case().tolist(),
            }
        trend = slem_trend(
            temporal, times=query.times, warm=query.warm, policy=self.policy
        )
        return {
            "times": [int(t) for t in trend.times],
            "slem": trend.slem.tolist(),
            "lambda2": trend.lambda2.tolist(),
            "lambda_min": trend.lambda_min.tolist(),
            "warm_started": [bool(w) for w in trend.warm_started],
            "matvecs": [int(m) for m in trend.matvecs],
        }

    def append_delta(
        self, dataset, timestamp, insert=(), delete=(), *,
        expect_version: Optional[str] = None,
    ) -> str:
        """Append one edge delta to a temporal dataset; returns the new version.

        ``expect_version`` makes the append conditional (optimistic
        concurrency): when given and the dataset's current version
        differs, the append is refused with
        :class:`~repro.errors.ConfigurationError` and the journal is
        untouched.  Every append advances
        :attr:`~repro.graph.temporal.TemporalGraph.version`, so cached
        trend answers for the old state can no longer be served.
        """
        from ..graph.temporal import EdgeDelta

        delta = EdgeDelta(int(timestamp), insert=insert, delete=delete)
        with self._temporal_lock:
            temporal = self._temporal_locked(dataset)
            if expect_version is not None and temporal.version != expect_version:
                raise ConfigurationError(
                    f"graph_version mismatch for {dataset!r}: expected "
                    f"{expect_version}, current is {temporal.version}"
                )
            version = temporal.append(delta)
        with self._stats_lock:
            self._temporal_appends += 1
        if OBS.enabled:
            OBS.add("service.temporal.appends")
        return version

    # -- coalescing ------------------------------------------------------
    def _submit_coalesced(self, query: Query, key: str, lease) -> Tuple[Any, int]:
        bucket_key = query.bucket()
        waiter = _Waiter(query, key)
        with self._pending_lock:
            bucket = self._pending.get(bucket_key)
            if bucket is None or bucket.claimed:
                bucket = _Bucket()
                self._pending[bucket_key] = bucket
                leader = True
            else:
                leader = False
            bucket.waiters.append(waiter)
            if len(bucket.waiters) >= self.max_batch:
                bucket.flush.set()
        if not leader:
            waiter.event.wait()
            if waiter.error is not None:
                raise waiter.error
            return waiter.value, waiter.batch_size
        # Leader: give followers one window to pile in, then claim.
        bucket.flush.wait(self.coalesce_window)
        with self._pending_lock:
            bucket.claimed = True
            if self._pending.get(bucket_key) is bucket:
                del self._pending[bucket_key]
            waiters = list(bucket.waiters)
        try:
            self._execute_batch(waiters, lease)
        except BaseException as exc:
            for w in waiters:
                if not w.event.is_set():
                    w.error = exc
                    w.event.set()
        if waiter.error is not None:
            raise waiter.error
        return waiter.value, waiter.batch_size

    def _execute_batch(self, waiters: List["_Waiter"], lease) -> None:
        """One block sweep over the union of sources; scatter per-request.

        Bit-identity of the scattered rows to per-request serial sweeps
        is the PR-1 block-composition invariant; the coalescing-identity
        tests pin it end to end.
        """
        from ..core.mixing import measure_mixing

        queries = [w.query for w in waiters]
        head = queries[0]
        if OBS.enabled:
            OBS.observe("service.batch_size", len(waiters))
            if len(waiters) > 1:
                OBS.add("service.coalesced_sweeps")
        if head.query_type == "mixing_time":
            union = sorted({q.source for q in queries})
            index = {s: i for i, s in enumerate(union)}
            hit = lease.operator.hitting_times(
                union,
                head.epsilon,
                max_steps=head.max_steps,
                policy=self.policy,
            )
            for w in waiters:
                i = index[w.query.source]
                w.value = self.cache.put(
                    w.key,
                    {
                        "source": int(w.query.source),
                        "time": int(hit.times[i]),
                        "final_distance": float(hit.final_distances[i]),
                        "epsilon": float(head.epsilon),
                    },
                )
        else:  # variation_curve
            union = sorted({s for q in queries for s in q.sources})
            index = {s: i for i, s in enumerate(union)}
            mixing = measure_mixing(
                lease.graph,
                list(head.walk_lengths),
                sources=union,
                laziness=head.laziness,
                operator=lease.operator,
                policy=self.policy,
            )
            for w in waiters:
                rows = [index[s] for s in w.query.sources]
                w.value = self.cache.put(w.key, mixing.distances[rows, :])
        for w in waiters:
            w.batch_size = len(waiters)
            w.event.set()

    # -- direct (non-coalesced) computation ------------------------------
    def _compute_direct(self, query: Query, lease) -> Any:
        from ..core.mixing import measure_mixing

        if query.query_type == "mixing_time":
            mode = getattr(query, "mode", "point_mass")
            if mode == "uniform_start":
                n = lease.operator.num_states
                uniform = np.full((1, n), 1.0 / n, dtype=np.float64)
                hit = lease.operator.distribution_hitting_times(
                    uniform,
                    query.epsilon,
                    max_steps=query.max_steps,
                    policy=self.policy,
                )
            elif mode == "non_backtracking":
                from ..core.nonbacktracking import non_backtracking_hitting_times

                hit = non_backtracking_hitting_times(
                    lease.graph,
                    [query.source],
                    query.epsilon,
                    max_steps=query.max_steps,
                    operator=_warm_nonbacktracking(lease.graph),
                    policy=self.policy,
                )
            else:
                hit = lease.operator.hitting_times(
                    [query.source],
                    query.epsilon,
                    max_steps=query.max_steps,
                    policy=self.policy,
                )
            result = {
                "source": int(query.source),
                "time": int(hit.times[0]),
                "final_distance": float(hit.final_distances[0]),
                "epsilon": float(query.epsilon),
            }
            if mode != "point_mass":
                result["mode"] = mode
            return result
        if query.query_type == "variation_curve":
            mode = getattr(query, "mode", "point_mass")
            mixing = measure_mixing(
                lease.graph,
                list(query.walk_lengths),
                sources=None if mode == "uniform_start" else list(query.sources),
                laziness=query.laziness,
                operator=(
                    _warm_nonbacktracking(lease.graph)
                    if mode == "non_backtracking"
                    else lease.operator
                ),
                policy=self.policy,
                mode=mode,
            )
            return mixing.distances
        if query.query_type == "slem":
            from ..core.spectral import slem

            return float(slem(lease.graph, method=query.method))
        if query.query_type == "admission":
            from ..sybil.scenario import no_attack_scenario
            from ..sybil.sybillimit import SybilLimit, SybilLimitParams

            if query.attack_strategy is not None and query.num_attack_edges > 0:
                from ..sybil.attacks import build_attack_scenario

                scenario = build_attack_scenario(
                    lease.graph,
                    query.attack_strategy,
                    num_sybil=query.num_sybil,
                    num_attack_edges=query.num_attack_edges,
                    seed=query.attack_seed,
                )
            else:
                scenario = no_attack_scenario(lease.graph)
            params = SybilLimitParams(
                route_length=query.route_length,
                num_instances=query.num_instances,
            )
            protocol = SybilLimit(scenario, params, seed=query.seed)
            outcome = protocol.admission_sweep(
                query.verifier,
                [query.route_length],
                suspects=list(query.suspects),
                seed=query.seed,
                policy=self.policy,
            )[0]
            result = {
                "verifier": int(outcome.verifier),
                "suspects": [int(s) for s in outcome.suspects],
                "accepted": [bool(a) for a in outcome.accepted],
                "intersected": [bool(i) for i in outcome.intersected],
                "route_length": int(outcome.route_length),
                "num_instances": int(outcome.num_instances),
                "admission_rate": float(outcome.admission_rate),
            }
            if query.attack_strategy is not None:
                from ..sybil.metrics import evaluate_admission

                metrics = evaluate_admission(
                    scenario, np.asarray(outcome.suspects), outcome.accepted
                )
                result["attack"] = {
                    "strategy": query.attack_strategy,
                    "num_sybil": int(scenario.num_sybil),
                    "num_attack_edges": int(scenario.num_attack_edges),
                    "honest_accepted": int(metrics.honest_accepted),
                    "honest_total": int(metrics.honest_total),
                    "sybil_accepted": int(metrics.sybil_accepted),
                    "sybil_total": int(metrics.sybil_total),
                }
            return result
        raise ConfigurationError(f"unknown query type {query.query_type!r}")

    # -- introspection ---------------------------------------------------
    def stats(self) -> dict:
        with self._stats_lock:
            requests = self._requests
            coalesced = self._coalesced_requests
            appends = self._temporal_appends
        with self._temporal_lock:
            temporal_versions = {
                name: t.version for name, t in self._temporal.items()
            }
        return {
            "requests": requests,
            "coalesced_requests": coalesced,
            "cache": self.cache.stats(),
            "registry": self.registry.stats(),
            "temporal": {
                "datasets": temporal_versions,
                "appends": appends,
            },
        }

    def close(self) -> None:
        """Retire the warm registry (unlinking its shared segments)."""
        self.registry.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
