"""Stdlib-only HTTP front-end for the query engine.

A :class:`ServiceServer` wraps one :class:`~repro.service.engine.QueryEngine`
behind ``http.server.ThreadingHTTPServer`` — one OS thread per in-flight
request, which is exactly what the engine's leader-based coalescing
expects: concurrent requests park in buckets while a leader runs the
merged sweep.  No third-party framework, no event loop; the endpoint is

* ``POST /query`` — one wire-format query (v1 or the versioned v2
  schema; see :func:`repro.service.client.answer_payload`), answered
  with the wire-format result.
* ``GET /stats`` — engine / cache / registry counters.
* ``GET /health`` — liveness probe.

Errors map to transport codes: malformed requests and unknown datasets
are 400 (:class:`~repro.errors.ReproError` subclasses carry the message),
anything else is 500 — the server never dies on a bad request.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from ..errors import ReproError
from ..obs import OBS
from .client import answer_payload
from .engine import QueryEngine

__all__ = ["ServiceServer"]

#: Cap on request bodies; a query payload is tiny, so anything larger
#: is a client bug (or abuse), not a workload.
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    # Set per-server via the factory in ServiceServer.__init__.
    engine: QueryEngine = None

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging goes through OBS spans, not stderr

    # -- plumbing --------------------------------------------------------
    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ReproError("request body required")
        if length > _MAX_BODY_BYTES:
            raise ReproError(f"request body exceeds {_MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc

    # -- routes ----------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib naming
        if self.path == "/health":
            self._reply(200, {"status": "ok"})
        elif self.path == "/stats":
            self._reply(200, _jsonable(self.engine.stats()))
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self):  # noqa: N802 - stdlib naming
        if self.path != "/query":
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_body()
            # answer_payload handles schema negotiation (v1 vs v2), so
            # both front-ends speak exactly the same wire contract.
            reply = answer_payload(self.engine, payload)
        except ReproError as exc:
            if OBS.enabled:
                OBS.add("service.http.bad_requests")
            self._reply(400, {"error": str(exc)})
            return
        except Exception as exc:  # keep serving after an internal failure
            if OBS.enabled:
                OBS.add("service.http.errors")
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self._reply(200, reply)


def _jsonable(value):
    """Best-effort conversion of stats payloads (dataclasses, numpy) to JSON."""
    from dataclasses import asdict, is_dataclass

    import numpy as np

    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


class ServiceServer:
    """Threaded HTTP server over one engine; runs in a daemon thread.

    ``port=0`` binds an ephemeral port (the default, right for tests);
    the bound address is available as :attr:`address` after
    :meth:`start`.  Use as a context manager for deterministic shutdown,
    which also closes the engine (unlinking warm segments) when
    ``own_engine`` is true.
    """

    def __init__(
        self,
        engine: QueryEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        own_engine: bool = False,
    ) -> None:
        self.engine = engine
        self._own_engine = bool(own_engine)
        handler = type("_BoundHandler", (_Handler,), {"engine": engine})
        self._server = ThreadingHTTPServer((host, int(port)), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "ServiceServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-service",
            daemon=True,
        )
        self._thread.start()
        if OBS.enabled:
            OBS.add("service.http.starts")
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop (the ``repro-mixing serve`` entry point)."""
        self._server.serve_forever()

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._own_engine:
            self.engine.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
