"""Content-addressed identities for service queries.

The result cache and the operator registry both key on *content*, never
on names: two datasets with identical CSR arrays share operators and
answers, and regenerating a dataset with a different recipe (same name,
different edges) can never serve stale numbers.  Both builders reuse the
type-tagged sha256 machinery of
:func:`repro.core.runtime.sweep_fingerprint` (PR 5), extended here to
the query dimension: a cache key covers the graph content, the operator
kind and its dynamics knobs, the query type, and every query parameter
(ε, walk lengths, sources, seeds) — and deliberately **excludes** every
execution knob (workers, block size, coalescing window, and any
*float64* SpMM backend), to which all answers are pinned bit-for-bit
invariant.  The one execution knob that is not answer-neutral —
a reduced-precision backend — is handled by the engine suffixing the
finished key (``...:float32``), so float32 answers key separately
without perturbing any float64 fingerprint.
"""

from __future__ import annotations

from ..core.runtime import sweep_fingerprint

__all__ = ["graph_fingerprint", "query_fingerprint"]


def graph_fingerprint(graph) -> str:
    """Content-addressed identity of a graph's CSR structure.

    Memoised on the graph instance (via ``Graph._memo`` where available)
    because the service fingerprints the same warm graph on every
    request; the hash itself covers ``indptr`` + ``indices`` only —
    exactly the arrays every operator in the package is built from.
    """
    memo = getattr(graph, "_memo", None)
    if memo is not None:
        cached = memo.get("graph_fingerprint")
        if cached is not None:
            return cached
    digest = sweep_fingerprint("service.graph", graph.indptr, graph.indices)
    if memo is not None:
        memo["graph_fingerprint"] = digest
    return digest


def query_fingerprint(query_type: str, graph_key: str, operator_kind: str, **params) -> str:
    """Cache key of one service query.

    ``query_type`` names the request shape (``"mixing_time"``,
    ``"variation_curve"``, ``"slem"``, ``"admission"``), ``graph_key``
    is a :func:`graph_fingerprint`, ``operator_kind`` identifies the
    operator flavour plus its dynamics (e.g. ``"plain:0.0"`` for the
    simple walk at laziness 0).  Keyword parameters are hashed in sorted
    name order with the same type-tagged encoding as
    :func:`~repro.core.runtime.sweep_fingerprint`, so key equality is
    exactly content equality — never dict-ordering luck.
    """
    parts = []
    for name in sorted(params):
        parts.append(name)
        parts.append(params[name])
    return sweep_fingerprint(
        f"service.query.{query_type}", str(graph_key), str(operator_kind), parts
    )
