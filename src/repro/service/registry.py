"""Warm operator registry: build once, serve many requests.

A batch run pays operator construction (connectivity + bipartiteness
checks, CSR normalisation — ``O(m)``), stationary computation and, for
parallel sweeps, shared-memory publication *per invocation*.  A service
cannot: at interactive latencies those costs dominate the actual sweep.
The registry amortises all three:

* **Construction** happens once per ``(graph content, operator kind,
  laziness)`` and the operator (with its memoised ``stationary()``) is
  reused by every later request.
* **Publication** reuses PR-2 :func:`repro.core.parallel.publish_operator`
  but pins the segment via
  :func:`repro.core.parallel.pin_published_operator`, so parallel sweeps
  attach to the *same* warm segment instead of republishing per call —
  the registry-aware lifecycle hook added to the parallel layer for this
  PR.
* **Lifecycle** is ref-counted: :meth:`OperatorRegistry.acquire` returns
  an :class:`OperatorLease` (a context manager) that pins the entry for
  the duration of a request; LRU eviction only ever retires entries with
  zero live leases, and eviction/:meth:`OperatorRegistry.close` unpin
  and **unlink** the shared segment explicitly — warm state never
  outlives the registry.

Thread-safety: one re-entrant lock guards the table; operator
construction happens outside the lock (slow) with a per-key build latch
so concurrent first requests build once, not N times.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..obs import OBS
from .keys import graph_fingerprint

__all__ = ["OperatorLease", "OperatorRegistry"]

#: Operator flavours the registry knows how to construct.
_OPERATOR_KINDS = ("plain",)


class _Entry:
    """One warm operator plus its lifecycle state."""

    __slots__ = (
        "key",
        "dataset",
        "graph",
        "graph_key",
        "operator",
        "stationary",
        "handle",
        "refs",
        "last_used",
        "hits",
    )

    def __init__(self, key, dataset, graph, graph_key, operator, stationary, handle):
        self.key = key
        self.dataset = dataset
        self.graph = graph
        self.graph_key = graph_key
        self.operator = operator
        self.stationary = stationary
        self.handle = handle
        self.refs = 0
        self.last_used = time.monotonic()
        self.hits = 0


class OperatorLease:
    """A ref-counted checkout of one warm operator.

    Use as a context manager (or call :meth:`release` explicitly); while
    held, the entry cannot be evicted.  Exposes the warm ``graph``,
    ``operator``, its memoised ``stationary`` vector and the
    content-addressed ``graph_key`` requests build cache keys from.
    """

    __slots__ = ("_registry", "_entry", "_released")

    def __init__(self, registry: "OperatorRegistry", entry: _Entry) -> None:
        self._registry = registry
        self._entry = entry
        self._released = False

    @property
    def dataset(self) -> str:
        return self._entry.dataset

    @property
    def graph(self):
        return self._entry.graph

    @property
    def graph_key(self) -> str:
        return self._entry.graph_key

    @property
    def operator(self):
        return self._entry.operator

    @property
    def stationary(self):
        return self._entry.stationary

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry._release(self._entry)

    def __enter__(self) -> "OperatorLease":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class OperatorRegistry:
    """Keeps operators (and their shared-memory segments) warm across requests.

    Parameters
    ----------
    capacity:
        Maximum number of warm entries; inserting past it evicts the
        least-recently-used entry with no live leases (entries pinned by
        a lease are never evicted — the table may transiently exceed
        ``capacity`` while every entry is leased).
    loader:
        ``name -> Graph`` used for cache-miss construction; defaults to
        :func:`repro.datasets.load_cached` so dataset names resolve
        through the standard registry.  Any callable works — tests pass
        closures over ad-hoc graphs.
    publish:
        When true (default), each entry's operator is published to a
        warm shared-memory segment on first build (where the parallel
        backend exists), so multi-worker sweeps attach instead of
        republishing per request.
    """

    def __init__(
        self,
        capacity: int = 8,
        *,
        loader: Optional[Callable[[str], object]] = None,
        publish: bool = True,
    ) -> None:
        capacity = int(capacity)
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if loader is None:
            from ..datasets import load_cached

            loader = load_cached
        self.capacity = capacity
        self._loader = loader
        self._publish = bool(publish)
        self._lock = threading.RLock()
        self._entries: Dict[Tuple, _Entry] = {}
        self._building: Dict[Tuple, threading.Event] = {}
        self._hits = 0
        self._builds = 0
        self._evictions = 0
        self._closed = False

    # ------------------------------------------------------------------
    def acquire(
        self, dataset: str, *, kind: str = "plain", laziness: float = 0.0
    ) -> OperatorLease:
        """Lease the warm operator for ``dataset`` (building it if cold).

        ``kind`` selects the operator flavour (``"plain"`` — the simple
        random walk the paper measures); ``laziness`` is forwarded to
        the operator constructor and participates in the entry key.
        """
        if kind not in _OPERATOR_KINDS:
            raise ConfigurationError(
                f"unknown operator kind {kind!r}; expected one of {_OPERATOR_KINDS}"
            )
        key = (str(dataset), kind, float(laziness))
        while True:
            with self._lock:
                if self._closed:
                    raise RuntimeError("registry is closed")
                entry = self._entries.get(key)
                if entry is not None:
                    entry.refs += 1
                    entry.last_used = time.monotonic()
                    entry.hits += 1
                    self._hits += 1
                    if OBS.enabled:
                        OBS.add("service.registry.hits")
                    return OperatorLease(self, entry)
                latch = self._building.get(key)
                if latch is None:
                    latch = threading.Event()
                    self._building[key] = latch
                    break  # this thread builds
            latch.wait()  # someone else is building; retry the lookup
        try:
            entry = self._build(key)
        except BaseException:
            with self._lock:
                self._building.pop(key, None)
            latch.set()
            raise
        with self._lock:
            self._entries[key] = entry
            entry.refs += 1
            self._builds += 1
            self._building.pop(key, None)
            self._evict_over_capacity()
        latch.set()
        return OperatorLease(self, entry)

    # ------------------------------------------------------------------
    def _build(self, key: Tuple) -> _Entry:
        """Cold-path construction (outside the table lock)."""
        from ..core.walks import TransitionOperator

        dataset, _kind, laziness = key
        build_start = time.perf_counter()
        with OBS.span("service.registry.build", dataset=dataset, laziness=laziness):
            graph = self._loader(dataset)
            operator = TransitionOperator(graph, laziness=laziness)
            stationary = operator.stationary()
            handle = None
            if self._publish:
                from ..core.parallel import pin_published_operator

                handle = pin_published_operator(operator, stationary)
        if OBS.enabled:
            OBS.add("service.registry.builds")
            OBS.observe(
                "service.registry.build_seconds", time.perf_counter() - build_start
            )
        return _Entry(
            key,
            dataset,
            graph,
            graph_fingerprint(graph),
            operator,
            stationary,
            handle,
        )

    def _release(self, entry: _Entry) -> None:
        with self._lock:
            entry.refs = max(0, entry.refs - 1)
            entry.last_used = time.monotonic()
            self._evict_over_capacity()

    def _evict_over_capacity(self) -> None:
        """Retire LRU zero-ref entries until the table fits (lock held)."""
        while len(self._entries) > self.capacity:
            candidates = [e for e in self._entries.values() if e.refs == 0]
            if not candidates:
                return  # every entry is leased; retry on next release
            victim = min(candidates, key=lambda e: e.last_used)
            self._entries.pop(victim.key, None)
            self._evictions += 1
            if OBS.enabled:
                OBS.add("service.registry.evictions")
            self._retire(victim)

    def _retire(self, entry: _Entry) -> None:
        """Unpin and unlink one entry's warm segment."""
        if entry.handle is not None:
            from ..core.parallel import unpin_published_operator

            unpin_published_operator(entry.operator)
            entry.handle = None

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self._hits,
                "builds": self._builds,
                "evictions": self._evictions,
                "leased": sum(1 for e in self._entries.values() if e.refs > 0),
                "published": sum(
                    1 for e in self._entries.values() if e.handle is not None
                ),
            }

    def close(self) -> None:
        """Retire every entry and unlink every warm segment.

        Idempotent; the registry refuses new leases afterwards.  Live
        leases keep their (already-built) operators usable — only the
        shared segments and the warm table go away.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            self._retire(entry)

    def __enter__(self) -> "OperatorRegistry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
