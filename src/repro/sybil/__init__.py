"""Social-network Sybil defenses and the attack scenario model."""

from .scenario import (
    SybilScenario,
    attach_sybil_region,
    no_attack_scenario,
    random_sybil_region,
)
from .attacks import (
    ATTACHMENTS,
    REGION_TOPOLOGIES,
    AttackStrategy,
    attack_edge_order,
    available_attack_strategies,
    build_attack_scenario,
    get_attack_strategy,
    register_attack_strategy,
    sybil_region_topology,
)
from .routes import RouteInstances, arc_sources, reverse_slots
from .sybilguard import SybilGuard, SybilGuardOutcome, recommended_route_length
from .sybillimit import (
    SybilLimit,
    SybilLimitOutcome,
    SybilLimitParams,
    default_num_instances,
)
from .sybilinfer import SybilInfer, SybilInferParams, SybilInferResult, generate_traces
from .sumup import (
    SumUpOutcome,
    SumUpParams,
    sumup_admission,
    sumup_collect_votes,
    ticket_capacities,
)
from .sybilrank import (
    SybilRankResult,
    ranking_quality,
    recommended_iterations,
    sybilrank,
)
from .whanau import (
    WhanauLookupStats,
    WhanauTables,
    build_whanau,
    lookup_success_rate,
)
from .maxflow import FlowNetwork
from .metrics import (
    AdmissionMetrics,
    escape_probability,
    evaluate_admission,
    sybil_bound_per_attack_edge,
)

__all__ = [
    "SybilScenario",
    "attach_sybil_region",
    "no_attack_scenario",
    "random_sybil_region",
    "ATTACHMENTS",
    "REGION_TOPOLOGIES",
    "AttackStrategy",
    "attack_edge_order",
    "available_attack_strategies",
    "build_attack_scenario",
    "get_attack_strategy",
    "register_attack_strategy",
    "sybil_region_topology",
    "RouteInstances",
    "arc_sources",
    "reverse_slots",
    "SybilGuard",
    "SybilGuardOutcome",
    "recommended_route_length",
    "SybilLimit",
    "SybilLimitOutcome",
    "SybilLimitParams",
    "default_num_instances",
    "SybilInfer",
    "SybilInferParams",
    "SybilInferResult",
    "generate_traces",
    "SumUpOutcome",
    "SumUpParams",
    "sumup_admission",
    "sumup_collect_votes",
    "ticket_capacities",
    "SybilRankResult",
    "ranking_quality",
    "recommended_iterations",
    "sybilrank",
    "WhanauLookupStats",
    "WhanauTables",
    "build_whanau",
    "lookup_success_rate",
    "FlowNetwork",
    "AdmissionMetrics",
    "escape_probability",
    "evaluate_admission",
    "sybil_bound_per_attack_edge",
]
