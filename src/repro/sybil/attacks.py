"""Parameterised Sybil attacker strategies (Section 5 threat model).

The scenario layer (:mod:`repro.sybil.scenario`) fixes *what* an attack
looks like — honest region, sybil region, ``g`` attack edges.  This
module fixes *who the attacker is*: a registered, named
:class:`AttackStrategy` combining

* an **attachment policy** — which honest nodes receive attack edges:

  - ``"random"`` — uniformly random distinct victims (the baseline the
    defenses analyse),
  - ``"targeted"`` — highest-degree honest nodes first (celebrity
    befriending; maximises the chance a verifier's walks cross early),
  - ``"seam"`` — nodes on the honest region's sparsest community
    boundary (the paper's point weaponised: attack edges planted where
    the honest graph *already* mixes slowly are hardest to distinguish
    from an honest community);

* a **region topology** — the internal structure of the sybil region:

  - ``"dense"`` / ``"powerlaw"`` — the existing random regions,
  - ``"clique"`` — fully connected (fast internal mixing, maximal cost),
  - ``"tree"`` — minimal-edge hierarchy (random recursive tree, or a
    deterministic ``branching``-ary tree; a large branching factor
    degenerates to a star),
  - ``"expander"`` — random regular graph (fast mixing at minimal
    degree, the theoretically optimal cheap region),
  - ``"cluster_bomb"`` — many small cliques on a sparse ring (one
    planted community per clique, built to stress community-detection
    defenses).

Every builder is a deterministic seeded generator with two contracts the
metamorphic suite (tests/sybil/test_attacks.py) pins:

1. **g = 0 identity** — a zero attack-edge budget returns
   :func:`~repro.sybil.scenario.no_attack_scenario` bit-for-bit, for
   every strategy.
2. **Nested budgets** — at fixed seed, the attack edges of budget
   ``g1 < g2`` are exactly the first ``g1`` rows of budget ``g2``'s,
   and the sybil region is identical.  Sweeping ``g`` therefore moves
   along one growing attack, not across unrelated samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..errors import ScenarioError
from ..graph import Graph, add_edges, disjoint_union, is_connected
from ..obs import OBS
from .scenario import SybilScenario, no_attack_scenario, random_sybil_region

__all__ = [
    "ATTACHMENTS",
    "REGION_TOPOLOGIES",
    "AttackStrategy",
    "attack_edge_order",
    "available_attack_strategies",
    "build_attack_scenario",
    "get_attack_strategy",
    "register_attack_strategy",
    "sybil_region_topology",
]

ATTACHMENTS: Tuple[str, ...] = ("random", "targeted", "seam")
REGION_TOPOLOGIES: Tuple[str, ...] = (
    "dense",
    "powerlaw",
    "clique",
    "tree",
    "expander",
    "cluster_bomb",
)


@dataclass(frozen=True)
class AttackStrategy:
    """A named, validated attacker configuration.

    Attributes
    ----------
    name:
        Registry key (also the CLI/service spelling).
    attachment:
        One of :data:`ATTACHMENTS`.
    region:
        One of :data:`REGION_TOPOLOGIES`.
    branching:
        ``region="tree"`` only — ``None`` builds a random recursive
        tree; an integer builds the deterministic ``branching``-ary
        tree (``branching >= num_sybil - 1`` degenerates to a star).
    degree:
        ``region="expander"`` only — target regular degree (clamped to
        keep ``n * d`` even and ``d < n``).
    cluster_size:
        ``region="cluster_bomb"`` only — nodes per planted clique.
    """

    name: str
    attachment: str = "random"
    region: str = "dense"
    branching: Optional[int] = None
    degree: int = 4
    cluster_size: int = 8

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("attack strategy needs a non-empty name")
        if self.attachment not in ATTACHMENTS:
            raise ScenarioError(
                f"unknown attachment policy {self.attachment!r}; "
                f"choose from {', '.join(ATTACHMENTS)}"
            )
        if self.region not in REGION_TOPOLOGIES:
            raise ScenarioError(
                f"unknown sybil region topology {self.region!r}; "
                f"choose from {', '.join(REGION_TOPOLOGIES)}"
            )
        if self.branching is not None and self.branching < 1:
            raise ScenarioError("tree branching factor must be >= 1")
        if self.degree < 1:
            raise ScenarioError("expander degree must be >= 1")
        if self.cluster_size < 2:
            raise ScenarioError("cluster_bomb clusters need >= 2 nodes")


_STRATEGIES: Dict[str, AttackStrategy] = {}


def register_attack_strategy(strategy: AttackStrategy, *, replace: bool = False) -> AttackStrategy:
    """Add a strategy to the registry (``replace=False`` guards typos)."""
    if not isinstance(strategy, AttackStrategy):
        raise ScenarioError("register_attack_strategy expects an AttackStrategy")
    if strategy.name in _STRATEGIES and not replace:
        raise ScenarioError(
            f"attack strategy {strategy.name!r} already registered "
            "(pass replace=True to override)"
        )
    _STRATEGIES[strategy.name] = strategy
    return strategy


def available_attack_strategies() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_STRATEGIES))


def get_attack_strategy(name: str) -> AttackStrategy:
    """Look up a registered strategy by name."""
    try:
        return _STRATEGIES[name]
    except KeyError:
        raise ScenarioError(
            f"unknown attack strategy {name!r}; "
            f"available: {', '.join(available_attack_strategies())}"
        ) from None


# The canonical roster: every attachment policy and every region
# topology appears at least once, so "all strategies" sweeps exercise
# the full parameter surface.
register_attack_strategy(AttackStrategy("random", attachment="random", region="dense"))
register_attack_strategy(AttackStrategy("targeted", attachment="targeted", region="dense"))
register_attack_strategy(AttackStrategy("seam", attachment="seam", region="dense"))
register_attack_strategy(AttackStrategy("clique", attachment="random", region="clique"))
register_attack_strategy(AttackStrategy("tree", attachment="random", region="tree"))
register_attack_strategy(AttackStrategy("expander", attachment="random", region="expander"))
register_attack_strategy(AttackStrategy("powerlaw", attachment="random", region="powerlaw"))
register_attack_strategy(
    AttackStrategy("cluster-bomb", attachment="random", region="cluster_bomb")
)


# ----------------------------------------------------------------------
# Region topologies
# ----------------------------------------------------------------------
def _clique_region(num_sybil: int) -> Graph:
    rows, cols = np.triu_indices(num_sybil, k=1)
    return Graph.from_edges(np.stack([rows, cols], axis=1), num_nodes=num_sybil)


def _tree_region(num_sybil: int, branching: Optional[int], rng: np.random.Generator) -> Graph:
    children = np.arange(1, num_sybil, dtype=np.int64)
    if branching is None:
        # Random recursive tree: node i attaches to a uniform earlier node.
        parents = np.array(
            [int(rng.integers(i)) for i in range(1, num_sybil)], dtype=np.int64
        )
    else:
        parents = (children - 1) // int(branching)
    return Graph.from_edges(
        np.stack([parents, children], axis=1), num_nodes=num_sybil
    )


def _expander_region(num_sybil: int, degree: int, rng: np.random.Generator) -> Graph:
    from ..generators import random_regular

    d = min(int(degree), num_sybil - 1)
    if (num_sybil * d) % 2 != 0:
        d -= 1
    if d < 1:
        # Only reachable for tiny regions where no regular graph exists
        # (e.g. n=3 after clamping); a clique is the honest fallback.
        return _clique_region(num_sybil)
    # Stub-pairing repair occasionally leaves a disconnected 2-regular
    # graph; a disconnected region wastes sybil identities, so resample.
    for _ in range(32):
        graph = random_regular(num_sybil, d, seed=rng)
        if is_connected(graph):
            return graph
    raise ScenarioError(
        f"could not draw a connected {d}-regular sybil region of size {num_sybil}"
    )


def _cluster_bomb_region(num_sybil: int, cluster_size: int) -> Graph:
    # Balanced split into k = floor(n / size) cliques (k >= 1), linked in
    # a ring through each clique's first node.  Fully deterministic.
    num_clusters = max(1, num_sybil // int(cluster_size))
    base = num_sybil // num_clusters
    remainder = num_sybil % num_clusters
    edges = []
    anchors = []
    start = 0
    for i in range(num_clusters):
        size = base + (1 if i < remainder else 0)
        members = np.arange(start, start + size, dtype=np.int64)
        rows, cols = np.triu_indices(size, k=1)
        edges.append(np.stack([members[rows], members[cols]], axis=1))
        anchors.append(start)
        start += size
    if num_clusters == 2:
        edges.append(np.array([[anchors[0], anchors[1]]], dtype=np.int64))
    elif num_clusters > 2:
        ring = np.array(
            [
                [anchors[i], anchors[(i + 1) % num_clusters]]
                for i in range(num_clusters)
            ],
            dtype=np.int64,
        )
        edges.append(ring)
    return Graph.from_edges(np.concatenate(edges, axis=0), num_nodes=num_sybil)


def sybil_region_topology(
    strategy: AttackStrategy,
    num_sybil: int,
    *,
    seed=None,
) -> Graph:
    """Build the sybil region for a strategy (deterministic given seed)."""
    if num_sybil < 2:
        raise ScenarioError("sybil region needs at least 2 nodes")
    rng = np.random.default_rng(seed) if not isinstance(seed, np.random.Generator) else seed
    if strategy.region in ("dense", "powerlaw"):
        return random_sybil_region(num_sybil, style=strategy.region, seed=rng)
    if strategy.region == "clique":
        return _clique_region(num_sybil)
    if strategy.region == "tree":
        return _tree_region(num_sybil, strategy.branching, rng)
    if strategy.region == "expander":
        return _expander_region(num_sybil, strategy.degree, rng)
    if strategy.region == "cluster_bomb":
        return _cluster_bomb_region(num_sybil, strategy.cluster_size)
    raise ScenarioError(f"unknown sybil region topology {strategy.region!r}")


# ----------------------------------------------------------------------
# Attachment policies
# ----------------------------------------------------------------------
def attack_edge_order(
    honest: Graph,
    attachment: str,
    *,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """The honest-side victim ordering for an attachment policy.

    Attack edges take honest endpoints round-robin from this ordering,
    so the first ``g`` (distinct while ``g <= n``) victims of a budget
    ``g`` are a prefix of any larger budget's — the nested-budget
    contract the metamorphic tests rely on.
    """
    n = honest.num_nodes
    degrees = honest.degrees.astype(np.int64)
    if attachment == "random":
        if rng is None:
            rng = np.random.default_rng()
        return rng.permutation(n).astype(np.int64)
    if attachment == "targeted":
        # Highest degree first; ties broken by node id (stable sort).
        return np.argsort(-degrees, kind="stable").astype(np.int64)
    if attachment == "seam":
        from ..community import spectral_sweep_cut

        cut = spectral_sweep_cut(honest)
        side = np.zeros(n, dtype=bool)
        side[cut.side] = True
        edges = honest.edges()
        cross_counts = np.zeros(n, dtype=np.int64)
        if edges.size:
            crossing = side[edges[:, 0]] != side[edges[:, 1]]
            np.add.at(cross_counts, edges[crossing, 0], 1)
            np.add.at(cross_counts, edges[crossing, 1], 1)
        # Seam nodes (most boundary edges) first; interior nodes follow
        # in id order so budgets beyond the seam still resolve.
        return np.argsort(-cross_counts, kind="stable").astype(np.int64)
    raise ScenarioError(
        f"unknown attachment policy {attachment!r}; choose from {', '.join(ATTACHMENTS)}"
    )


def _sample_attack_edges(
    order: np.ndarray,
    num_honest: int,
    num_sybil: int,
    num_attack_edges: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``g`` *distinct* attack edges along the victim ordering.

    Candidates are generated in a deterministic sequence (round-robin
    honest endpoint x streamed sybil endpoint) and duplicates skipped,
    so a smaller budget's edges are a prefix of a larger one's.
    """
    pairs = []
    seen = set()
    attempts = 0
    limit = 64 * num_attack_edges + 1024
    i = 0
    while len(pairs) < num_attack_edges:
        if attempts >= limit:
            raise ScenarioError(
                f"could not place {num_attack_edges} distinct attack edges "
                f"({num_honest} honest x {num_sybil} sybil nodes)"
            )
        h = int(order[i % num_honest])
        s = int(rng.integers(num_sybil)) + num_honest
        i += 1
        attempts += 1
        if (h, s) in seen:
            continue
        seen.add((h, s))
        pairs.append((h, s))
    return np.array(pairs, dtype=np.int64)


# ----------------------------------------------------------------------
# Scenario builder
# ----------------------------------------------------------------------
def build_attack_scenario(
    honest: Graph,
    strategy: Union[str, AttackStrategy],
    *,
    num_sybil: int,
    num_attack_edges: int,
    seed: int = 0,
) -> SybilScenario:
    """Build a :class:`SybilScenario` from a named attacker strategy.

    Deterministic given ``seed``: the sybil region, the victim ordering
    and the sybil-side endpoints each draw from independent child
    streams of one :class:`numpy.random.SeedSequence`, so the region is
    *identical across attack-edge budgets* and budgets nest (see the
    module docstring).  ``num_attack_edges=0`` returns the no-attack
    baseline bit-for-bit, matching
    :func:`~repro.sybil.scenario.no_attack_scenario`.
    """
    if isinstance(strategy, str):
        strategy = get_attack_strategy(strategy)
    if honest.num_nodes < 2:
        raise ScenarioError("honest region needs at least 2 nodes")
    if not is_connected(honest):
        raise ScenarioError("honest region must be connected")
    if num_attack_edges < 0:
        raise ScenarioError("attack-edge budget must be nonnegative")
    if num_attack_edges == 0:
        return no_attack_scenario(honest)
    if num_sybil < 2:
        raise ScenarioError("sybil region needs at least 2 nodes")
    if num_attack_edges > honest.num_nodes * num_sybil:
        raise ScenarioError("more attack edges than honest-sybil pairs")

    with OBS.span(
        "sybil.attack.build",
        strategy=strategy.name,
        num_sybil=int(num_sybil),
        num_attack_edges=int(num_attack_edges),
    ):
        region_ss, order_ss, endpoint_ss = np.random.SeedSequence(int(seed)).spawn(3)
        region = sybil_region_topology(
            strategy, num_sybil, seed=np.random.default_rng(region_ss)
        )
        order = attack_edge_order(
            honest, strategy.attachment, rng=np.random.default_rng(order_ss)
        )
        attack = _sample_attack_edges(
            order,
            honest.num_nodes,
            num_sybil,
            num_attack_edges,
            np.random.default_rng(endpoint_ss),
        )
        combined = add_edges(disjoint_union(honest, region), attack)
        if OBS.enabled:
            OBS.add("sybil.attack.scenarios")
            OBS.add("sybil.attack.edges", int(num_attack_edges))
            OBS.add("sybil.attack.region_nodes", int(num_sybil))
    return SybilScenario(
        graph=combined, num_honest=honest.num_nodes, attack_edges=attack
    )
