"""Maximum flow (Dinic's algorithm) on small directed capacity networks.

SumUp's vote aggregation is a max-flow computation from voters to the
vote collector over a ticket-capacitated graph; this module provides the
solver.  It is deliberately self-contained (adjacency lists of residual
arcs) rather than reusing :class:`~repro.graph.Graph`, because flow
networks are directed, capacitated, and mutated during the computation —
none of which the immutable CSR graph models.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

__all__ = ["FlowNetwork"]


class FlowNetwork:
    """A directed flow network with integer/float capacities.

    Arcs are stored as a flat list; each arc keeps the index of its
    residual twin (``arc ^ 1``), the classic pairing trick.
    """

    def __init__(self, num_nodes: int):
        if num_nodes < 2:
            raise ValueError("a flow network needs at least two nodes")
        self._n = int(num_nodes)
        self._to: List[int] = []
        self._cap: List[float] = []
        self._head: List[List[int]] = [[] for _ in range(self._n)]

    @property
    def num_nodes(self) -> int:
        return self._n

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add arc u→v with the given capacity; returns the arc id.

        The residual reverse arc (capacity 0) is created automatically.
        """
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise IndexError("arc endpoint out of range")
        if capacity < 0:
            raise ValueError("capacity must be nonnegative")
        arc_id = len(self._to)
        self._to.extend((v, u))
        self._cap.extend((float(capacity), 0.0))
        self._head[u].append(arc_id)
        self._head[v].append(arc_id + 1)
        return arc_id

    def flow_on(self, arc_id: int) -> float:
        """Flow currently routed over an arc (its twin's residual)."""
        return self._cap[arc_id ^ 1]

    # ------------------------------------------------------------------
    def _bfs_levels(self, source: int, sink: int) -> Optional[List[int]]:
        level = [-1] * self._n
        level[source] = 0
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if self._cap[arc] > 1e-12 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _dfs_push(self, source: int, sink: int, level: List[int], it: List[int]) -> float:
        """One blocking-path push, implemented iteratively.

        An explicit stack of (node, arc-taken-to-get-here) avoids python's
        recursion limit on long augmenting paths.
        """
        path: List[int] = []  # arcs from source to the stack top
        u = source
        while True:
            if u == sink:
                bottleneck = min(self._cap[arc] for arc in path)
                for arc in path:
                    self._cap[arc] -= bottleneck
                    self._cap[arc ^ 1] += bottleneck
                return bottleneck
            advanced = False
            while it[u] < len(self._head[u]):
                arc = self._head[u][it[u]]
                v = self._to[arc]
                if self._cap[arc] > 1e-12 and level[v] == level[u] + 1:
                    path.append(arc)
                    u = v
                    advanced = True
                    break
                it[u] += 1
            if advanced:
                continue
            if not path:
                return 0.0
            # Dead end: retreat and retire the arc that led here.
            level[u] = -1  # no augmenting path through u in this phase
            arc = path.pop()
            u = self._to[arc ^ 1]
            it[u] += 1

    def max_flow(self, source: int, sink: int) -> float:
        """Dinic's algorithm: O(V²E) worst case, far better in practice."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0.0
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return total
            it = [0] * self._n
            while True:
                pushed = self._dfs_push(source, sink, level, it)
                if pushed <= 1e-12:
                    break
                total += pushed

    def min_cut_reachable(self, source: int) -> List[bool]:
        """After :meth:`max_flow`, the source side of a minimum cut."""
        seen = [False] * self._n
        seen[source] = True
        queue = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._head[u]:
                v = self._to[arc]
                if self._cap[arc] > 1e-12 and not seen[v]:
                    seen[v] = True
                    queue.append(v)
        return seen
