"""Evaluation metrics for Sybil defenses.

Section 2 criticises SybilGuard/SybilLimit for reporting only the false
acceptance rate "and not other characteristics, like the rejection rate
of honest nodes, which would be expected to increase with insufficient
walk lengths".  This module computes both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .scenario import SybilScenario

__all__ = [
    "AdmissionMetrics",
    "evaluate_admission",
    "sybil_bound_per_attack_edge",
    "escape_probability",
]


@dataclass(frozen=True)
class AdmissionMetrics:
    """Joint honest/sybil admission statistics for one verifier pass."""

    honest_total: int
    honest_accepted: int
    sybil_total: int
    sybil_accepted: int

    @property
    def honest_admission_rate(self) -> float:
        """Fraction of honest suspects admitted (the utility side)."""
        if self.honest_total == 0:
            return float("nan")
        return self.honest_accepted / self.honest_total

    @property
    def honest_rejection_rate(self) -> float:
        """1 - honest admission rate — the cost the paper highlights."""
        return 1.0 - self.honest_admission_rate

    @property
    def sybil_acceptance_rate(self) -> float:
        """Fraction of sybil identities admitted (the security side)."""
        if self.sybil_total == 0:
            return float("nan")
        return self.sybil_accepted / self.sybil_total

    def sybils_per_attack_edge(self, num_attack_edges: int) -> float:
        """Accepted sybils normalised by g (SybilLimit's guarantee unit)."""
        if num_attack_edges <= 0:
            return float("nan")
        return self.sybil_accepted / num_attack_edges


def evaluate_admission(
    scenario: SybilScenario,
    suspects: np.ndarray,
    accepted: np.ndarray,
) -> AdmissionMetrics:
    """Split a verifier's verdicts into honest/sybil statistics."""
    suspects = np.asarray(suspects, dtype=np.int64)
    accepted = np.asarray(accepted, dtype=bool)
    if suspects.shape != accepted.shape:
        raise ValueError("suspects and accepted must align")
    honest = suspects < scenario.num_honest
    return AdmissionMetrics(
        honest_total=int(honest.sum()),
        honest_accepted=int(accepted[honest].sum()),
        sybil_total=int((~honest).sum()),
        sybil_accepted=int(accepted[~honest].sum()),
    )


def escape_probability(
    scenario: SybilScenario,
    walk_lengths,
    *,
    sources=None,
) -> np.ndarray:
    """Exact probability that a length-w walk escapes into the sybil region.

    Section 5: "if one uses longer random walks in order to reach such
    isolated parts of the network it would be equally likely to escape to
    the Sybil region".  This computes the claim exactly by treating the
    sybil region as *absorbing*: evolve the honest-restricted distribution
    and track the mass that has crossed an attack edge by each step.

    Parameters
    ----------
    walk_lengths:
        Increasing nonnegative walk lengths to report.
    sources:
        Honest source nodes to average over (default: every honest node,
        weighted uniformly).

    Returns
    -------
    ``escape[j]`` — mean escape probability by ``walk_lengths[j]``.
    """
    from scipy.sparse import csr_matrix

    walk_lengths = np.asarray(list(walk_lengths), dtype=np.int64)
    if walk_lengths.size == 0 or np.any(walk_lengths < 0) or np.any(np.diff(walk_lengths) <= 0):
        raise ValueError("walk_lengths must be strictly increasing and nonnegative")
    if scenario.num_sybil == 0:
        return np.zeros(walk_lengths.size)
    graph = scenario.graph
    n_honest = scenario.num_honest
    degrees = graph.degrees.astype(np.float64)
    if np.any(degrees[:n_honest] == 0):
        raise ValueError("honest region contains isolated nodes")

    # Sub-stochastic transition matrix restricted to honest -> honest
    # moves; the per-step mass deficit is exactly the newly absorbed
    # (escaped) probability.
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    keep = (src < n_honest) & (graph.indices < n_honest)
    rows = src[keep]
    cols = graph.indices[keep]
    data = 1.0 / degrees[rows]
    sub = csr_matrix((data, (rows, cols)), shape=(n_honest, n_honest))

    if sources is None:
        x = np.full(n_honest, 1.0 / n_honest)
    else:
        sources = np.asarray(list(sources), dtype=np.int64)
        if np.any(sources < 0) or np.any(sources >= n_honest):
            raise ValueError("sources must be honest nodes")
        x = np.zeros(n_honest)
        x[sources] = 1.0 / sources.size

    out = np.empty(walk_lengths.size)
    col = 0
    max_len = int(walk_lengths[-1])
    for t in range(0, max_len + 1):
        if col < walk_lengths.size and walk_lengths[col] == t:
            out[col] = 1.0 - x.sum()
            col += 1
        if t < max_len:
            x = np.asarray(x @ sub).ravel()
    return out


def sybil_bound_per_attack_edge(route_length: int) -> float:
    """SybilLimit's per-attack-edge bound on accepted sybils.

    Each attack edge admits O(w) sybil tails (every route crossing it
    yields at most one tail per instance, and crossings per instance are
    bounded by the route length), so accepted sybils <= g * w — the
    ``t * g`` expression in Section 5.  The defense stays meaningful
    while g * w stays well under the honest population.
    """
    if route_length < 1:
        raise ValueError("route_length must be >= 1")
    return float(route_length)
