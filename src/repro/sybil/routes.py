"""Random routes — the core primitive of SybilGuard and SybilLimit.

A *random route* differs from a random walk: every node ``v`` fixes, per
protocol instance, one uniformly random permutation ``pi_v`` of its edge
slots.  A route entering ``v`` through its ``j``-th incident edge always
leaves through edge ``pi_v[j]``.  Two consequences drive the protocols:

* **Convergence** — routes entering a node through the same edge follow
  identical suffixes.
* **Back-traceability** — the route map is a bijection on directed edge
  slots, so routes never "merge then split".

Representation: a directed edge slot ``e`` is an index into the graph's
CSR ``indices`` array; slot ``e`` is the arc ``src(e) → indices[e]``.
The whole instance is one permutation array ``next_slot`` of length
``2m`` mapping each arc to the arc a route takes next.  Advancing every
route in the system one step is a single numpy gather.

Blocked execution
-----------------
SybilLimit needs ``r = r0·√m`` independent instances advanced ``w``
steps each.  Doing that one instance at a time costs ``r × w``
Python-level gathers; this module instead materialises instances in
memory-budgeted *blocks*: a block of ``b`` tables is flattened into one
offset array ``flat[i·2m + s] = i·2m + next_slot_i[s]`` so advancing
every route of every instance in the block one step is a **single**
gather, and a full tail sweep costs ``max(w)`` gathers per block instead
of ``r × max(w)`` interpreter iterations.  Tables themselves are built
by an exact drop-in replacement for ``np.lexsort`` (quicksort on the
random keys + 16-bit-radix stable sort on the slot sources) that is
several times faster at identical output.

Determinism contract: at a fixed seed, the blocked (and pool-parallel)
paths are **bit-for-bit identical** to the historical per-instance loop
— same per-instance ``SeedSequence`` children, same first-hop draws in
the same order, same tables.  ``tests/core/test_golden_values.py`` pins
raw tails on the golden graphs; ``tests/sybil/test_routes_parallel.py``
pins blocked == per-instance == pool output across block boundaries and
worker counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.runtime import ExecutionPolicy, as_policy
from ..errors import RouteError
from ..graph import Graph
from ..obs import OBS
from .._util import as_rng

__all__ = [
    "RouteInstances",
    "arc_sources",
    "resolve_route_block_size",
    "reverse_slots",
]

#: Memory budget for one block of flattened ``next_slot`` tables.  One
#: block row costs ``2m`` int64 (the table) — 32 MiB admits ~40 blocks
#: of facebook-sample-scale tables (2m ≈ 10⁵), enough to amortise the
#: per-step interpreter overhead without blowing the cache for the
#: positions array.
ROUTE_BLOCK_BYTES: int = 32 * 1024 * 1024


def _graph_memo(graph: Graph) -> Optional[dict]:
    """The graph's derived-array cache, or ``None`` for foreign objects."""
    return getattr(graph, "_memo", None)


def arc_sources(graph: Graph) -> np.ndarray:
    """``src[e]`` — the source node of each directed edge slot.

    Memoised on the (immutable) graph: SybilLimit builds ``r = Θ(√m)``
    instances over one graph, and recomputing the ``np.repeat`` for each
    of them — and again for every trajectory call — was pure waste.
    The returned array is read-only; treat it as a view.
    """
    memo = _graph_memo(graph)
    if memo is not None:
        cached = memo.get("arc_sources")
        if cached is not None:
            return cached
    src = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    src.setflags(write=False)
    if memo is not None:
        memo["arc_sources"] = src
    return src


def reverse_slots(graph: Graph) -> np.ndarray:
    """``rev[e]`` — the slot of the reverse arc of slot ``e`` (memoised).

    Slots are sorted by ``(src, dst)``; the reverse arc of ``e`` has key
    ``(dst, src)``, so its slot is the lexicographic rank of that pair.
    """
    memo = _graph_memo(graph)
    if memo is not None:
        cached = memo.get("reverse_slots")
        if cached is not None:
            return cached
    src = arc_sources(graph)
    dst = graph.indices
    order = np.lexsort((src, dst))  # arcs ordered by (dst, src)
    rev = np.empty(src.size, dtype=np.int64)
    rev[order] = np.arange(src.size, dtype=np.int64)
    rev.setflags(write=False)
    if memo is not None:
        memo["reverse_slots"] = rev
    return rev


def resolve_route_block_size(
    num_slots: int,
    num_instances: int,
    block_size: Optional[int] = None,
    *,
    memory_budget_bytes: int = ROUTE_BLOCK_BYTES,
) -> int:
    """Instances per route block.

    ``block_size=None`` sizes the block so the flattened ``next_slot``
    tables (``b`` rows of ``num_slots`` int64) stay under
    ``memory_budget_bytes``; explicit overrides are validated with the
    same rules as :func:`repro.core.operators.resolve_block_size`
    (non-positive / non-integral values raise) and the result is always
    clamped to ``[1, num_instances]``.
    """
    from ..core.operators import resolve_block_size

    rows = resolve_block_size(
        num_slots, block_size, memory_budget_bytes=memory_budget_bytes
    )
    return int(max(1, min(rows, max(int(num_instances), 1))))


# ----------------------------------------------------------------------
# Exact fast permutation kernel
# ----------------------------------------------------------------------
def _stable_node_argsort(nodes: np.ndarray, num_nodes: int) -> np.ndarray:
    """Stable argsort of a node-id array via 16-bit radix digit passes.

    numpy's ``kind="stable"`` argsort is an O(N) radix sort for integer
    dtypes of <= 16 bits; wider node ranges are handled by chaining
    stable passes over 16-bit digits, least-significant first — exactly
    the classical LSD radix sort, hence exactly a stable sort.
    """
    if num_nodes <= (1 << 16):
        return np.argsort(nodes.astype(np.uint16), kind="stable")
    order = np.argsort((nodes & 0xFFFF).astype(np.uint16), kind="stable")
    shift = 16
    while (int(num_nodes) - 1) >> shift:
        digit = ((nodes[order] >> shift) & 0xFFFF).astype(np.uint16)
        order = order[np.argsort(digit, kind="stable")]
        shift += 16
    return order


def _permutation_order(
    keys: np.ndarray, src: np.ndarray, num_nodes: int
) -> np.ndarray:
    """Exact, faster replacement for ``np.lexsort((keys, src))``.

    Fast path: because ``src`` holds integers and ``keys`` doubles in
    ``[0, 1)``, ordering by the single composite double ``src + keys``
    equals the lexicographic ``(src, keys)`` order whenever the sorted
    composites are pairwise distinct — the float addition is monotone,
    and node boundaries cannot interleave since ``src + keys < src + 1``
    while integers up to ``2**52`` are exact.  One quicksort of doubles
    therefore replaces lexsort's two mergesort passes.  Adjacent equal
    composites (rounding collisions or genuinely tied keys, probability
    ~2⁻⁴⁰ per pair) are detected after the sort and routed to the slow
    path: a stable argsort of the keys re-sorted stably by ``src``
    (16-bit-radix, :func:`_stable_node_argsort`), which is the textbook
    lexsort decomposition.  The output equals ``np.lexsort`` bit-for-bit
    in **all** cases, not just almost surely.
    """
    if num_nodes < (1 << 52):
        composite = src + keys  # float64: exact order iff no rounding ties
        order = np.argsort(composite)
        sorted_comp = composite[order]
        if sorted_comp.size <= 1 or not np.any(
            sorted_comp[1:] == sorted_comp[:-1]
        ):
            return order
    primary = np.argsort(keys, kind="stable")
    secondary = _stable_node_argsort(src[primary], num_nodes)
    return primary[secondary]


def build_instance_table(
    seed: np.random.SeedSequence,
    src: np.ndarray,
    rev: np.ndarray,
    num_nodes: int,
) -> np.ndarray:
    """One instance's ``next_slot`` permutation from its seed.

    Per-node permutations are drawn in one vectorised shot: random keys
    are assigned to every slot and slots are ordered by ``(node, key)``.
    The result enumerates each node's slots in a uniformly random order,
    and pairing the j-th CSR slot of a node with the j-th element of
    that ordering is exactly a uniform per-node permutation ``pi_v``.
    A route occupying arc ``e=(u->v)`` entered ``v`` via the reverse
    slot's position; it exits through ``pi_v`` applied to that position.

    Module-level (not a method) so pool workers rebuild tables through
    the *same* kernel the serial path runs.
    """
    keys = np.random.default_rng(seed).random(src.size)
    perm_flat = _permutation_order(keys, src, num_nodes).astype(np.int64)
    return perm_flat[rev]


def _instance_seed(entropy, index: int) -> np.random.SeedSequence:
    """The ``index``-th spawned child of the root ``SeedSequence``.

    ``SeedSequence(entropy, spawn_key=(i,))`` reconstructs
    ``root.spawn(n)[i]`` exactly, so workers can derive any instance's
    seed from the root entropy alone — no seed list crosses the process
    boundary.
    """
    return np.random.SeedSequence(entropy=entropy, spawn_key=(index,))


# ----------------------------------------------------------------------
# Blocked stepping kernel (shared by the serial path and pool workers)
# ----------------------------------------------------------------------
def _step_block_checkpoints(
    tables: np.ndarray,
    starts: np.ndarray,
    lengths: np.ndarray,
    out: np.ndarray,
) -> int:
    """Advance a block of instances with checkpoint recording.

    Parameters
    ----------
    tables:
        ``(b, 2m)`` int64 ``next_slot`` tables, one row per instance.
    starts:
        ``(b, nodes)`` int64 start slots (the routes' first hops).
    lengths:
        Strictly increasing checkpoint lengths (>= 1).
    out:
        ``(nodes, b, len(lengths))`` int64 output (written in place).

    Returns the number of flat gathers performed (for telemetry).

    The block's tables are flattened into one offset array
    ``flat[i·2m + s] = i·2m + tables[i, s]`` so one gather advances
    every route of every instance in the block.  When the flattened
    index space fits in int32 the gather runs on int32 arrays — half
    the memory traffic on a DRAM-bound random gather, with the recorded
    checkpoints cast back to int64 (values are identical integers, so
    the output is bit-for-bit unchanged).
    """
    b, num_slots = tables.shape
    offsets = np.arange(b, dtype=np.int64)[:, None] * np.int64(num_slots)
    if b * num_slots <= np.iinfo(np.int32).max:
        # Produce the int32 working arrays directly from the add — no
        # int64 intermediate, halving the traffic of the block setup.
        flat = np.add(tables, offsets, dtype=np.int32).ravel()
        pos = np.add(starts, offsets, dtype=np.int32)
    else:
        flat = (tables + offsets).ravel()
        pos = starts + offsets
    max_len = int(lengths[-1])
    col = 0
    gathers = 0
    for step in range(1, max_len + 1):
        if step > 1:
            pos = flat[pos]
            gathers += 1
        if col < lengths.size and lengths[col] == step:
            out[:, :, col] = pos.T - offsets.T
            col += 1
    return gathers


def advance_route_shard(
    src: np.ndarray,
    rev: np.ndarray,
    num_nodes: int,
    entropy,
    instance_lo: int,
    instance_hi: int,
    starts: np.ndarray,
    lengths: np.ndarray,
    block_size: Optional[int] = None,
) -> np.ndarray:
    """Tails for instances ``[instance_lo, instance_hi)`` of one engine.

    ``starts`` holds the pre-drawn start slots for exactly this shard
    (``(hi - lo, nodes)``); tables are rebuilt from the root entropy via
    :func:`_instance_seed`, so the shard function is pure — pool workers
    and the serial fallback call the same code with the same inputs and
    produce the same bytes.  Returns ``(nodes, hi - lo, len(lengths))``.
    """
    count = int(instance_hi) - int(instance_lo)
    num_slots = src.size
    out = np.empty((starts.shape[1], count, lengths.size), dtype=np.int64)
    block = resolve_route_block_size(num_slots, count, block_size)
    tables = np.empty((min(block, count), num_slots), dtype=np.int64)
    for lo in range(0, count, block):
        hi = min(lo + block, count)
        for i in range(lo, hi):
            tables[i - lo] = build_instance_table(
                _instance_seed(entropy, instance_lo + i), src, rev, num_nodes
            )
        _step_block_checkpoints(
            tables[: hi - lo], starts[lo:hi], lengths, out[:, lo:hi]
        )
    return out


class RouteInstances:
    """``r`` independent random-route instances over one graph.

    Parameters
    ----------
    graph:
        The (combined) social graph.
    num_instances:
        ``r`` — SybilLimit uses ``r = r0 * sqrt(m)``; SybilGuard uses 1.
    seed:
        RNG seed; instances are deterministic given it.

    Notes
    -----
    Memory is ``O(r * 2m)`` int64 for the ``next_slot`` tables.  For the
    laptop-scale graphs used here (m ≤ ~2·10⁵, r ≤ ~10³) that is a few
    hundred MB at most; experiments that need many instances on larger
    graphs should stream instances with :meth:`single_instance` or let
    the blocked sweeps (:meth:`tails`, :meth:`tails_at_lengths`)
    materialise only one memory-budgeted block at a time.
    """

    def __init__(self, graph: Graph, num_instances: int, *, seed=None, cache_tables: bool = True):
        if num_instances < 1:
            raise RouteError("num_instances must be at least 1")
        if graph.num_edges == 0:
            raise RouteError("routes need at least one edge")
        self._graph = graph
        self._src = arc_sources(graph)
        self._rev = reverse_slots(graph)
        self._num_instances = int(num_instances)
        self._cache_tables = bool(cache_tables)
        # One child seed per instance so tables are reproducible whether
        # they are cached, regenerated on demand, or rebuilt inside a
        # pool worker from the root entropy alone.
        root = np.random.SeedSequence(
            seed if isinstance(seed, (int, np.integer)) else as_rng(seed).integers(2**63)
        )
        self._entropy = root.entropy
        self._instance_seeds = root.spawn(self._num_instances)
        self._rng = np.random.default_rng(root.spawn(1)[0])
        self._cache: dict = {}

    def _build_instance(self, index: int) -> np.ndarray:
        """One instance's ``next_slot`` permutation (fast exact kernel)."""
        return build_instance_table(
            self._instance_seeds[index], self._src, self._rev, self._graph.num_nodes
        )

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_instances(self) -> int:
        return self._num_instances

    def single_instance(self, index: int) -> np.ndarray:
        """The ``next_slot`` table of one instance (built lazily).

        With ``cache_tables=False`` the table is regenerated on each call
        (deterministically), trading CPU for O(2m) instead of O(r·2m)
        memory — the right trade at SybilLimit's r = Θ(√m).
        """
        if not 0 <= index < self._num_instances:
            raise IndexError(f"instance {index} out of range [0, {self._num_instances})")
        if index in self._cache:
            return self._cache[index]
        table = self._build_instance(index)
        if self._cache_tables:
            self._cache[index] = table
        return table

    # ------------------------------------------------------------------
    def start_slots(self, nodes: np.ndarray, *, seed=None) -> np.ndarray:
        """A uniformly random outgoing slot per node (routes' first hop)."""
        rng = as_rng(seed)
        nodes = np.asarray(nodes, dtype=np.int64)
        deg = self._graph.degrees[nodes]
        if np.any(deg == 0):
            raise RouteError("cannot start a route at an isolated node")
        offsets = (rng.random(nodes.size) * deg).astype(np.int64)
        return self._graph.indptr[nodes] + offsets

    def advance(self, slots: np.ndarray, steps: int, instance: int) -> np.ndarray:
        """Advance route positions ``steps`` arcs within one instance."""
        table = self.single_instance(instance)
        out = np.asarray(slots, dtype=np.int64).copy()
        for _ in range(max(0, steps)):
            out = table[out]
        return out

    def tails(
        self,
        nodes: np.ndarray,
        length: int,
        *,
        seed=None,
        block_size: Optional[int] = None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """Tail arcs of every node's route in every instance.

        Each node starts one route per instance (independent random first
        hops) and follows it for ``length`` edges; the *tail* is the final
        directed arc.  Returns shape ``(len(nodes), r)`` of slot indices.

        ``length`` must be >= 1 (a route's tail is its last traversed
        edge, so a zero-length route has none).  ``block_size`` bounds
        the instances materialised at once; ``workers`` fans instance
        blocks out across the shared-memory fork pool (bit-for-bit equal
        to the serial path, see module docstring).
        """
        if length < 1:
            raise RouteError("route length must be >= 1")
        tails = self.tails_at_lengths(
            nodes,
            np.asarray([length], dtype=np.int64),
            seed=seed,
            policy=as_policy(policy, workers=workers, block_size=block_size),
        )
        return np.ascontiguousarray(tails[:, :, 0])

    def tails_at_lengths(
        self,
        nodes: np.ndarray,
        lengths: np.ndarray,
        *,
        seed=None,
        block_size: Optional[int] = None,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> np.ndarray:
        """Tails of every node's routes at several route lengths at once.

        ``lengths`` must be strictly increasing and >= 1.  Returns shape
        ``(len(nodes), r, len(lengths))``.  Within one block the walk is
        advanced incrementally, so the cost is one flat gather per step
        per block rather than one python iteration per (instance, step) —
        this is what makes sweeping Figure 8's walk lengths cheap.

        The same first-hop randomness is reused across checkpoint lengths
        (tails at length w and w' come from the *same* route, truncated),
        matching how a deployment would extend its routes.  First hops
        are always drawn in instance order from one stream, so the
        result is independent of blocking, ``block_size`` and
        ``workers`` — bit-for-bit.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or lengths[0] < 1 or np.any(np.diff(lengths) <= 0):
            raise RouteError("lengths must be strictly increasing and >= 1")
        policy = as_policy(policy, workers=workers, block_size=block_size)
        nodes = np.asarray(nodes, dtype=np.int64)
        rng = as_rng(seed)
        r = self._num_instances

        telemetry = OBS.enabled
        with OBS.span(
            "sybil.routes.tails_sweep",
            instances=r,
            nodes=int(nodes.size),
            checkpoints=int(lengths.size),
            max_length=int(lengths[-1]),
        ):
            # First hops are drawn for *all* instances up front, in
            # instance order — the exact stream the historical
            # per-instance loop consumed — so blocking and sharding
            # cannot perturb a single draw.
            starts = np.empty((r, nodes.size), dtype=np.int64)
            for i in range(r):
                starts[i] = self.start_slots(nodes, seed=rng)

            parallel = self._maybe_parallel_tails(starts, lengths, policy)
            if parallel is not None:
                return parallel

            out = np.empty((nodes.size, r, lengths.size), dtype=np.int64)
            block = resolve_route_block_size(self._src.size, r, policy.block_size)
            if telemetry:
                OBS.add("sybil.routes.instances", r)
                OBS.observe("sybil.routes.block_instances", block)
            for lo in range(0, r, block):
                hi = min(lo + block, r)
                tables = np.empty((hi - lo, self._src.size), dtype=np.int64)
                for i in range(lo, hi):
                    # Reuse a cached table when one exists, but never
                    # *populate* the cache from a sweep: retaining all r
                    # tables would cost O(r·2m) memory (hundreds of MB
                    # at SybilLimit scale) for tables the sweep touches
                    # exactly once per block.
                    cached = self._cache.get(i)
                    tables[i - lo] = (
                        cached if cached is not None else self._build_instance(i)
                    )
                gathers = _step_block_checkpoints(
                    tables, starts[lo:hi], lengths, out[:, lo:hi]
                )
                if telemetry:
                    OBS.add("sybil.routes.blocks")
                    OBS.add("sybil.routes.gathers", gathers)
            return out

    def _maybe_parallel_tails(
        self,
        starts: np.ndarray,
        lengths: np.ndarray,
        policy: ExecutionPolicy,
    ) -> Optional[np.ndarray]:
        """Fan instance blocks out across the pool; ``None`` → serial."""
        from ..core.parallel import maybe_parallel_route_tails

        return maybe_parallel_route_tails(self, starts, lengths, policy=policy)

    def trajectories(
        self,
        start_slots: np.ndarray,
        length: int,
        instance: int = 0,
    ) -> np.ndarray:
        """Node sequences visited by routes from the given start arcs.

        Returns shape ``(len(start_slots), length + 1)``; column 0 is each
        route's source node, column ``t`` the node reached after ``t``
        edges.
        """
        if length < 1:
            raise RouteError("route length must be >= 1")
        slots = np.asarray(start_slots, dtype=np.int64)
        table = self.single_instance(instance)
        out = np.empty((slots.size, length + 1), dtype=np.int64)
        out[:, 0] = self._src[slots]
        current = slots.copy()
        out[:, 1] = self._graph.indices[current]
        for t in range(2, length + 1):
            current = table[current]
            out[:, t] = self._graph.indices[current]
        return out

    def undirected_edge_ids(self, slots: np.ndarray) -> np.ndarray:
        """Map arc slots to undirected edge ids (both directions equal).

        SybilLimit's intersection condition compares tails as *undirected*
        edges; this id is ``min(slot, rev[slot])``.
        """
        slots = np.asarray(slots, dtype=np.int64)
        return np.minimum(slots, self._rev[slots])

    # ------------------------------------------------------------------
    # Historical reference kernel (bench + equivalence tests only)
    # ------------------------------------------------------------------
    def _tails_at_lengths_reference(
        self,
        nodes: np.ndarray,
        lengths: np.ndarray,
        *,
        seed=None,
    ) -> np.ndarray:
        """The pre-blocking per-instance loop, kept verbatim as the
        equivalence oracle for :mod:`benchmarks.bench_route_engine` and
        the route-parallel test-suite.  Builds tables with ``np.lexsort``
        and advances one instance at a time — the exact code path the
        blocked kernels replaced, so "blocked == reference" is a real
        statement about the historical numbers, not a tautology.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or lengths[0] < 1 or np.any(np.diff(lengths) <= 0):
            raise RouteError("lengths must be strictly increasing and >= 1")
        nodes = np.asarray(nodes, dtype=np.int64)
        rng = as_rng(seed)
        out = np.empty((nodes.size, self._num_instances, lengths.size), dtype=np.int64)
        max_len = int(lengths[-1])
        for i in range(self._num_instances):
            table = self._build_instance_reference(i)
            slots = self.start_slots(nodes, seed=rng)
            col = 0
            for step in range(1, max_len + 1):
                if step > 1:
                    slots = table[slots]
                if col < lengths.size and lengths[col] == step:
                    out[:, i, col] = slots
                    col += 1
        return out

    def _build_instance_reference(self, index: int) -> np.ndarray:
        """Table construction via ``np.lexsort`` (the historical kernel)."""
        keys = np.random.default_rng(self._instance_seeds[index]).random(self._src.size)
        perm_flat = np.lexsort((keys, self._src)).astype(np.int64)
        return perm_flat[self._rev]
