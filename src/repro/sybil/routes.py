"""Random routes — the core primitive of SybilGuard and SybilLimit.

A *random route* differs from a random walk: every node ``v`` fixes, per
protocol instance, one uniformly random permutation ``pi_v`` of its edge
slots.  A route entering ``v`` through its ``j``-th incident edge always
leaves through edge ``pi_v[j]``.  Two consequences drive the protocols:

* **Convergence** — routes entering a node through the same edge follow
  identical suffixes.
* **Back-traceability** — the route map is a bijection on directed edge
  slots, so routes never "merge then split".

Representation: a directed edge slot ``e`` is an index into the graph's
CSR ``indices`` array; slot ``e`` is the arc ``src(e) → indices[e]``.
The whole instance is one permutation array ``next_slot`` of length
``2m`` mapping each arc to the arc a route takes next.  Advancing every
route in the system one step is a single numpy gather.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..graph import Graph
from .._util import as_rng

__all__ = ["RouteInstances", "arc_sources", "reverse_slots"]


def arc_sources(graph: Graph) -> np.ndarray:
    """``src[e]`` — the source node of each directed edge slot."""
    return np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)


def reverse_slots(graph: Graph) -> np.ndarray:
    """``rev[e]`` — the slot of the reverse arc of slot ``e``.

    Slots are sorted by ``(src, dst)``; the reverse arc of ``e`` has key
    ``(dst, src)``, so its slot is the lexicographic rank of that pair.
    """
    src = arc_sources(graph)
    dst = graph.indices
    order = np.lexsort((src, dst))  # arcs ordered by (dst, src)
    rev = np.empty(src.size, dtype=np.int64)
    rev[order] = np.arange(src.size, dtype=np.int64)
    return rev


class RouteInstances:
    """``r`` independent random-route instances over one graph.

    Parameters
    ----------
    graph:
        The (combined) social graph.
    num_instances:
        ``r`` — SybilLimit uses ``r = r0 * sqrt(m)``; SybilGuard uses 1.
    seed:
        RNG seed; instances are deterministic given it.

    Notes
    -----
    Memory is ``O(r * 2m)`` int64 for the ``next_slot`` tables.  For the
    laptop-scale graphs used here (m ≤ ~2·10⁵, r ≤ ~10³) that is a few
    hundred MB at most; experiments that need many instances on larger
    graphs should stream instances with :meth:`single_instance`.
    """

    def __init__(self, graph: Graph, num_instances: int, *, seed=None, cache_tables: bool = True):
        if num_instances < 1:
            raise ValueError("num_instances must be at least 1")
        if graph.num_edges == 0:
            raise ValueError("routes need at least one edge")
        self._graph = graph
        self._rev = reverse_slots(graph)
        self._num_instances = int(num_instances)
        self._cache_tables = bool(cache_tables)
        # One child seed per instance so tables are reproducible whether
        # they are cached or regenerated on demand.
        root = np.random.SeedSequence(
            seed if isinstance(seed, (int, np.integer)) else as_rng(seed).integers(2**63)
        )
        self._instance_seeds = root.spawn(self._num_instances)
        self._rng = np.random.default_rng(root.spawn(1)[0])
        self._cache: dict = {}

    def _build_instance(self, index: int) -> np.ndarray:
        """One instance's ``next_slot`` permutation.

        Per-node permutations are drawn in one vectorised shot: random
        keys are assigned to every slot and slots are lexsorted by
        ``(node, key)``.  The result enumerates each node's slots in a
        uniformly random order, and pairing the j-th CSR slot of a node
        with the j-th element of that ordering is exactly a uniform
        per-node permutation ``pi_v``.
        """
        graph = self._graph
        rng = np.random.default_rng(self._instance_seeds[index])
        keys = rng.random(graph.indices.size)
        src = arc_sources(graph)
        perm_flat = np.lexsort((keys, src)).astype(np.int64)
        # A route occupying arc e=(u->v) entered v via the reverse slot's
        # position; it exits through pi_v applied to that position.
        return perm_flat[self._rev]

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        return self._graph

    @property
    def num_instances(self) -> int:
        return self._num_instances

    def single_instance(self, index: int) -> np.ndarray:
        """The ``next_slot`` table of one instance (built lazily).

        With ``cache_tables=False`` the table is regenerated on each call
        (deterministically), trading CPU for O(2m) instead of O(r·2m)
        memory — the right trade at SybilLimit's r = Θ(√m).
        """
        if not 0 <= index < self._num_instances:
            raise IndexError(f"instance {index} out of range [0, {self._num_instances})")
        if index in self._cache:
            return self._cache[index]
        table = self._build_instance(index)
        if self._cache_tables:
            self._cache[index] = table
        return table

    # ------------------------------------------------------------------
    def start_slots(self, nodes: np.ndarray, *, seed=None) -> np.ndarray:
        """A uniformly random outgoing slot per node (routes' first hop)."""
        rng = as_rng(seed)
        nodes = np.asarray(nodes, dtype=np.int64)
        deg = self._graph.degrees[nodes]
        if np.any(deg == 0):
            raise ValueError("cannot start a route at an isolated node")
        offsets = (rng.random(nodes.size) * deg).astype(np.int64)
        return self._graph.indptr[nodes] + offsets

    def advance(self, slots: np.ndarray, steps: int, instance: int) -> np.ndarray:
        """Advance route positions ``steps`` arcs within one instance."""
        table = self.single_instance(instance)
        out = np.asarray(slots, dtype=np.int64).copy()
        for _ in range(max(0, steps)):
            out = table[out]
        return out

    def tails(
        self,
        nodes: np.ndarray,
        length: int,
        *,
        seed=None,
    ) -> np.ndarray:
        """Tail arcs of every node's route in every instance.

        Each node starts one route per instance (independent random first
        hops) and follows it for ``length`` edges; the *tail* is the final
        directed arc.  Returns shape ``(len(nodes), r)`` of slot indices.

        ``length`` must be >= 1 (a route's tail is its last traversed
        edge, so a zero-length route has none).
        """
        if length < 1:
            raise ValueError("route length must be >= 1")
        nodes = np.asarray(nodes, dtype=np.int64)
        rng = as_rng(seed)
        out = np.empty((nodes.size, self._num_instances), dtype=np.int64)
        for i in range(self._num_instances):
            slots = self.start_slots(nodes, seed=rng)
            out[:, i] = self.advance(slots, length - 1, i)
        return out

    def tails_at_lengths(
        self,
        nodes: np.ndarray,
        lengths: np.ndarray,
        *,
        seed=None,
    ) -> np.ndarray:
        """Tails of every node's routes at several route lengths at once.

        ``lengths`` must be strictly increasing and >= 1.  Returns shape
        ``(len(nodes), r, len(lengths))``.  Within one instance the walk
        is advanced incrementally, so the cost is one pass to
        ``max(lengths)`` per instance rather than one per checkpoint —
        this is what makes sweeping Figure 8's walk lengths cheap.

        The same first-hop randomness is reused across checkpoint lengths
        (tails at length w and w' come from the *same* route, truncated),
        matching how a deployment would extend its routes.
        """
        lengths = np.asarray(lengths, dtype=np.int64)
        if lengths.size == 0 or lengths[0] < 1 or np.any(np.diff(lengths) <= 0):
            raise ValueError("lengths must be strictly increasing and >= 1")
        nodes = np.asarray(nodes, dtype=np.int64)
        rng = as_rng(seed)
        out = np.empty((nodes.size, self._num_instances, lengths.size), dtype=np.int64)
        max_len = int(lengths[-1])
        for i in range(self._num_instances):
            table = self.single_instance(i)
            slots = self.start_slots(nodes, seed=rng)
            col = 0
            for step in range(1, max_len + 1):
                if step > 1:
                    slots = table[slots]
                if col < lengths.size and lengths[col] == step:
                    out[:, i, col] = slots
                    col += 1
        return out

    def trajectories(
        self,
        start_slots: np.ndarray,
        length: int,
        instance: int = 0,
    ) -> np.ndarray:
        """Node sequences visited by routes from the given start arcs.

        Returns shape ``(len(start_slots), length + 1)``; column 0 is each
        route's source node, column ``t`` the node reached after ``t``
        edges.
        """
        if length < 1:
            raise ValueError("route length must be >= 1")
        slots = np.asarray(start_slots, dtype=np.int64)
        table = self.single_instance(instance)
        src = arc_sources(self._graph)
        out = np.empty((slots.size, length + 1), dtype=np.int64)
        out[:, 0] = src[slots]
        current = slots.copy()
        out[:, 1] = self._graph.indices[current]
        for t in range(2, length + 1):
            current = table[current]
            out[:, t] = self._graph.indices[current]
        return out

    def undirected_edge_ids(self, slots: np.ndarray) -> np.ndarray:
        """Map arc slots to undirected edge ids (both directions equal).

        SybilLimit's intersection condition compares tails as *undirected*
        edges; this id is ``min(slot, rev[slot])``.
        """
        slots = np.asarray(slots, dtype=np.int64)
        return np.minimum(slots, self._rev[slots])
