"""Sybil attack scenarios: an honest region, a sybil region, attack edges.

The standard threat model of SybilGuard/SybilLimit/SybilInfer (Section 5
of the mixing-time paper): the full graph is the union of

* the **honest region** — a real social graph,
* the **sybil region** — arbitrarily structured identities all controlled
  by one attacker, and
* ``g`` **attack edges** — the few real social links the attacker managed
  to establish with honest users.

Because the attack-edge cut is small, the combined graph mixes slowly
across it; every random-walk defense exploits exactly that asymmetry.
The paper's point is that *honest* social graphs already contain similar
small cuts, making the defenses mis-classify slow-mixing honest regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ScenarioError
from ..graph import Graph, disjoint_union
from ..generators import erdos_renyi_gnm, powerlaw_configuration_model
from .._util import as_rng

__all__ = ["SybilScenario", "attach_sybil_region", "no_attack_scenario", "random_sybil_region"]


@dataclass(frozen=True)
class SybilScenario:
    """An attack scenario over a combined graph.

    Attributes
    ----------
    graph:
        The combined honest ∪ sybil graph (honest nodes keep their ids;
        sybil ids are offset by the honest region's size).
    num_honest:
        Honest region size; honest node ids are ``0 .. num_honest - 1``.
    attack_edges:
        ``(g, 2)`` array of (honest node, sybil node) links.
    """

    graph: Graph
    num_honest: int
    attack_edges: np.ndarray

    @property
    def num_sybil(self) -> int:
        """Number of sybil identities."""
        return self.graph.num_nodes - self.num_honest

    @property
    def num_attack_edges(self) -> int:
        """g — the attack-edge count."""
        return self.attack_edges.shape[0]

    def honest_nodes(self) -> np.ndarray:
        """Ids of honest nodes."""
        return np.arange(self.num_honest, dtype=np.int64)

    def sybil_nodes(self) -> np.ndarray:
        """Ids of sybil nodes."""
        return np.arange(self.num_honest, self.graph.num_nodes, dtype=np.int64)

    def is_honest(self, node: int) -> bool:
        """Whether a node id belongs to the honest region."""
        return 0 <= int(node) < self.num_honest

    def honest_mask(self) -> np.ndarray:
        """Boolean mask over all nodes, true for honest ones."""
        mask = np.zeros(self.graph.num_nodes, dtype=bool)
        mask[: self.num_honest] = True
        return mask


def random_sybil_region(
    num_sybil: int,
    *,
    style: str = "dense",
    seed=None,
) -> Graph:
    """A synthetic sybil region.

    ``style="dense"`` builds a well-connected random graph (the attacker's
    cheapest strategy: make the sybil region fast mixing internally so
    escaped walks mix over all sybil identities); ``style="powerlaw"``
    mimics an organically-grown fake region.
    """
    if num_sybil < 2:
        raise ScenarioError("sybil region needs at least 2 nodes")
    rng = as_rng(seed)
    if style == "dense":
        m = min(num_sybil * 5, num_sybil * (num_sybil - 1) // 2)
        graph = erdos_renyi_gnm(num_sybil, m, seed=rng)
    elif style == "powerlaw":
        graph = powerlaw_configuration_model(
            num_sybil, 2.3, target_edges=num_sybil * 3, seed=rng
        )
    else:
        raise ScenarioError(f"unknown sybil region style {style!r}")
    # An attacker gains nothing from unreachable identities: wire any
    # isolated node (rare, but ER can produce them) to a random peer so
    # every sybil participates in the protocols.
    isolated = np.flatnonzero(graph.degrees == 0)
    if isolated.size:
        from ..graph import add_edges

        extra = [
            (int(v), int((v + 1 + rng.integers(num_sybil - 1)) % num_sybil))
            for v in isolated
        ]
        graph = add_edges(graph, extra)
    return graph


def attach_sybil_region(
    honest: Graph,
    sybil: Graph,
    num_attack_edges: int,
    *,
    seed=None,
) -> SybilScenario:
    """Join a sybil region to an honest graph with ``g`` attack edges.

    Attack-edge endpoints are sampled uniformly (honest side without
    replacement when possible — real attackers befriend distinct victims).
    """
    if num_attack_edges < 1:
        raise ScenarioError("need at least one attack edge")
    if num_attack_edges > honest.num_nodes * sybil.num_nodes:
        raise ScenarioError("more attack edges than honest-sybil pairs")
    rng = as_rng(seed)
    combined = disjoint_union(honest, sybil)
    replace_honest = num_attack_edges > honest.num_nodes
    h_ends = rng.choice(honest.num_nodes, size=num_attack_edges, replace=replace_honest)
    s_ends = rng.choice(sybil.num_nodes, size=num_attack_edges, replace=True) + honest.num_nodes
    attack = np.stack([h_ends.astype(np.int64), s_ends.astype(np.int64)], axis=1)
    from ..graph import add_edges

    combined = add_edges(combined, attack)
    return SybilScenario(graph=combined, num_honest=honest.num_nodes, attack_edges=attack)


def no_attack_scenario(honest: Graph) -> SybilScenario:
    """A scenario with no attacker at all (Figure 8's setting).

    The combined graph is just the honest region; ``attack_edges`` is
    empty.  Useful because the defense implementations are written
    against :class:`SybilScenario`.
    """
    return SybilScenario(
        graph=honest,
        num_honest=honest.num_nodes,
        attack_edges=np.zeros((0, 2), dtype=np.int64),
    )
