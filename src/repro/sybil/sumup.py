"""SumUp (Tran, Min, Li, Subramanian — NSDI 2009).

Sybil-resilient online content voting, one of the defenses Viswanath et
al. decompose in the related-work discussion (Section 2).  A *vote
collector* C harvests votes over the social graph:

1. **Ticket distribution** — C distributes ``C_max`` tickets outward in
   BFS order; a node at distance ℓ holding ``t`` tickets keeps one and
   splits the rest evenly over its links to distance-(ℓ+1) neighbours.
   A link's capacity is the tickets sent over it plus one; links outside
   the ticket *envelope* get capacity 1.
2. **Vote flow** — each voter sends one vote; votes are routed to C as a
   max flow respecting link capacities.  At most ``C_max``-ish votes can
   cross any small cut, so a sybil region behind ``g`` attack edges
   contributes O(g + its envelope capacity) bogus votes.

The implementation builds the capacitated network explicitly and solves
it with :class:`~repro.sybil.maxflow.FlowNetwork`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import Graph, bfs_distances
from .maxflow import FlowNetwork
from .scenario import SybilScenario

__all__ = [
    "SumUpOutcome",
    "SumUpParams",
    "sumup_admission",
    "sumup_collect_votes",
    "ticket_capacities",
]


@dataclass(frozen=True)
class SumUpParams:
    """SumUp knobs.

    ``c_max`` defaults to ``n_honest / 10`` in our experiments (the
    original adapts it online toward the number of honest voters).
    """

    c_max: int

    def __post_init__(self):
        if self.c_max < 1:
            raise ValueError("c_max must be positive")


def ticket_capacities(
    graph: Graph,
    collector: int,
    c_max: int,
) -> Dict[Tuple[int, int], float]:
    """Per-directed-link capacities from the ticket distribution.

    Returns a dict mapping directed link ``(u, v)`` (toward larger BFS
    distance from the collector) to its capacity; links not present get
    the default capacity 1.
    """
    dist = bfs_distances(graph, collector)
    tickets = np.zeros(graph.num_nodes, dtype=np.float64)
    tickets[collector] = float(c_max)
    capacities: Dict[Tuple[int, int], float] = {}
    # Process nodes level by level, outward.
    reached = dist >= 0
    max_level = int(dist[reached].max()) if reached.any() else 0
    for level in range(0, max_level):
        for u in np.flatnonzero(dist == level):
            t = tickets[u]
            give = max(t - 1.0, 0.0)
            downhill = [int(v) for v in graph.neighbors(u) if dist[v] == level + 1]
            if not downhill or give <= 0:
                continue
            share = give / len(downhill)
            for v in downhill:
                capacities[(int(u), v)] = share + 1.0
                tickets[v] += share
    return capacities


@dataclass
class SumUpOutcome:
    """Result of one vote collection."""

    collector: int
    voters: np.ndarray
    votes_collected: int
    votes_cast: int

    @property
    def collection_rate(self) -> float:
        """Fraction of cast votes that reached the collector."""
        if self.votes_cast == 0:
            return float("nan")
        return self.votes_collected / self.votes_cast


def _vote_network(
    scenario: SybilScenario,
    collector: int,
    voters: np.ndarray,
    params: SumUpParams,
) -> Tuple[FlowNetwork, int, List[int]]:
    """The ticket-capacitated flow network shared by both entry points.

    Returns ``(network, super_source, voter_arcs)`` where
    ``voter_arcs[i]`` is the arc id of the capacity-1 super-source link
    feeding ``voters[i]`` (its routed flow is that voter's verdict).
    """
    graph = scenario.graph
    caps = ticket_capacities(graph, int(collector), params.c_max)

    # Node ids in the flow network: graph nodes + super-source at n.
    n = graph.num_nodes
    network = FlowNetwork(n + 1)
    super_source = n
    for u, v in graph.iter_edges():
        # Ticket distribution assigns capacity to the *undirected link*
        # (keyed by its outward orientation); votes then consume that
        # capacity flowing inward.  Model an undirected link of capacity
        # c as a pair of opposite arcs of capacity c.
        cap = caps.get((u, v), caps.get((v, u), 1.0))
        network.add_edge(u, v, cap)
        network.add_edge(v, u, cap)
    voter_arcs = [network.add_edge(super_source, int(voter), 1.0) for voter in voters]
    return network, super_source, voter_arcs


def sumup_collect_votes(
    scenario: SybilScenario,
    collector: int,
    voters: Sequence[int],
    params: SumUpParams,
) -> SumUpOutcome:
    """Collect one vote from each of ``voters`` at ``collector``.

    Builds the ticket-capacitated network plus a super-source feeding
    every voter with capacity 1, then routes a max flow to the collector.
    Each vote consumes distinct capacity, so the flow value is the number
    of votes accepted.
    """
    voters = np.asarray(list(voters), dtype=np.int64)
    if voters.size == 0:
        return SumUpOutcome(int(collector), voters, 0, 0)
    if int(collector) in set(int(v) for v in voters):
        raise ValueError("the collector cannot vote for itself")
    network, super_source, _ = _vote_network(scenario, collector, voters, params)
    collected = network.max_flow(super_source, int(collector))
    return SumUpOutcome(
        collector=int(collector),
        voters=voters,
        votes_collected=int(round(collected)),
        votes_cast=int(voters.size),
    )


def sumup_admission(
    scenario: SybilScenario,
    collector: int,
    voters: Sequence[int],
    params: SumUpParams,
) -> np.ndarray:
    """Per-voter verdicts: whose vote actually reached the collector.

    Same model as :func:`sumup_collect_votes`, read at arc granularity:
    voter ``i`` is admitted iff the max flow routes their unit of
    super-source capacity *in full*.  Ticket capacities are fractional,
    so a maximal flow can strand fractional vote remnants on a few
    voters; those partial votes count as rejected, which makes
    ``admitted.sum() <= round(max flow) == votes_collected``.  The
    admitted *set* is one max-flow solution among possibly many; it is
    deterministic because Dinic visits arcs in insertion order.
    """
    voters = np.asarray(list(voters), dtype=np.int64)
    if voters.size == 0:
        return np.zeros(0, dtype=bool)
    if int(collector) in set(int(v) for v in voters):
        raise ValueError("the collector cannot vote for itself")
    network, super_source, voter_arcs = _vote_network(scenario, collector, voters, params)
    network.max_flow(super_source, int(collector))
    return np.array(
        [network.flow_on(arc) >= 1.0 - 1e-9 for arc in voter_arcs], dtype=bool
    )
