"""SybilGuard (Yu, Kaminsky, Gibbons, Flaxman — SIGCOMM 2006).

The predecessor of SybilLimit and the other protocol whose experimental
methodology Section 2 critiques.  One random-route instance; every node
runs a route of length ``w`` out of *each* of its ``d`` incident edges.
A verifier V accepts a suspect S when at least one of V's routes
intersects (shares a node with) at least one of S's routes — w is sized
Θ(sqrt(n log n)) in the original paper so that honest routes intersect
with high probability while routes crossing the small attack cut are
rare.

Intersection here is *node*-level, unlike SybilLimit's edge-tail
intersection.  The implementation never materialises the full
``(2m, w + 1)`` trajectory matrix the original version built (244 MB at
facebook-sample scale): the verifier's small ``d × (w + 1)`` trajectory
block fixes a node mask, and every other route is tested against it by
a stepwise OR-accumulation over the shared ``next_slot`` table — O(2m)
live state per step, one gather per step, and shardable across the
fork pool (``workers=``) with bit-identical output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.runtime import ExecutionPolicy, as_policy
from ..errors import RouteError, ScenarioError
from ..obs import OBS
from .routes import RouteInstances, arc_sources
from .scenario import SybilScenario

__all__ = [
    "SybilGuardOutcome",
    "SybilGuard",
    "recommended_route_length",
    "route_hit_scan",
]


def route_hit_scan(
    table: np.ndarray,
    indices: np.ndarray,
    src: np.ndarray,
    mask: np.ndarray,
    slot_lo: int,
    slot_hi: int,
    length: int,
) -> np.ndarray:
    """Whether each route out of slots ``[slot_lo, slot_hi)`` hits ``mask``.

    Equivalent to building the trajectory rows for those slots and
    testing ``mask[row].any()`` per row, but with O(shard) live state:
    ``hit`` starts as "source or first-hop node is masked" and each of
    the remaining ``length - 1`` steps advances the slot cursor through
    ``table`` and ORs in the node entered.  Pure and module-level so the
    serial scan and every pool worker execute the same kernel.
    """
    lo, hi = int(slot_lo), int(slot_hi)
    hit = mask[src[lo:hi]] | mask[indices[lo:hi]]
    if length >= 2:
        cur = table[lo:hi]
        hit |= mask[indices[cur]]
        for _step in range(3, int(length) + 1):
            cur = table[cur]
            hit |= mask[indices[cur]]
    return hit


def recommended_route_length(num_nodes: int, *, constant: float = 2.0) -> int:
    """The Θ(sqrt(n log n)) route length from the SybilGuard analysis."""
    if num_nodes < 2:
        raise ScenarioError("need at least two nodes")
    return max(1, int(round(constant * np.sqrt(num_nodes * np.log(num_nodes)))))


@dataclass
class SybilGuardOutcome:
    """Admission verdicts of one verifier (node-intersection test)."""

    verifier: int
    suspects: np.ndarray
    accepted: np.ndarray
    route_length: int

    @property
    def admission_rate(self) -> float:
        if self.suspects.size == 0:
            return float("nan")
        return float(self.accepted.mean())

    def accepted_nodes(self) -> np.ndarray:
        return self.suspects[self.accepted]


class SybilGuard:
    """A SybilGuard deployment over a :class:`SybilScenario`."""

    def __init__(self, scenario: SybilScenario, route_length: int, *, seed=None):
        if route_length < 1:
            raise RouteError("route_length must be >= 1")
        self._scenario = scenario
        self._w = int(route_length)
        self._routes = RouteInstances(scenario.graph, 1, seed=seed)

    @property
    def route_length(self) -> int:
        return self._w

    def _route_nodes(self, node: int) -> np.ndarray:
        """The set of nodes touched by any of ``node``'s d routes."""
        graph = self._scenario.graph
        lo, hi = int(graph.indptr[node]), int(graph.indptr[node + 1])
        slots = np.arange(lo, hi, dtype=np.int64)
        if slots.size == 0:
            return slots  # isolated node: no routes, no nodes
        return np.unique(self._routes.trajectories(slots, self._w, instance=0))

    def run(
        self,
        verifier: int,
        suspects: Optional[Sequence[int]] = None,
        *,
        workers: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
    ) -> SybilGuardOutcome:
        """Admit ``suspects`` (default: all other nodes) for one verifier.

        ``workers`` shards the per-slot intersection scan across the
        shared-memory fork pool; serial and parallel verdicts are
        bit-for-bit identical (boolean ORs, positional reassembly).
        """
        policy = as_policy(policy, workers=workers)
        graph = self._scenario.graph
        if suspects is None:
            suspects = np.setdiff1d(
                np.arange(graph.num_nodes, dtype=np.int64), [int(verifier)]
            )
        else:
            suspects = np.asarray(list(suspects), dtype=np.int64)
        with OBS.span(
            "sybil.sybilguard.run",
            route_length=self._w,
            suspects=int(suspects.size),
            num_slots=int(graph.indices.size),
        ):
            verifier_nodes = self._route_nodes(int(verifier))
            mask = np.zeros(graph.num_nodes, dtype=bool)
            mask[verifier_nodes] = True
            table = self._routes.single_instance(0)
            src = arc_sources(graph)
            hit = self._maybe_parallel_hits(table, src, mask, policy)
            if hit is None:
                hit = route_hit_scan(
                    table, graph.indices, src, mask, 0, table.size, self._w
                )
            # Per-node OR over each node's d slot routes, vectorised as a
            # masked count: a node is accepted iff >= 1 of its routes hit.
            hits_per_node = np.bincount(
                src, weights=hit.astype(np.float64), minlength=graph.num_nodes
            )
            accepted = hits_per_node[suspects] > 0.0
            if OBS.enabled:
                OBS.add("sybil.sybilguard.slots_scanned", int(table.size))
                OBS.add("sybil.sybilguard.admitted", int(accepted.sum()))
        return SybilGuardOutcome(
            verifier=int(verifier),
            suspects=suspects,
            accepted=accepted,
            route_length=self._w,
        )

    def _maybe_parallel_hits(
        self,
        table: np.ndarray,
        src: np.ndarray,
        mask: np.ndarray,
        policy: ExecutionPolicy,
    ) -> Optional[np.ndarray]:
        from ..core.parallel import maybe_parallel_route_hits

        return maybe_parallel_route_hits(
            table, self._scenario.graph.indices, src, mask, self._w, policy=policy
        )
