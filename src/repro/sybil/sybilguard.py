"""SybilGuard (Yu, Kaminsky, Gibbons, Flaxman — SIGCOMM 2006).

The predecessor of SybilLimit and the other protocol whose experimental
methodology Section 2 critiques.  One random-route instance; every node
runs a route of length ``w`` out of *each* of its ``d`` incident edges.
A verifier V accepts a suspect S when at least one of V's routes
intersects (shares a node with) at least one of S's routes — w is sized
Θ(sqrt(n log n)) in the original paper so that honest routes intersect
with high probability while routes crossing the small attack cut are
rare.

The implementation tracks full route trajectories (node sequences),
because intersection here is *node*-level, unlike SybilLimit's
edge-tail intersection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .._util import as_rng
from .routes import RouteInstances
from .scenario import SybilScenario

__all__ = ["SybilGuardOutcome", "SybilGuard", "recommended_route_length"]


def recommended_route_length(num_nodes: int, *, constant: float = 2.0) -> int:
    """The Θ(sqrt(n log n)) route length from the SybilGuard analysis."""
    if num_nodes < 2:
        raise ValueError("need at least two nodes")
    return max(1, int(round(constant * np.sqrt(num_nodes * np.log(num_nodes)))))


@dataclass
class SybilGuardOutcome:
    """Admission verdicts of one verifier (node-intersection test)."""

    verifier: int
    suspects: np.ndarray
    accepted: np.ndarray
    route_length: int

    @property
    def admission_rate(self) -> float:
        if self.suspects.size == 0:
            return float("nan")
        return float(self.accepted.mean())

    def accepted_nodes(self) -> np.ndarray:
        return self.suspects[self.accepted]


class SybilGuard:
    """A SybilGuard deployment over a :class:`SybilScenario`."""

    def __init__(self, scenario: SybilScenario, route_length: int, *, seed=None):
        if route_length < 1:
            raise ValueError("route_length must be >= 1")
        self._scenario = scenario
        self._w = int(route_length)
        self._routes = RouteInstances(scenario.graph, 1, seed=seed)
        self._trajectories: Optional[np.ndarray] = None

    @property
    def route_length(self) -> int:
        return self._w

    def _all_trajectories(self) -> np.ndarray:
        """Routes out of *every* directed edge slot (memoised).

        Shape ``(2m, w + 1)`` — row e is the node sequence of the route
        leaving through arc e.  Node v's routes are the rows
        ``indptr[v]:indptr[v+1]``.
        """
        if self._trajectories is None:
            graph = self._scenario.graph
            all_slots = np.arange(graph.indices.size, dtype=np.int64)
            self._trajectories = self._routes.trajectories(all_slots, self._w, instance=0)
        return self._trajectories

    def _route_nodes(self, node: int) -> np.ndarray:
        """The set of nodes touched by any of ``node``'s d routes."""
        graph = self._scenario.graph
        lo, hi = graph.indptr[node], graph.indptr[node + 1]
        return np.unique(self._all_trajectories()[lo:hi])

    def run(
        self,
        verifier: int,
        suspects: Optional[Sequence[int]] = None,
    ) -> SybilGuardOutcome:
        """Admit ``suspects`` (default: all other nodes) for one verifier."""
        graph = self._scenario.graph
        if suspects is None:
            suspects = np.setdiff1d(
                np.arange(graph.num_nodes, dtype=np.int64), [int(verifier)]
            )
        else:
            suspects = np.asarray(list(suspects), dtype=np.int64)
        verifier_nodes = self._route_nodes(int(verifier))
        mask = np.zeros(graph.num_nodes, dtype=bool)
        mask[verifier_nodes] = True
        trajectories = self._all_trajectories()
        accepted = np.zeros(suspects.size, dtype=bool)
        indptr = graph.indptr
        for i, s in enumerate(suspects):
            rows = trajectories[indptr[s]:indptr[s + 1]]
            accepted[i] = bool(mask[rows].any())
        return SybilGuardOutcome(
            verifier=int(verifier),
            suspects=suspects,
            accepted=accepted,
            route_length=self._w,
        )
