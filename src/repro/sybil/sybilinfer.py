"""SybilInfer (Danezis & Mittal — NDSS 2009).

The Bayesian detector whose fast-mixing citation the paper disputes
(Section 1: "[SybilInfer] cited [Nagaraja] as an evidence to prove that
social networks are fast mixing").  The protocol:

1. Every node performs ``walks_per_node`` random walks of length
   Θ(log n); the (start, end) pairs form the trace set T.
2. For a candidate honest set X, the model says walks started inside a
   *fast-mixing* honest region stay inside it with a characteristic
   probability; walks escaping X are evidence of a sparse cut.
3. Metropolis–Hastings samples X from P(X | T); the marginal inclusion
   frequency of each node is its honesty score.

The likelihood combines a profile-estimated stay probability per region
with stationary endpoint placement (``deg(e) / vol`` of the landing
side); see :meth:`SybilInfer._log_likelihood` for the exact form and why
the volume terms are essential.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..graph import Graph
from .._util import as_rng
from .scenario import SybilScenario

__all__ = ["SybilInferParams", "SybilInferResult", "SybilInfer", "generate_traces"]


def generate_traces(
    graph: Graph,
    walk_length: int,
    walks_per_node: int,
    *,
    seed=None,
) -> np.ndarray:
    """The trace set T: ``(k, 2)`` array of (start, end) nodes.

    Every node starts ``walks_per_node`` independent simple random walks
    of ``walk_length`` steps; endpoints are computed by vectorised
    frontier stepping (one gather per step over all active walks).
    """
    if walk_length < 1:
        raise ValueError("walk_length must be >= 1")
    if walks_per_node < 1:
        raise ValueError("walks_per_node must be >= 1")
    rng = as_rng(seed)
    n = graph.num_nodes
    starts = np.repeat(np.arange(n, dtype=np.int64), walks_per_node)
    current = starts.copy()
    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees
    if np.any(degrees == 0):
        raise ValueError("traces undefined with isolated nodes")
    for _ in range(walk_length):
        offsets = (rng.random(current.size) * degrees[current]).astype(np.int64)
        current = indices[indptr[current] + offsets]
    return np.stack([starts, current], axis=1)


@dataclass(frozen=True)
class SybilInferParams:
    """Sampler knobs.

    ``walk_length=None`` → ``ceil(3 * log2 n)`` (the protocol's O(log n);
    see :meth:`resolve_walk_length` for why the constant is 3).
    """

    walk_length: Optional[int] = None
    walks_per_node: int = 20
    num_samples: int = 400
    burn_in: int = 200
    steps_per_sample: int = 10

    def resolve_walk_length(self, n: int) -> int:
        """Default trace length: ``3 * log2(n)``.

        SybilInfer sizes traces at O(log n) *assuming* the honest region
        mixes that fast.  With the bare log2(n) constant, endpoints are
        still localized on modestly-mixing graphs and the likelihood
        develops degenerate local optima (any local pocket looks like a
        good honest region); the constant 3 keeps traces O(log n) while
        letting endpoints actually reach stationarity on fast-mixing
        honest regions.
        """
        if self.walk_length is not None:
            return int(self.walk_length)
        return max(1, int(np.ceil(3 * np.log2(max(n, 2)))))


@dataclass
class SybilInferResult:
    """Marginal honesty scores and the derived classification.

    ``evidence`` is the log-likelihood gain of the best sampled partition
    over the everyone-honest baseline.  Without an attack the landscape
    is flat (stationary walks carry no information about arbitrary
    partitions — only bottleneck cuts gain likelihood), so the sampled
    marginals are noise; classification treats everyone as honest unless
    the evidence clears ``min_evidence`` nats.
    """

    scores: np.ndarray  # P(node is honest) under the sampled posterior
    threshold: float
    evidence: float = float("inf")
    min_evidence: float = 10.0

    @property
    def attack_detected(self) -> bool:
        """Whether the traces support any sybil cut at all."""
        return self.evidence >= self.min_evidence

    def honest_mask(self) -> np.ndarray:
        if not self.attack_detected:
            return np.ones_like(self.scores, dtype=bool)
        return self.scores >= self.threshold

    def detected_sybils(self) -> np.ndarray:
        return np.flatnonzero(~self.honest_mask())


class SybilInfer:
    """Metropolis–Hastings sampler over candidate honest sets."""

    def __init__(
        self,
        scenario: SybilScenario,
        params: SybilInferParams = SybilInferParams(),
        *,
        seed=None,
    ):
        self._scenario = scenario
        self._params = params
        self._rng = as_rng(seed)
        graph = scenario.graph
        w = params.resolve_walk_length(graph.num_nodes)
        self._traces = generate_traces(
            graph, w, params.walks_per_node, seed=self._rng
        )

    # ------------------------------------------------------------------
    def _log_likelihood(self, in_x: np.ndarray) -> float:
        """Log-likelihood of the traces under candidate honest set X.

        The SybilInfer generative model: a trace from ``s ∈ X`` stays in
        X with probability p and its endpoint is then distributed
        *stationarily within X* (``deg(e) / vol(X)``); with probability
        1-p it escapes and lands stationarily in the complement Y.  The
        symmetric model (parameter q) covers traces from Y.  p and q are
        profile-estimated from the counts.

        The volume terms are what keep the model honest: declaring
        everyone honest makes every trace an "stay" event but pays
        ``-log vol(V)`` per trace, while the true partition pays only
        ``-log vol(X_true)`` — so sparse-cut partitions win.  (The
        ``log deg(e)`` terms are constant in X and dropped.)
        """
        degrees = self._scenario.graph.degrees.astype(np.float64)
        starts = self._traces[:, 0]
        ends = self._traces[:, 1]
        sx = in_x[starts]
        ex = in_x[ends]
        n_xx = int((sx & ex).sum())
        n_xy = int((sx & ~ex).sum())
        n_yx = int((~sx & ex).sum())
        n_yy = int((~sx & ~ex).sum())
        vol_x = float(degrees[in_x].sum())
        vol_y = float(degrees.sum()) - vol_x

        def guarded(p: float) -> float:
            return min(max(p, 1e-9), 1.0 - 1e-9)

        total = 0.0
        n_x = n_xx + n_xy
        n_y = n_yx + n_yy
        if n_x:
            p = guarded(n_xx / n_x)
            total += n_xx * np.log(p) + n_xy * np.log(1.0 - p)
        if n_y:
            q = guarded(n_yy / n_y)
            total += n_yy * np.log(q) + n_yx * np.log(1.0 - q)
        # Endpoint-placement terms (stationary within the landing side).
        ends_in_x = n_xx + n_yx
        ends_in_y = n_xy + n_yy
        if ends_in_x:
            if vol_x <= 0:
                return -np.inf
            total -= ends_in_x * np.log(vol_x)
        if ends_in_y:
            if vol_y <= 0:
                return -np.inf
            total -= ends_in_y * np.log(vol_y)
        return float(total)

    def run(self, trusted_seed_node: int = 0) -> SybilInferResult:
        """Sample the posterior and return marginal honesty scores.

        ``trusted_seed_node`` *and its direct neighbours* are pinned
        inside X.  Pinning only the verifier is a degenerate anchor: the
        mirrored partition ``X = {verifier} ∪ sybils`` costs just
        ``deg(verifier)`` extra cut edges and the sampler can drift into
        it; pinning the verifier's social neighbourhood makes stranding
        the anchor as expensive as the neighbourhood's whole cut, which
        matches the protocol's trust assumption (the verifier's own links
        are honest).
        """
        params = self._params
        graph = self._scenario.graph
        n = graph.num_nodes
        rng = self._rng
        pinned = np.zeros(n, dtype=bool)
        pinned[int(trusted_seed_node)] = True
        pinned[graph.neighbors(int(trusted_seed_node))] = True
        in_x = np.ones(n, dtype=bool)  # start from "everyone honest"
        log_like = self._log_likelihood(in_x)
        baseline_like = log_like
        best_like = log_like

        inclusion = np.zeros(n, dtype=np.float64)
        samples = 0
        starts = self._traces[:, 0]
        ends = self._traces[:, 1]
        total_iters = params.burn_in + params.num_samples * params.steps_per_sample
        for it in range(total_iters):
            # Mix uniform single-node flips with the paper's trace-guided
            # moves: nodes whose traces cross the current X boundary are
            # the informative ones to toggle, and proposing them lets the
            # sampler climb out of the all-honest initialisation instead
            # of waiting for a lucky uniform pick.
            if rng.random() < 0.5:
                node = int(rng.integers(n))
            else:
                k = int(rng.integers(starts.size))
                s, e = int(starts[k]), int(ends[k])
                # Toggle the endpoint on the far side of the boundary.
                node = e if in_x[s] != in_x[e] else s
            if pinned[node]:
                continue
            in_x[node] = ~in_x[node]
            new_like = self._log_likelihood(in_x)
            if np.log(rng.random() + 1e-300) < new_like - log_like:
                log_like = new_like  # accept
                best_like = max(best_like, new_like)
            else:
                in_x[node] = ~in_x[node]  # revert
            if it >= params.burn_in and (it - params.burn_in) % params.steps_per_sample == 0:
                inclusion += in_x
                samples += 1
        scores = inclusion / max(samples, 1)
        # The evidence of a genuine sybil cut scales with the trace count
        # (every trace near the cut contributes), while sampler noise
        # accumulates sub-linearly — so the detection gate is per-trace.
        return SybilInferResult(
            scores=scores,
            threshold=0.5,
            evidence=float(best_like - baseline_like),
            min_evidence=max(10.0, 0.02 * self._traces.shape[0]),
        )
